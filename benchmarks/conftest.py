"""Shared fixtures for the benchmark harness.

The expensive all-optimizations sweep over every workload is computed
once per session and shared by the table benchmarks.
"""

from __future__ import annotations

import pytest

from repro.config import ALL_ON
from repro.evalharness.tables import run_all


@pytest.fixture(scope="session")
def baseline_results():
    """Every workload, statically and dynamically, all optimizations on."""
    return run_all(ALL_ON)


def render_and_attach(table, capsys=None) -> str:
    """Render a table and print it so `pytest -s` shows the artifact."""
    from repro.evalharness.tables import render_table

    text = render_table(table)
    print("\n" + text)
    return text
