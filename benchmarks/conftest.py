"""Shared fixtures for the benchmark harness.

The expensive all-optimizations sweep over every workload is computed
once per session and shared by the table benchmarks.  The sweep honours
the harness environment knobs: ``REPRO_BACKEND`` (execution backend,
resolved inside ``run_workload``), ``REPRO_JOBS`` (process-pool width,
resolved inside ``run_configs``), and ``REPRO_MEMO_DIR`` (opt-in result
cache; memoization is off unless the variable is set, so benchmarks
measure real runs by default).
"""

from __future__ import annotations

import os

import pytest

from repro.config import ALL_ON
from repro.evalharness.memo import Memoizer
from repro.evalharness.tables import run_all


@pytest.fixture(scope="session")
def baseline_results():
    """Every workload, statically and dynamically, all optimizations on."""
    memo_dir = os.environ.get("REPRO_MEMO_DIR")
    memo = Memoizer(memo_dir) if memo_dir else None
    return run_all(ALL_ON, memo=memo)


def render_and_attach(table, capsys=None) -> str:
    """Render a table and print it so `pytest -s` shows the artifact."""
    from repro.evalharness.tables import render_table

    text = render_table(table)
    print("\n" + text)
    return text
