"""dinero configuration sweep: the way-search loop unrolls to the
associativity (the §1 motivating use — one generic simulator, one
specialized code version per configuration)."""

from repro.dyc import compile_annotated, compile_static
from repro.frontend import compile_source
from repro.ir import Memory
from repro.machine import Machine
from repro.workloads.dinero import SOURCE, SUBBLOCK_WORDS, TRACE_LENGTH
from repro.workloads import DINERO


def run_config(csize: int, bsize: int, assoc: int):
    module = compile_source(SOURCE)
    nsets = csize // (bsize * assoc)
    cfg_words = [
        bsize.bit_length() - 1, nsets - 1, nsets.bit_length() - 1,
        assoc, 1, 0, SUBBLOCK_WORDS, bsize // 4 - 1,
    ]

    def setup(mem):
        cfg = mem.alloc_array(cfg_words)
        tags = mem.alloc(nsets * assoc, fill=-1)
        valid = mem.alloc(nsets * assoc, fill=0)
        trace = mem.alloc(TRACE_LENGTH * 2)
        return [cfg, tags, valid, trace, TRACE_LENGTH, 64 * 1024,
                0x2F6E2B1]

    mem_s = Memory()
    static_machine = Machine(compile_static(module), memory=mem_s,
                             tracked={"mainloop"})
    hits_s = static_machine.run("main", *setup(mem_s))

    compiled = compile_annotated(module)
    mem_d = Memory()
    machine, runtime = compiled.make_machine(memory=mem_d,
                                             tracked={"mainloop"})
    hits_d = machine.run("main", *setup(mem_d))
    assert hits_s == hits_d
    stats = runtime.stats.regions[0]
    speedup = (static_machine.stats.scope_cycles["mainloop"]
               / machine.stats.scope_cycles["mainloop"])
    return hits_d, speedup, stats


def test_associativity_sweep(benchmark):
    def sweep():
        return {
            assoc: run_config(8 * 1024, 32, assoc)
            for assoc in (1, 2, 4)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for assoc, (hits, speedup, stats) in results.items():
        print(f"  {assoc}-way: hits={hits}, region speedup "
              f"{speedup:.2f}x, {stats.instructions_generated} instrs, "
              f"unroll={stats.unrolling}")
        # The way-search loop unrolls completely for every config and
        # the specialized simulator always beats the generic one.
        assert stats.unrolling == "SW"
        assert speedup > 1.0

    # Higher associativity ⇒ more unrolled search code.
    gen = {a: r[2].instructions_generated for a, r in results.items()}
    assert gen[1] < gen[2] < gen[4]


def test_higher_associativity_raises_hit_rate():
    hits = {assoc: run_config(8 * 1024, 32, assoc)[0]
            for assoc in (1, 4)}
    # Functional sanity of the simulator itself: with the same capacity
    # a 4-way cache should not lose to direct-mapped on this trace.
    assert hits[4] >= hits[1] * 0.95
