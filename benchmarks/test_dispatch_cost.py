"""Reproduces the §4.4.3 dispatch-cost measurements.

Paper: "An unchecked dispatch requires about 10 cycles ... a
general-purpose hash-table-based dispatch requires on average 90 cycles.
In mipsi, this figure rises to 150 cycles per dispatch, due to
collisions in its hash table."
"""

import pytest

from repro.config import ALL_ON
from repro.dyc import compile_annotated
from repro.evalharness.runner import run_workload
from repro.frontend import compile_source
from repro.runtime.cache import CodeCache
from repro.workloads import BINARY, M88KSIM

SRC_HASHED = """
func f(x, n) {
    make_static(n);
    return x * n;
}
func main(x, reps) {
    var s = 0;
    for (i = 0; i < reps; i = i + 1) { s = s + f(x + i, i % 8); }
    return s;
}
"""


def _dispatch_stats(config, reps=400):
    compiled = compile_annotated(compile_source(SRC_HASHED), config)
    machine, runtime = compiled.make_machine()
    machine.run("main", 3, reps)
    stats = runtime.stats.regions[0]
    return stats.dispatch_cycles / stats.dispatches, stats


def test_unchecked_dispatch_is_about_10_cycles(benchmark):
    def run():
        return run_workload(M88KSIM)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = result.region_stats[0]
    average = stats.dispatch_cycles / stats.dispatches
    assert average == pytest.approx(10.0, abs=1.0)
    assert stats.unchecked_dispatches == stats.dispatches


def test_hash_dispatch_averages_about_90_cycles():
    average, stats = _dispatch_stats(ALL_ON)
    assert 60 <= average <= 120   # paper: ~90 on average
    assert stats.unchecked_dispatches == 0


def test_collisions_raise_hash_dispatch_cost():
    # The paper's mipsi observation: collisions push dispatch toward
    # ~150 cycles.  Drive the double-hash table into collisions with a
    # small table and verify probes (hence cost) increase.
    cache = CodeCache(initial_size=16, max_load_factor=0.95)
    for key in range(12):
        cache.insert((key * 16,), key)
    for key in range(12):
        result = cache.lookup((key * 16,))
        assert result.hit
    assert cache.average_probes > 1.0


def test_binary_kernel_sensitive_to_dispatch_policy(benchmark):
    def run():
        return run_workload(
            BINARY, ALL_ON.without("unchecked_dispatching")
        )

    cache_all = benchmark.pedantic(run, rounds=1, iterations=1)
    unchecked = run_workload(BINARY)
    m_all = cache_all.region_metrics()[0]
    m_unchecked = unchecked.region_metrics()[0]
    # §4.4.3: binary suffers a slowdown relative to static code under
    # cache-all; unchecked restores the win.
    assert m_all.asymptotic_speedup < 1.0
    assert m_unchecked.asymptotic_speedup > 1.0
