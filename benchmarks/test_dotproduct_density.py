"""Reproduces the §4.2 dotproduct density aside.

Paper: "dotproduct's static input vector was 90% zeroes and therefore
most of the calculations were eliminated; our experiments on more dense
vectors produced speedups similar to those of the other kernels, and
with no zeroes the dynamically compiled version experiences a slowdown
due to poor instruction scheduling."
"""

from repro.evalharness.runner import run_workload
from repro.workloads import make_dotproduct


def test_density_sweep(benchmark):
    densities = (0.9, 0.5, 0.0)

    def sweep():
        return {
            z: run_workload(make_dotproduct(z)) for z in densities
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    speedups = {
        z: results[z].region_metrics()[0].asymptotic_speedup
        for z in densities
    }
    print("\ndotproduct density sweep:", {
        f"{int(z * 100)}% zeroes": round(s, 2)
        for z, s in speedups.items()
    })

    # 90% zeroes: the headline speedup (paper 5.7).
    assert speedups[0.9] > 3.0
    # Denser vector: kernel-typical speedup, well below the sparse case.
    assert 1.0 < speedups[0.5] < speedups[0.9]
    # No zeroes: the dynamically compiled version loses — the emitted
    # unrolled code runs unscheduled while the static loop benefits from
    # the static compiler's scheduling (the paper's diagnosis).
    assert speedups[0.0] < 1.1


def test_zero_elimination_scales_with_density():
    sparse = run_workload(make_dotproduct(0.9))
    dense = run_workload(make_dotproduct(0.0))
    sparse_stats = sparse.region_stats[0]
    dense_stats = dense.region_stats[0]
    assert sparse_stats.zcp_zero_hits > 50
    assert dense_stats.zcp_zero_hits == 0
    assert (sparse_stats.instructions_generated
            < dense_stats.instructions_generated)
