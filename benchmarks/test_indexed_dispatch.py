"""The §3.1 extension: indexed dispatch makes byte-keyed programs win.

Paper: "a decompression program and a version of grep could become
profitable to compile dynamically if DyC supported fast cache lookups
over a small range of values (e.g., integers between 0 and 255).  For
such cases, the lookup could be implemented as a simple array indexing,
in place of DyC's current general-purpose hash-table lookup."

We implement that policy (``cache_indexed``) and reproduce the claim on
a dictionary decompressor whose region is entered once per input code
byte, specialized per code value.
"""

import pytest

from repro.config import ALL_ON, OptConfig
from repro.dyc import compile_annotated, compile_static
from repro.frontend import compile_source
from repro.ir import Memory
from repro.machine import Machine
from repro.workloads.inputs import Lcg

DECOMPRESS_SRC_TEMPLATE = """
// Dictionary decompressor: each code byte expands to a run defined by
// the (static) dictionary.  Specializing on the code unrolls its
// expansion into straight-line stores.
func expand(dict, code, out, pos) {{
    make_static(dict, code, k) : {policy};
    var len = dict@[code * 2];
    var val = dict@[code * 2 + 1];
    for (k = 0; k < len; k = k + 1) {{
        out[pos + k] = val + k;    // delta runs: val+k folds per slot
    }}
    return len;
}}

func decompress(dict, input, n, out) {{
    var pos = 0;
    for (i = 0; i < n; i = i + 1) {{
        pos = pos + expand(dict, input[i], out, pos);
    }}
    return pos;
}}
"""

CODES = 48            # distinct code bytes in use
INPUT_LENGTH = 700


def build_inputs(mem: Memory):
    rng = Lcg(seed=0x1DE)
    dictionary = []
    for code in range(CODES):
        dictionary.extend([8 + rng.next_int(17),     # run length 8..24
                           rng.next_int(200)])       # run base value
    dict_base = mem.alloc_array(dictionary)
    codes = [rng.next_int(CODES) for _ in range(INPUT_LENGTH)]
    input_base = mem.alloc_array(codes)
    max_out = INPUT_LENGTH * 25
    out = mem.alloc(max_out, fill=0)
    return dict_base, input_base, out


def run(policy: str, config: OptConfig = ALL_ON):
    source = DECOMPRESS_SRC_TEMPLATE.format(policy=policy)
    module = compile_source(source)

    mem_s = Memory()
    args_s = build_inputs(mem_s)
    static_machine = Machine(compile_static(module), memory=mem_s,
                             tracked={"expand"})
    expected = static_machine.run("decompress", args_s[0], args_s[1],
                                  INPUT_LENGTH, args_s[2])

    mem_d = Memory()
    args_d = build_inputs(mem_d)
    compiled = compile_annotated(module, config)
    machine, runtime = compiled.make_machine(memory=mem_d,
                                             tracked={"expand"})
    actual = machine.run("decompress", args_d[0], args_d[1],
                         INPUT_LENGTH, args_d[2])
    assert actual == expected
    assert (mem_s.read_array(args_s[2], expected)
            == mem_d.read_array(args_d[2], actual))
    stats = runtime.stats.regions[0]
    return (static_machine.stats.scope_cycles["expand"],
            machine.stats.scope_cycles["expand"], stats)


def test_indexed_dispatch_makes_decompression_profitable(benchmark):
    def measure():
        return run("cache_indexed")

    static_cycles, dynamic_cycles, stats = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    speedup = static_cycles / dynamic_cycles
    print(f"\ndecompress (cache_indexed): {speedup:.2f}x, "
          f"{stats.specializations} versions, "
          f"dispatch {stats.dispatch_cycles / stats.dispatches:.0f} "
          "cycles avg")
    assert stats.indexed_dispatches == stats.dispatches
    assert stats.specializations == CODES
    # The §3.1 claim: profitable with indexed dispatch.
    assert speedup > 1.0


def test_hash_dispatch_eats_the_win():
    static_cycles, dyn_indexed, _ = run("cache_indexed")
    _, dyn_hashed, hashed_stats = run("cache_all")
    assert hashed_stats.indexed_dispatches == 0
    # The general-purpose hash lookup per byte costs most of the
    # benefit — the reason these programs were excluded in §3.1.
    assert dyn_hashed > dyn_indexed
    assert (static_cycles / dyn_hashed) < (static_cycles / dyn_indexed)


def test_indexed_cache_is_safe_not_unchecked():
    # Unlike cache-one-unchecked, the indexed cache verifies its key:
    # every code byte gets its own correct expansion (the output
    # equality inside run() already proves it; this documents why).
    _, _, stats = run("cache_indexed")
    assert stats.specializations == CODES
    assert stats.unchecked_dispatches == 0


def test_indexed_rejects_out_of_range_keys():
    from repro.errors import CacheError
    from repro.runtime.cache import IndexedCache

    cache = IndexedCache()
    with pytest.raises(CacheError, match="outside"):
        cache.lookup((1000,))
    with pytest.raises(CacheError, match="outside"):
        cache.insert((-1,), "x")
