"""Reproduces the §4.2 m88ksim breakpoint aside.

Paper: with the SPEC input (no breakpoints) the region generates only 6
instructions at 365 cycles each; "our experiments with 5 breakpoints
yielded 98 generated instructions at a cost of only 66 cycles per
instruction" — more instructions, much lower per-instruction overhead.
"""

from repro.evalharness.runner import run_workload
from repro.workloads import make_m88ksim


def test_breakpoint_count_sweep(benchmark):
    def sweep():
        return {
            n: run_workload(make_m88ksim(n)) for n in (0, 5)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    none = results[0].region_metrics()[0]
    five = results[5].region_metrics()[0]

    print(f"\nm88ksim breakpoints: 0bp gen={none.instructions_generated} "
          f"o/i={none.overhead_per_instruction:.0f}  |  "
          f"5bp gen={five.instructions_generated} "
          f"o/i={five.overhead_per_instruction:.0f}")

    # With breakpoints set, more code is generated...
    assert five.instructions_generated > none.instructions_generated
    # ...and the fixed specialization cost amortizes: overhead per
    # generated instruction falls sharply (paper: 365 -> 66).
    assert (five.overhead_per_instruction
            < none.overhead_per_instruction / 3)


def test_breakpoint_hit_semantics():
    # Functional check: a breakpoint on a reachable pc stops simulation.
    workload = make_m88ksim(0)
    result = run_workload(workload)
    full_steps = result.return_values[0]

    import repro.workloads.m88ksim as m88k
    from repro.dyc import compile_annotated
    from repro.frontend import compile_source
    from repro.ir import Memory

    module = compile_source(m88k.SOURCE)
    compiled = compile_annotated(module)
    mem = Memory()
    # Table with one valid breakpoint at pc=5 (inside the loop).
    prog = mem.alloc_array(m88k._SIM_PROGRAM)
    regs = mem.alloc(8)
    data = mem.alloc(64)
    table = [1, 5] + [0, 0] * (m88k.MAX_BREAKPOINTS - 1)
    bps = mem.alloc_array(table)
    pipe = mem.alloc(12, fill=0)
    machine, _ = compiled.make_machine(memory=mem)
    steps = machine.run("main", prog, regs, data, bps, pipe,
                        m88k.PROGRAM_STEPS)
    assert steps < full_steps  # stopped at the breakpoint
