"""Regenerates Table 1: application characteristics.

Paper reference (Table 1): ten programs — five applications
(dinero, m88ksim, mipsi, pnmconvol, viewperf) and five kernels —
with their annotated static variables and experimental input values.
"""

from conftest import render_and_attach

from repro.evalharness.tables import build_table1
from repro.workloads import ALL_WORKLOADS, APPLICATIONS, KERNELS


def test_table1_characteristics(benchmark):
    table = benchmark.pedantic(build_table1, rounds=1, iterations=1)
    text = render_and_attach(table)

    # The workload roster matches the paper's.
    assert len(APPLICATIONS) == 5
    assert len(KERNELS) == 5
    for expected in ("dinero", "m88ksim", "mipsi", "pnmconvol",
                     "viewperf", "binary", "chebyshev", "dotproduct",
                     "query", "romberg"):
        assert expected in text

    # The experimental input values of §3.3 / Table 1.
    assert "direct-mapped, 32B blocks" in text
    assert "no breakpoints" in text
    assert "bubble sort" in text
    assert "11x11 with 9% ones, 83% zeroes" in text
    assert "perspective matrix, one light source" in text
    assert "90% zeroes" in text


def test_kernels_are_smaller_than_applications():
    # §3.1: kernels are one to two orders of magnitude smaller.
    app_lines = sum(w.lines_of_source() for w in APPLICATIONS) / 5
    kernel_lines = sum(w.lines_of_source() for w in KERNELS) / 5
    assert kernel_lines < app_lines


def test_every_workload_declares_regions():
    for workload in ALL_WORKLOADS:
        assert workload.region_functions
        assert workload.entry
        assert workload.kind in ("application", "kernel")
