"""Regenerates Table 2: which optimizations each program uses.

Paper reference (Table 2 + §4.1): all optimizations are needed by at
least one application; several (complete loop unrolling, static loads,
unchecked dispatching) are used by nearly all; the kernels, "lacking the
complexity of the applications", use fewer — rarely the DyC-unique ones
(multi-way unrolling, dynamic ZCP/DAE, internal promotions, polyvariant
division).
"""

from conftest import render_and_attach

from repro.evalharness.tables import build_table2


def _stats_by_label(results):
    out = {}
    for name, result in results.items():
        for fn, region_ids in result.region_functions.items():
            label = (name if len(result.workload.region_functions) == 1
                     else f"{name}: {fn}")
            out[label] = [result.region_stats[r] for r in region_ids]
    return out


def test_table2_matrix(benchmark, baseline_results):
    table = benchmark.pedantic(
        build_table2, args=(baseline_results,), rounds=1, iterations=1
    )
    render_and_attach(table)
    rows = {row[0]: row[1:] for row in table.rows}
    assert len(rows) == 11  # 10 programs, viewperf has two regions


def test_unrolling_modes(baseline_results):
    stats = _stats_by_label(baseline_results)
    # Single-way vs multi-way unrolling per the paper's Table 2.
    assert stats["dinero"][0].unrolling == "SW"
    assert stats["mipsi"][0].unrolling == "MW"
    assert stats["binary"][0].unrolling == "MW"
    assert stats["pnmconvol"][0].unrolling == "SW"
    assert stats["dotproduct"][0].unrolling == "SW"
    assert stats["query"][0].unrolling == "SW"
    assert stats["romberg"][0].unrolling == "SW"
    assert stats["m88ksim"][0].unrolling in (None, "SW")  # empty table


def test_headline_optimization_usage(baseline_results):
    stats = _stats_by_label(baseline_results)
    # mipsi: static loads + static calls + internal promotions (§4.4.1).
    mipsi = stats["mipsi"][0]
    assert mipsi.used_static_loads
    assert mipsi.used_static_calls
    assert mipsi.used_internal_promotions
    # pnmconvol: ZCP + DAE (§4.4.4, Figure 4).
    pnm = stats["pnmconvol"][0]
    assert pnm.used_zcp and pnm.used_dae
    # chebyshev: static calls to cosine (§4.4.4).
    assert stats["chebyshev"][0].used_static_calls
    # viewperf shader: polyvariant division (§4.4.4).
    assert stats["viewperf: shade"][0].used_polyvariant_division
    # dinero: strength reduction of the configuration arithmetic.
    assert stats["dinero"][0].used_sr
    # Everything in the suite uses unchecked dispatching (§4.4.3).
    for label, region_stats in stats.items():
        assert any(s.used_unchecked_dispatch for s in region_stats), label


def test_kernels_use_fewer_optimizations(baseline_results):
    # §4.1's observation, computed from the usage matrix.
    stats = _stats_by_label(baseline_results)

    def count_used(region_stats) -> int:
        s = region_stats[0]
        return sum([
            s.unrolling is not None, s.used_static_loads,
            s.used_static_calls, s.used_zcp, s.used_dae, s.used_sr,
            s.used_internal_promotions, s.used_polyvariant_division,
            s.used_unchecked_dispatch,
        ])

    kernel_labels = ["binary", "chebyshev", "dotproduct", "query",
                     "romberg"]
    app_labels = ["dinero", "m88ksim", "mipsi", "pnmconvol",
                  "viewperf: project_and_clip", "viewperf: shade"]
    kernel_avg = sum(count_used(stats[k]) for k in kernel_labels) / 5
    app_avg = sum(count_used(stats[a]) for a in app_labels) / 6
    assert kernel_avg <= app_avg
