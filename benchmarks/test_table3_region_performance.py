"""Regenerates Table 3: dynamic-region performance, all optimizations on.

Paper reference (Table 3 + §4.2): application region speedups range 1.2
to 5.0, with mipsi and m88ksim highest "because most of the code in
their dynamic regions could be optimized away"; break-even points are
"well within normal application usage"; complete loop unrolling accounts
for most generated instructions.
"""

import math

from conftest import render_and_attach

from repro.evalharness.tables import build_table3


def _metrics(results):
    out = {}
    for result in results.values():
        for m in result.region_metrics():
            out[m.region_label] = m
    return out


def test_table3(benchmark, baseline_results):
    table = benchmark.pedantic(
        build_table3, args=(baseline_results,), rounds=1, iterations=1
    )
    render_and_attach(table)
    assert len(table.rows) == 11


def test_every_region_beats_static_code(baseline_results):
    # The paper's headline: dynamic compilation wins everywhere, on
    # applications as well as kernels.
    for label, m in _metrics(baseline_results).items():
        assert m.asymptotic_speedup > 1.0, (
            f"{label}: {m.asymptotic_speedup:.2f}"
        )


def test_speedup_ordering_matches_paper(baseline_results):
    # Shape check: the paper's big winners (mipsi, m88ksim, chebyshev,
    # dotproduct) clearly separate from the modest ones (dinero,
    # viewperf, binary, query, romberg).
    m = _metrics(baseline_results)
    big = [m["mipsi"], m["m88ksim"], m["chebyshev"], m["dotproduct"],
           m["pnmconvol"]]
    modest = [m["dinero"], m["viewperf: project_and_clip"],
              m["viewperf: shade"], m["binary"], m["query"],
              m["romberg"]]
    assert min(x.asymptotic_speedup for x in big) > \
        max(x.asymptotic_speedup for x in modest)


def test_breakeven_points_within_normal_usage(baseline_results):
    # §4.2: e.g. dinero pays off within one simulation run; real cache
    # studies simulate millions of references.
    m = _metrics(baseline_results)
    assert m["dinero"].breakeven_units < 6000       # < one invocation
    assert m["m88ksim"].breakeven_units < 1500      # < one program run
    assert m["mipsi"].breakeven_invocations <= 1.0
    assert m["chebyshev"].breakeven_units <= 5      # paper: 2
    for label, metrics in m.items():
        assert not math.isinf(metrics.breakeven_units), label


def test_unrolling_dominates_generated_instructions(baseline_results):
    # §4.2: "Complete loop unrolling generates more instructions than
    # the other optimizations" — the heavy unrollers generate the most.
    m = _metrics(baseline_results)
    heavy = (m["chebyshev"].instructions_generated,
             m["romberg"].instructions_generated,
             m["pnmconvol"].instructions_generated)
    assert min(heavy) > m["m88ksim"].instructions_generated
    # m88ksim generates almost nothing with the SPEC (no-breakpoint)
    # input (paper: 6 instructions; ours collapses to one return).
    assert m["m88ksim"].instructions_generated <= 6


def test_overhead_per_instruction_scale(baseline_results):
    # Paper range: 13..823 cycles per generated instruction, with tiny
    # regions (m88ksim) paying the most per instruction.
    m = _metrics(baseline_results)
    for label, metrics in m.items():
        assert 5 <= metrics.overhead_per_instruction <= 5000, label
    assert m["m88ksim"].overhead_per_instruction == max(
        x.overhead_per_instruction for x in m.values()
    )
