"""Regenerates Table 4: whole-program performance (applications).

Paper reference (Table 4 + §4.3): whole-program speedup "depends on the
proportion of total run time spent executing the dynamic region" —
mipsi (~100% in region) gains the most; m88ksim (small region share)
the least; all applications still win once dynamic-compilation overhead
is included.
"""

from conftest import render_and_attach

from repro.evalharness.tables import build_table4
from repro.workloads import APPLICATIONS


def _apps(baseline_results):
    return {w.name: baseline_results[w.name] for w in APPLICATIONS}


def test_table4(benchmark, baseline_results):
    results = _apps(baseline_results)
    table = benchmark.pedantic(
        build_table4, args=(results,), rounds=1, iterations=1
    )
    render_and_attach(table)
    assert len(table.rows) == 5


def test_whole_program_speedups_positive(baseline_results):
    # Including DC overhead, every application still wins (§4.3).
    for name, result in _apps(baseline_results).items():
        assert result.whole_program_speedup > 1.0, name


def test_speedup_tracks_region_fraction(baseline_results):
    # §4.3: whole-program speedup roughly follows the region's share of
    # execution — mipsi (~100%) gains most among interpreters.
    results = _apps(baseline_results)
    mipsi = results["mipsi"]
    assert mipsi.region_fraction_of_static > 0.95
    # Applications with a smaller region share gain less overall than
    # pnmconvol/mipsi, whose regions dominate execution.
    assert results["dinero"].whole_program_speedup < \
        results["pnmconvol"].whole_program_speedup
    assert results["dinero"].region_fraction_of_static < \
        results["pnmconvol"].region_fraction_of_static


def test_whole_speedup_bounded_by_region_speedup(baseline_results):
    # Amdahl: whole-program speedup cannot exceed the region speedup.
    for name, result in _apps(baseline_results).items():
        region_speedups = [
            m.asymptotic_speedup for m in result.region_metrics()
        ]
        assert result.whole_program_speedup <= max(region_speedups) + 0.05


def test_dinero_region_share_matches_paper(baseline_results):
    # Paper: 49.9% of dinero's static execution is the dynamic region;
    # ours lands in the same band.
    result = baseline_results["dinero"]
    assert 0.35 <= result.region_fraction_of_static <= 0.70
