"""Regenerates Table 5: region speedups without a particular feature.

Paper reference (Table 5 + §4.4): complete loop unrolling is the single
most important optimization — "without it, most programs experienced
slowdowns relative to their statically compiled counterparts"; static
loads play a similar enabling role; cache-all dispatching costs binary
and query their win; removing static calls reduces chebyshev's 6x to a
marginal advantage; pnmconvol *slows down* without dead-assignment
elimination because the generated code overflows the I-cache.
"""

import pytest

from conftest import render_and_attach

from repro.config import ALL_ON
from repro.evalharness.runner import run_workload
from repro.evalharness.tables import build_table5
from repro.workloads import (
    BINARY,
    CHEBYSHEV,
    DOTPRODUCT,
    M88KSIM,
    PNMCONVOL,
    QUERY,
)


@pytest.fixture(scope="module")
def table5(baseline_results):
    return build_table5(baseline_results)


def _cell(table, region: str, column: str):
    headers = table.headers
    col = headers.index(column)
    for row in table.rows:
        if row[0] == region:
            value = row[col].rstrip("*")
            return float(value) if value else None
    raise AssertionError(f"no row {region}")


def test_table5(benchmark, baseline_results):
    table = benchmark.pedantic(
        build_table5, args=(baseline_results,), rounds=1, iterations=1
    )
    render_and_attach(table)
    assert len(table.rows) == 11


def test_unrolling_is_the_most_important_optimization(table5):
    # §4.4.1: without complete loop unrolling most programs slow down.
    slowdowns = 0
    applicable = 0
    for row in table5.rows:
        cell = _cell(table5, row[0], "-Unroll")
        if cell is None:
            continue
        applicable += 1
        if cell < 1.0:
            slowdowns += 1
        # And unrolling never *helps* to disable:
        assert cell <= _cell(table5, row[0], "All Opts") + 1e-9
    assert applicable >= 9
    assert slowdowns >= applicable - 2  # "most programs"


def test_static_loads_similarly_pivotal(table5):
    # §4.4.2: important "in all applications and most kernels".
    for region in ("m88ksim", "pnmconvol", "dotproduct", "query"):
        without = _cell(table5, region, "-StLoads")
        assert without < _cell(table5, region, "All Opts")


def test_unchecked_dispatching_effects(table5):
    # §4.4.3: applications lose little under cache-all — except
    # m88ksim, which dispatches per simulated instruction; the small
    # kernels binary and query slow down outright.
    assert _cell(table5, "binary", "-Unchecked") < 1.0
    assert _cell(table5, "query", "-Unchecked") < 1.0
    m88k_all = _cell(table5, "m88ksim", "All Opts")
    assert _cell(table5, "m88ksim", "-Unchecked") < m88k_all / 2
    # dinero/pnmconvol dispatch once per run: cache-all costs nothing.
    for region in ("dinero", "pnmconvol"):
        assert _cell(table5, region, "-Unchecked") == pytest.approx(
            _cell(table5, region, "All Opts"), rel=0.02
        )


def test_static_calls_pivotal_for_chebyshev(table5):
    # §4.4.4: "treating calls to cosine as static turned a marginal 20%
    # advantage into a 6-fold speedup".
    without = _cell(table5, "chebyshev", "-StCalls")
    with_all = _cell(table5, "chebyshev", "All Opts")
    assert without < 1.5           # marginal at best
    assert with_all / without > 3  # the fold difference


def test_dae_pivotal_for_pnmconvol(table5):
    # §4.4.4: without DAE the generated code overflows the I-cache and
    # pnmconvol is *slower* than static code.
    assert _cell(table5, "pnmconvol", "-DAE") < 1.0
    assert _cell(table5, "pnmconvol", "All Opts") > 3.0


def test_pnmconvol_icache_mechanism():
    # The DAE cliff really is the I-cache: without DAE the emitted code
    # footprint exceeds the (scaled) capacity; with DAE it fits.
    base = run_workload(PNMCONVOL)
    ablated = run_workload(
        PNMCONVOL, ALL_ON.without("dead_assignment_elimination")
    )
    capacity = PNMCONVOL.icache_capacity_bytes // 4
    with_dae = base.region_stats[0].instructions_generated
    without_dae = ablated.region_stats[0].instructions_generated
    assert with_dae < capacity
    assert without_dae > capacity
    assert 2.0 < without_dae / with_dae < 10.0  # paper: 2.7x capacity


def test_mipsi_needs_all_three(table5):
    # §4.4.4: mipsi needs unrolling + static loads + static calls; with
    # any one missing it slows down.
    for column in ("-Unroll", "-StLoads", "-StCalls"):
        assert _cell(table5, "mipsi", column) < 1.0
