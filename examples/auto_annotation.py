"""Automatic annotation by value profiling — the paper's §6 next step.

"One of our future research goals is to automate program annotation
using techniques such as value profiling to identify static variable
candidates" (§3.2/§6).  This example runs the whole loop:

1. run the *unannotated* program under a value profiler;
2. rank hot functions with quasi-invariant parameters;
3. apply the best suggestion (make_static + @ loads);
4. dynamically compile and verify the speedup.

Run:  python examples/auto_annotation.py
"""

from repro.autoannotate import (
    ValueProfiler,
    annotate_module,
    suggest_annotations,
)
from repro.dyc import compile_annotated, compile_static
from repro.frontend import compile_source
from repro.ir import Memory
from repro.machine import Machine

#: A completely unannotated program: a FIR filter whose tap table and
#: tap count never change across the driver's calls.
SOURCE = """
func fir(taps, ntaps, signal, p) {
    var acc = 0.0;
    for (k = 0; k < ntaps; k = k + 1) {
        acc = acc + taps[k] * signal[p - k];
    }
    return acc;
}

func driver(taps, ntaps, signal, n, out) {
    var total = 0.0;
    for (p = ntaps - 1; p < n; p = p + 1) {
        var y = fir(taps, ntaps, signal, p);
        out[p] = y;
        total = total + y;
    }
    return total;
}
"""

#: A sparse tap table: once annotated, dynamic zero propagation + DAE
#: delete every zero tap's multiply, accumulate, *and* signal load.
TAPS = [0.0, 1.0, 0.0, 0.0, 2.5, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0]
SIGNAL_LENGTH = 120


def build(mem: Memory):
    taps = mem.alloc_array(TAPS)
    signal = mem.alloc_array(
        [0.1 * ((7 * i) % 23) - 1.0 for i in range(SIGNAL_LENGTH)]
    )
    out = mem.alloc(SIGNAL_LENGTH, fill=0.0)
    return taps, signal, out


def main():
    module = compile_source(SOURCE)

    # --- 1. profile the statically compiled program -------------------
    mem = Memory()
    taps, signal, out = build(mem)
    machine = Machine(compile_static(module), memory=mem)
    profiler = ValueProfiler(module)
    machine.profiler = profiler
    expected = machine.run("driver", taps, len(TAPS), signal,
                           SIGNAL_LENGTH, out)
    static_cycles = machine.stats.cycles

    print("profile (hot functions):")
    for fp in profiler.hottest(3):
        print(f"  {fp.name:8s} calls={fp.calls:3d} "
              f"inclusive={fp.inclusive_cycles:8.0f}")

    # --- 2. suggest annotations ---------------------------------------
    suggestions = suggest_annotations(profiler, module)
    print("\nsuggestions:")
    for s in suggestions:
        print(f"  in {s.function}: {s.annotation_source()}")
        print(f"     {s.rationale}")

    # --- 3. apply + compile -------------------------------------------
    fir_suggestions = [s for s in suggestions if s.function == "fir"]
    annotated = annotate_module(module, fir_suggestions,
                                static_loads=True)
    compiled = compile_annotated(annotated)

    # --- 4. verify + measure -------------------------------------------
    mem2 = Memory()
    taps2, signal2, out2 = build(mem2)
    dyn_machine, runtime = compiled.make_machine(memory=mem2)
    actual = dyn_machine.run("driver", taps2, len(TAPS), signal2,
                             SIGNAL_LENGTH, out2)
    assert round(actual, 9) == round(expected, 9), (actual, expected)
    dynamic_cycles = dyn_machine.stats.cycles + dyn_machine.stats.dc_cycles

    stats = runtime.stats.regions[0]
    print(f"\nresult verified: {actual:.4f}")
    print(f"static:               {static_cycles:9.0f} cycles")
    print(f"auto-annotated:       {dynamic_cycles:9.0f} cycles "
          f"(incl. {dyn_machine.stats.dc_cycles:.0f} compile overhead)")
    print(f"whole-run speedup:    "
          f"{static_cycles / dynamic_cycles:9.2f}x")
    print(f"zero/copy propagation hits: "
          f"{stats.zcp_zero_hits + stats.zcp_copy_hits} "
          f"(DAE removed {stats.dae_removed} assignments, incl. the "
          "dead signal loads)")


if __name__ == "__main__":
    main()
