"""Specializing an architectural simulator to its configuration (dinero).

The paper's other motivating class: "specializing architectural
simulators for the configuration being simulated" (§1).  A generic
set-associative cache simulator is specialized per configuration: the
set/tag arithmetic strength-reduces to shifts and masks, the way-search
loop unrolls to the associativity, and the write-policy branches fold.
Each distinct configuration gets its own code version through the
region's code cache.

Run:  python examples/cache_simulator.py
"""

from repro.dyc import compile_annotated, compile_static
from repro.frontend import compile_source
from repro.ir import Memory
from repro.machine import Machine
from repro.workloads.inputs import address_trace

SOURCE = """
// cfg: [0]=block shift  [1]=set mask   [2]=set shift
//      [3]=associativity [4]=sub-block size (words, power of two)
func simulate(cfg, tags, valid, sectors, trace, ntrace) {
    make_static(cfg, bshift, setmask, setshift, assoc, sbsize, w);
    var bshift = cfg@[0];
    var setmask = cfg@[1];
    var setshift = cfg@[2];
    var assoc = cfg@[3];
    var sbsize = cfg@[4];
    var hits = 0;
    for (t = 0; t < ntrace; t = t + 1) {
        var addr = trace[t];
        var block = addr >> bshift;
        var set = block & setmask;
        var tag = block >> setshift;
        var base = set * assoc;
        // Sub-block accounting: / and % by the configured sub-block
        // size strength-reduce to shift/mask at dynamic compile time.
        var sector = ((addr >> 2) / sbsize) % 16;
        sectors[sector] = sectors[sector] + 1;
        var found = 0;
        for (w = 0; w < assoc; w = w + 1) {
            var hit = valid[base + w] & (tags[base + w] == tag);
            found = found | hit;
        }
        if (found == 1) { hits = hits + 1; }
        else { tags[base] = tag; valid[base] = 1; }
    }
    return hits;
}
"""

#: (cache size, block size, associativity) configurations to sweep.
CONFIGS = [
    (8 * 1024, 32, 1),     # the paper's dinero configuration
    (16 * 1024, 64, 2),
    (4 * 1024, 16, 4),
]

TRACE_LENGTH = 3000


def cfg_words(csize: int, bsize: int, assoc: int) -> list[int]:
    nsets = csize // (bsize * assoc)
    return [
        bsize.bit_length() - 1,
        nsets - 1,
        nsets.bit_length() - 1,
        assoc,
        2,                       # sub-block size (words)
    ]


def main():
    module = compile_source(SOURCE)
    compiled = compile_annotated(module)
    static_module = compile_static(module)

    mem = Memory()
    trace_values = address_trace(TRACE_LENGTH, seed=21)
    trace = mem.alloc_array(trace_values)
    machine, runtime = compiled.make_machine(memory=mem)

    static_mem = Memory()
    static_trace = static_mem.alloc_array(trace_values)
    static_machine = Machine(static_module, memory=static_mem)

    print(f"{'config':>22s} {'hits':>6s} {'static cyc':>11s} "
          f"{'dynamic cyc':>12s} {'speedup':>8s}")
    for csize, bsize, assoc in CONFIGS:
        words = cfg_words(csize, bsize, assoc)
        nslots = (csize // (bsize * assoc)) * assoc

        cfg_s = static_mem.alloc_array(words)
        tags_s = static_mem.alloc(nslots, fill=-1)
        valid_s = static_mem.alloc(nslots, fill=0)
        sectors_s = static_mem.alloc(16, fill=0)
        before = static_machine.stats.cycles
        hits_s = static_machine.run("simulate", cfg_s, tags_s, valid_s,
                                    sectors_s, static_trace,
                                    TRACE_LENGTH)
        static_cycles = static_machine.stats.cycles - before

        cfg_d = mem.alloc_array(words)
        tags_d = mem.alloc(nslots, fill=-1)
        valid_d = mem.alloc(nslots, fill=0)
        sectors_d = mem.alloc(16, fill=0)
        # Warm the code cache, then measure steady state.
        machine.run("simulate", cfg_d, tags_d, valid_d, sectors_d,
                    trace, TRACE_LENGTH)
        for addr in range(nslots):
            mem.store(tags_d + addr, -1)
            mem.store(valid_d + addr, 0)
        before = machine.stats.cycles
        hits_d = machine.run("simulate", cfg_d, tags_d, valid_d,
                             sectors_d, trace, TRACE_LENGTH)
        dynamic_cycles = machine.stats.cycles - before

        assert hits_s == hits_d, "specialized simulator must agree"
        label = f"{csize // 1024}KB/{bsize}B/{assoc}-way"
        print(f"{label:>22s} {hits_d:6d} {static_cycles:11.0f} "
              f"{dynamic_cycles:12.0f} "
              f"{static_cycles / dynamic_cycles:8.2f}x")

    stats = runtime.stats.regions[0]
    print(f"\ncode versions compiled: {stats.specializations} "
          f"(one per configuration)")
    print(f"dispatches: {stats.dispatches}  "
          f"strength reductions applied: {stats.sr_applied}  "
          f"config loads folded: {stats.static_loads_folded}")
    print("note: each cfg pointer is a distinct cache key, so re-running "
          "a configuration reuses its version.")


if __name__ == "__main__":
    main()
