"""Conditional specialization (§2.2.5): guard the annotation.

The paper: "conditional specialization can be used ... to limit
specialization to those values of the static variables that are
particularly amenable to optimization, to those values that occur
frequently enough to merit the effort of dynamic compilation, or to
those loops that, when completely unrolled, will fit in the L1
instruction cache."

Here a matrix-scaling routine specializes only when the scale vector is
short enough to unroll profitably; long vectors take the ordinary
statically compiled path, with no dispatch and no code-cache growth.

Run:  python examples/conditional_specialization.py
"""

from repro.dyc import compile_annotated, compile_static
from repro.frontend import compile_source
from repro.ir import Memory
from repro.machine import Machine

SOURCE = """
func scale_rows(data, rows, cols, weights, x) {
    if (cols <= 8) {
        // Worth specializing: unrolls completely, weights fold.
        make_static(weights, cols, c);
    }
    var acc = 0.0;
    for (r = 0; r < rows; r = r + 1) {
        for (c = 0; c < cols; c = c + 1) {
            acc = acc + data[r * cols + c] * weights@[c] * x;
        }
    }
    return acc;
}
"""


def build_inputs(mem, rows, cols):
    data = mem.alloc_array([float(i % 9) for i in range(rows * cols)])
    weights = mem.alloc_array(
        [0.0 if i % 3 == 0 else 1.0 for i in range(cols)]
    )
    return data, weights


def run_case(machine, runtime, mem, rows, cols, label, inputs):
    data, weights = inputs
    before = machine.stats.cycles
    result = machine.run("scale_rows", data, rows, cols, weights, 2.0)
    cycles = machine.stats.cycles - before
    stats = runtime.stats.regions.get(0)
    dispatches = stats.dispatches if stats else 0
    versions = stats.specializations if stats else 0
    print(f"{label:>28s}: result={result:10.1f}  cycles={cycles:8.0f}  "
          f"dispatches so far={dispatches}  versions={versions}")
    return result


def main():
    module = compile_source(SOURCE)
    compiled = compile_annotated(module)
    mem = Memory()
    machine, runtime = compiled.make_machine(memory=mem)

    print("Guarded make_static: only cols <= 8 dynamically compiles.\n")
    small = build_inputs(mem, 40, 4)
    large = build_inputs(mem, 40, 30)
    other = build_inputs(mem, 40, 6)
    run_case(machine, runtime, mem, 40, 4,
             "small (specialized)", small)
    run_case(machine, runtime, mem, 40, 4,
             "small again (cache hit)", small)
    run_case(machine, runtime, mem, 40, 30,
             "large (bypasses, no dispatch)", large)
    run_case(machine, runtime, mem, 40, 6,
             "another small (new version)", other)

    # Verify both paths against the statically compiled program.
    static_machine = Machine(compile_static(module), memory=mem)
    for rows, cols in ((40, 4), (40, 30)):
        data, weights = build_inputs(mem, rows, cols)
        lhs = machine.run("scale_rows", data, rows, cols, weights, 2.0)
        rhs = static_machine.run("scale_rows", data, rows, cols,
                                 weights, 2.0)
        assert lhs == rhs
    print("\nboth paths verified against the static baseline.")


if __name__ == "__main__":
    main()
