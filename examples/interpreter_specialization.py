"""Specializing an interpreter to its program — the mipsi idea.

The paper's motivating application class: "specializing ... language
interpreters for the program being interpreted" (§1).  We write a tiny
stack-free bytecode interpreter in MiniC, annotate its program counter
static, and let multi-way complete loop unrolling (§2.2.4) turn the
interpreted program into native region code: fetches fold (static
loads), the opcode dispatch folds (static branches), and the interpreted
program's control flow — loop included — reappears as branches between
specialization contexts.

In effect: specializer(interpreter, program) = compiled program.

Run:  python examples/interpreter_specialization.py
"""

from repro.dyc import compile_annotated, compile_static
from repro.frontend import compile_source
from repro.ir import Memory, format_function
from repro.machine import Machine
from repro.runtime.cache import UncheckedCache

SOURCE = """
// Bytecode (2 words per instruction): [op, arg]
//   0 halt | 1 push-add imm | 2 double | 3 sub imm
//   4 jump-if-positive arg | 5 jump arg
func interp(prog, acc) {
    make_static(prog, pc, running) : cache_one_unchecked;
    var pc = 0;
    var running = 1;
    while (running) {
        var op = prog@[pc * 2];
        var arg = prog@[pc * 2 + 1];
        pc = pc + 1;
        if (op == 0) { running = 0; }
        else { if (op == 1) { acc = acc + arg; }
        else { if (op == 2) { acc = acc * 2; }
        else { if (op == 3) { acc = acc - arg; }
        else { if (op == 4) {
            if (acc > 0) { pc = arg; }
        }
        else { pc = arg; } } } } }
    }
    return acc;
}
"""

#: The interpreted program: repeatedly subtract 7 while positive, then
#: add 100 — it contains a loop, so the specialized code has a back edge.
PROGRAM = [
    3, 7,     # 0: acc -= 7
    4, 0,     # 1: if acc > 0 goto 0
    1, 100,   # 2: acc += 100
    2, 0,     # 3: acc *= 2
    0, 0,     # 4: halt
]


def main():
    module = compile_source(SOURCE)

    # Interpret (statically compiled) vs specialize-then-run.
    mem = Memory()
    prog = mem.alloc_array(PROGRAM)
    static_machine = Machine(compile_static(module), memory=mem)
    interpreted = static_machine.run("interp", prog, 50)
    interp_cycles = static_machine.stats.cycles

    compiled = compile_annotated(module)
    mem2 = Memory()
    prog2 = mem2.alloc_array(PROGRAM)
    machine, runtime = compiled.make_machine(memory=mem2)
    first = machine.run("interp", prog2, 50)
    baseline = machine.stats.cycles
    second = machine.run("interp", prog2, 50)
    specialized_cycles = machine.stats.cycles - baseline
    assert first == second == interpreted

    cache = runtime.entry_caches[0]
    code = (cache._value if isinstance(cache, UncheckedCache)
            else next(iter(cache.items()))[1])
    stats = runtime.stats.regions[0]

    print("The interpreted program, compiled by specialization:")
    print(format_function(code.function))
    print(f"\nresult: {interpreted} (identical for both versions)")
    print(f"interpreted:  {interp_cycles:7.0f} cycles")
    print(f"specialized:  {specialized_cycles:7.0f} cycles "
          f"({interp_cycles / specialized_cycles:.1f}x)")
    print(f"unrolling: {stats.unrolling} "
          f"(multi-way: the interpreted loop became a real back edge)")
    print(f"instruction fetches folded: {stats.static_loads_folded} "
          f"static loads")
    print(f"opcode dispatches folded: {stats.static_branches_folded} "
          f"static branches")

    # Different accumulator inputs reuse the same specialized code: the
    # cache is keyed on the *program*, not the data.
    for acc in (1, 10, 1000):
        machine.run("interp", prog2, acc)
    print(f"dispatches: {stats.dispatches}, "
          f"specializations: {stats.specializations} "
          "(one compile, many runs)")


if __name__ == "__main__":
    main()
