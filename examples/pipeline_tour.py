"""A tour of the compilation pipeline, stage by stage.

Shows what each component produces for a small annotated function:

1. MiniC source -> tokens -> AST -> IR (the front end)
2. traditional optimization (the Multiflow stand-in)
3. binding-time analysis: per-instruction static/dynamic classification,
   divisions, promotion points, region extent
4. the generating extension: set-up vs emit actions
5. run-time specialization: the emitted code, per entry value
6. dispatch statistics and the staged-optimization counters

Run:  python examples/pipeline_tour.py
"""

from repro.bta import analyze_function
from repro.bta.facts import InstrClass
from repro.config import ALL_ON
from repro.dyc import compile_annotated
from repro.dyc.genext import (
    EmitAction,
    EvalAction,
    PromoteAction,
    build_generating_extension,
)
from repro.frontend import compile_source, parse_program, tokenize
from repro.ir import format_function, format_instr
from repro.opt import optimize_function
from repro.runtime.cache import UncheckedCache

SOURCE = """
func power(base, n) {
    make_static(n, i);   // default cache-all policy
    var result = 1;
    for (i = 0; i < n; i = i + 1) {
        result = result * base;
    }
    return result;
}
"""


def stage(title: str) -> None:
    print(f"\n{'=' * 66}\n{title}\n{'=' * 66}")


def main():
    stage("1. Front end: source -> tokens -> AST -> IR")
    tokens = tokenize(SOURCE)
    print(f"{len(tokens)} tokens; first five:",
          [t.text for t in tokens[:5]])
    ast = parse_program(SOURCE)
    print(f"AST: {len(ast.functions)} function(s); "
          f"power({', '.join(ast.functions[0].params)})")
    module = compile_source(SOURCE)
    function = module.function("power")
    print(format_function(function))

    stage("2. Traditional optimization (constants, copies, CSE, DCE)")
    optimize_function(function)
    print(format_function(function))

    stage("3. Binding-time analysis")
    regions = analyze_function(function, ALL_ON, module=module)
    region = regions[0]
    print(f"region {region.region_id}: entry={region.entry_block!r}, "
          f"entry keys={region.entry_keys}, "
          f"policy={region.entry_policy}, exits={region.exits}")
    # (cache-all is the safe default: had we written
    #  `make_static(n, i) : cache_one_unchecked`, a later call with a
    #  different n would silently reuse the stale version - the paper's
    #  §4.4.3 hazard, demonstrated in tests/test_dyc_end_to_end.py.)
    for (label, division), facts in region.contexts.items():
        print(f"\n  block {label!r}  division={sorted(division)}  "
              f"static-in={sorted(facts.static_in)}")
        template_block = region.template.blocks[label]
        for index, instr in enumerate(template_block.instrs):
            klass = facts.classes[index]
            marker = {"static": "S", "static_branch": "SB",
                      "dynamic": "D", "dynamic_branch": "DB",
                      "annotation": "@",
                      "promotion": "P!"}.get(klass.value, klass.value)
            print(f"    [{marker:>2s}] {format_instr(instr)}")

    stage("4. The generating extension (set-up vs emit actions)")
    genext = build_generating_extension(region, ALL_ON)
    for key, block in genext.blocks.items():
        print(f"\n  context {key[0]!r}: key vars {block.key_vars}")
        for action in block.actions:
            if isinstance(action, EvalAction):
                print(f"    eval  {format_instr(action.instr)}")
            elif isinstance(action, EmitAction):
                holes = ",".join(sorted(action.holes)) or "-"
                print(f"    emit  {format_instr(action.instr)}   "
                      f"holes: {holes}")
            elif isinstance(action, PromoteAction):
                print(f"    promote {action.point.names}")
        print(f"    term  {type(block.terminator).__name__}")

    stage("5. Run-time specialization (n = 5)")
    compiled = compile_annotated(compile_source(SOURCE))
    machine, runtime = compiled.make_machine()
    result = machine.run("power", 3, 5)
    print(f"power(3, 5) = {result}")
    cache = runtime.entry_caches[0]
    code = (cache._value if isinstance(cache, UncheckedCache)
            else next(iter(cache.items()))[1])
    print(format_function(code.function))

    stage("6. Statistics")
    print(f"power(2, 5) = {machine.run('power', 2, 5)} "
          "(same n: cache hit, no recompilation)")
    p28 = machine.run('power', 2, 8)
    assert p28 == 256
    print(f"power(2, 8) = {p28} (new n: respecialized)")
    stats = runtime.stats.regions[0]
    print(f"dispatches={stats.dispatches}  "
          f"specializations={stats.specializations}  "
          f"instructions generated={stats.instructions_generated}  "
          f"dc cycles={stats.dc_cycles:.0f}")
    print(f"unrolling: {stats.unrolling}  "
          f"(the loop became a straight-line chain of multiplies)")


if __name__ == "__main__":
    main()
