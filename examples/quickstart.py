"""Quickstart: the paper's image-convolution example (Figures 2-4).

Annotate the convolution matrix static, let DyC completely unroll the
inner loops, fold the matrix loads, and watch staged dynamic zero/copy
propagation + dead-assignment elimination delete the code for the zero
weights — then compare cycle counts against the statically compiled
baseline.

Run:  python examples/quickstart.py
"""

from repro.config import ALL_ON
from repro.dyc import compile_annotated, compile_static
from repro.frontend import compile_source
from repro.ir import Memory, format_function
from repro.machine import Machine
from repro.runtime.cache import UncheckedCache

# Figure 2, in MiniC: '@' marks static loads, make_static the
# specialization request.  A 3x3 kernel keeps the listing readable.
SOURCE = """
func do_convol(image, irows, icols, cmatrix, crows, ccols, outbuf) {
    make_static(cmatrix, crows, ccols, crow, ccol) : cache_one_unchecked;
    var crowso2 = crows / 2;
    var ccolso2 = ccols / 2;
    for (irow = crowso2; irow < irows - crowso2; irow = irow + 1) {
        var rowbase = irow - crowso2;
        for (icol = ccolso2; icol < icols - ccolso2; icol = icol + 1) {
            var colbase = icol - ccolso2;
            var sum = 0.0;
            for (crow = 0; crow < crows; crow = crow + 1) {
                for (ccol = 0; ccol < ccols; ccol = ccol + 1) {
                    var weight = cmatrix@[crow * ccols + ccol];
                    var x = image[(rowbase + crow) * icols
                                  + (colbase + ccol)];
                    sum = sum + x * weight;
                }
            }
            outbuf[irow * icols + icol] = sum;
        }
    }
    return 0;
}
"""

#: The paper's example matrix: alternating ones and zeroes (zeroes in
#: the corners) — every even iteration folds to nothing (Figure 4).
CMATRIX = [
    [0.0, 1.0, 0.0],
    [1.0, 0.0, 1.0],
    [0.0, 1.0, 0.0],
]

IROWS = ICOLS = 12


def build_inputs(mem: Memory):
    image = mem.alloc_array(
        [float((r * 31 + 7) % 256)
         for r in range(IROWS * ICOLS)]
    )
    cmatrix = mem.alloc_matrix(CMATRIX)
    outbuf = mem.alloc(IROWS * ICOLS, fill=0.0)
    return [image, IROWS, ICOLS, cmatrix, 3, 3, outbuf], outbuf


def run(config, title):
    module = compile_source(SOURCE)
    compiled = compile_annotated(module, config)
    mem = Memory()
    args, outbuf = build_inputs(mem)
    machine, runtime = compiled.make_machine(memory=mem)
    machine.run("do_convol", *args)
    baseline = machine.stats.cycles
    machine.run("do_convol", *args)          # steady state
    cycles = machine.stats.cycles - baseline

    cache = runtime.entry_caches[0]
    code = (cache._value if isinstance(cache, UncheckedCache)
            else next(iter(cache.items()))[1])
    stats = runtime.stats.regions[0]
    print(f"\n=== {title} ===")
    print(f"emitted instructions: {stats.instructions_generated}, "
          f"zero-prop hits: {stats.zcp_zero_hits}, "
          f"copy-prop hits: {stats.zcp_copy_hits}, "
          f"dead assignments removed: {stats.dae_removed}")
    print(f"steady-state cycles per call: {cycles:.0f}")
    print(format_function(code.function))
    return cycles, mem.read_array(outbuf, IROWS * ICOLS)


def main():
    # Statically compiled baseline (annotations ignored, §3.3).
    module = compile_source(SOURCE)
    static_module = compile_static(module)
    mem = Memory()
    args, outbuf = build_inputs(mem)
    machine = Machine(static_module, memory=mem)
    machine.run("do_convol", *args)
    static_cycles = machine.stats.cycles
    expected = mem.read_array(outbuf, IROWS * ICOLS)
    print(f"statically compiled: {static_cycles:.0f} cycles per call")

    # Figure 3: specialization without the staged ZCP/DAE.
    partial_config = ALL_ON.without("zero_copy_propagation",
                                    "dead_assignment_elimination")
    partial_cycles, partial_out = run(
        partial_config, "Figure 3: unrolled, before dynamic ZCP/DAE"
    )

    # Figure 4: the fully optimized region.
    full_cycles, full_out = run(
        ALL_ON, "Figure 4: with dynamic zero/copy propagation and DAE"
    )

    assert partial_out == expected and full_out == expected, \
        "specialized code must compute exactly what static code does"
    print("\n=== Summary ===")
    print(f"static:              {static_cycles:8.0f} cycles")
    print(f"unrolled (Fig. 3):   {partial_cycles:8.0f} cycles "
          f"({static_cycles / partial_cycles:.2f}x)")
    print(f"fully optimized (4): {full_cycles:8.0f} cycles "
          f"({static_cycles / full_cycles:.2f}x)")
    print("outputs verified identical across all three versions.")


if __name__ == "__main__":
    main()
