"""dyc-repro: staged run-time specialization, after Grant et al. (PLDI 1999).

Public API surface::

    from repro import (
        compile_source,        # MiniC -> IR module
        compile_annotated,     # IR -> dynamically compiled program
        compile_static,        # IR -> statically compiled baseline
        OptConfig, ALL_ON, ALL_OFF,
        Machine, Memory,
    )

    module = compile_source(src)
    compiled = compile_annotated(module, ALL_ON)
    machine, runtime = compiled.make_machine()
    machine.run("f", ...)

See README.md for the full tour and ``repro.evalharness`` for the
paper's tables.
"""

from repro.config import ALL_OFF, ALL_ON, OptConfig
from repro.dyc import (
    CompiledProgram,
    DycCompiler,
    compile_annotated,
    compile_static,
)
from repro.frontend import compile_source
from repro.ir import Memory, Module
from repro.machine import Machine

__version__ = "1.0.0"

__all__ = [
    "ALL_OFF",
    "ALL_ON",
    "OptConfig",
    "CompiledProgram",
    "DycCompiler",
    "compile_annotated",
    "compile_static",
    "compile_source",
    "Memory",
    "Module",
    "Machine",
    "__version__",
]
