"""Control-flow-graph analyses shared by the optimizer, BTA, and linter."""

from repro.analysis.defuse import (
    UseBeforeDef,
    definitely_assigned,
    unreachable_blocks,
    use_before_def,
)
from repro.analysis.dominators import DominatorTree, dominance_frontier
from repro.analysis.liveness import liveness

# Imported last on purpose: importing the ``repro.analysis.dominators``
# submodule (above) binds the package attribute ``dominators`` to that
# module; this import rebinds it to the historical *function* of the same
# name so ``from repro.analysis import dominators`` keeps returning the
# dominator-set computation.
from repro.analysis.cfg import (
    reverse_postorder,
    postorder,
    dominators,
    immediate_dominators,
    back_edges,
    natural_loops,
    Loop,
    loop_body_map,
)

__all__ = [
    "reverse_postorder",
    "postorder",
    "dominators",
    "immediate_dominators",
    "back_edges",
    "natural_loops",
    "Loop",
    "loop_body_map",
    "liveness",
    "DominatorTree",
    "dominance_frontier",
    "UseBeforeDef",
    "definitely_assigned",
    "unreachable_blocks",
    "use_before_def",
]
