"""Control-flow-graph analyses shared by the optimizer and the BTA."""

from repro.analysis.cfg import (
    reverse_postorder,
    postorder,
    dominators,
    immediate_dominators,
    back_edges,
    natural_loops,
    Loop,
    loop_body_map,
)
from repro.analysis.liveness import liveness

__all__ = [
    "reverse_postorder",
    "postorder",
    "dominators",
    "immediate_dominators",
    "back_edges",
    "natural_loops",
    "Loop",
    "loop_body_map",
    "liveness",
]
