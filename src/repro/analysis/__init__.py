"""Control-flow-graph and dataflow analyses shared by the optimizer,
BTA, linter, and specializer.

``repro.analysis.dominators`` (the *submodule*, with the O(1)
:class:`DominatorTree`) and :func:`dominator_sets` (the whole-set
computation from :mod:`repro.analysis.cfg`) now have distinct names;
the historical ``cfg.dominators()`` function survives there as a
deprecated alias, no longer re-exported at package level.
"""

from repro.analysis.cfg import (
    Loop,
    back_edges,
    dominator_sets,
    immediate_dominators,
    loop_body_map,
    natural_loops,
    postorder,
    reverse_postorder,
)
from repro.analysis.defuse import (
    UseBeforeDef,
    definitely_assigned,
    unreachable_blocks,
    use_before_def,
)
from repro.analysis.dominators import DominatorTree, dominance_frontier
from repro.analysis.expressions import (
    anticipated_expressions,
    available_expressions,
    expression_of,
)
from repro.analysis.framework import (
    BACKWARD,
    FORWARD,
    DataflowProblem,
    DataflowResult,
    SetIntersectProblem,
    SetUnionProblem,
    solve,
)
from repro.analysis.liveness import LivenessResult, liveness
from repro.analysis.reaching import (
    DefSite,
    ReachingResult,
    reaching_definitions,
)

__all__ = [
    # engine
    "BACKWARD",
    "FORWARD",
    "DataflowProblem",
    "DataflowResult",
    "SetIntersectProblem",
    "SetUnionProblem",
    "solve",
    # CFG structure
    "reverse_postorder",
    "postorder",
    "dominator_sets",
    "immediate_dominators",
    "back_edges",
    "natural_loops",
    "Loop",
    "loop_body_map",
    "DominatorTree",
    "dominance_frontier",
    # dataflow clients
    "liveness",
    "LivenessResult",
    "UseBeforeDef",
    "definitely_assigned",
    "unreachable_blocks",
    "use_before_def",
    "reaching_definitions",
    "ReachingResult",
    "DefSite",
    "anticipated_expressions",
    "available_expressions",
    "expression_of",
]
