"""Module call graph: call sites, Tarjan SCCs, bottom-up ordering.

The interprocedural analyses (:mod:`repro.analysis.effects`) and the
specialization-safety prover walk functions *bottom-up* — callees
before callers — so a caller's summary can be computed from finished
callee summaries in one pass, with a local fixpoint only inside
strongly connected components (mutual recursion).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.ir.function import Module
from repro.ir.instructions import Call


@dataclass(frozen=True)
class CallSite:
    """One ``Call`` instruction: where it is and what it invokes."""

    caller: str
    block: str
    index: int
    callee: str
    instr: Call


@dataclass
class CallGraph:
    """Callees per function, split into module-internal and external.

    ``external`` callees are intrinsics or unresolved names; they have
    no IR body and are summarized from the intrinsics table (or
    pessimistically, when unknown) by the effect analysis.
    """

    module: Module
    internal: dict[str, frozenset[str]] = field(default_factory=dict)
    external: dict[str, frozenset[str]] = field(default_factory=dict)
    sites: dict[str, tuple[CallSite, ...]] = field(default_factory=dict)

    @classmethod
    def build(cls, module: Module) -> CallGraph:
        graph = cls(module=module)
        for name, function in module.functions.items():
            internal: set[str] = set()
            external: set[str] = set()
            sites: list[CallSite] = []
            for block, index, instr in function.instructions():
                if not isinstance(instr, Call):
                    continue
                sites.append(CallSite(
                    caller=name, block=block.label, index=index,
                    callee=instr.callee, instr=instr,
                ))
                if instr.callee in module.functions:
                    internal.add(instr.callee)
                else:
                    external.add(instr.callee)
            graph.internal[name] = frozenset(internal)
            graph.external[name] = frozenset(external)
            graph.sites[name] = tuple(sites)
        return graph

    def callers_of(self, callee: str) -> frozenset[str]:
        return frozenset(
            caller for caller, targets in self.internal.items()
            if callee in targets
        )

    def sccs(self) -> list[frozenset[str]]:
        """Strongly connected components, callees-first (bottom-up).

        Tarjan's algorithm emits components in reverse topological
        order of the condensation, which is exactly the order the
        interprocedural fixpoint wants: every edge out of a component
        points into an already-emitted one.
        """
        index_of: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        components: list[frozenset[str]] = []
        counter = [0]

        # Iterative Tarjan (explicit frames) — recursion depth would
        # otherwise track the call-chain depth of the analyzed program.
        for root in self.module.functions:
            if root in index_of:
                continue
            frames: list[tuple[str, Iterator[str]]] = [
                (root, iter(sorted(self.internal[root])))
            ]
            index_of[root] = lowlink[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while frames:
                node, children = frames[-1]
                advanced = False
                for child in children:
                    if child not in index_of:
                        index_of[child] = lowlink[child] = counter[0]
                        counter[0] += 1
                        stack.append(child)
                        on_stack.add(child)
                        frames.append(
                            (child, iter(sorted(self.internal[child])))
                        )
                        advanced = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node],
                                            index_of[child])
                if advanced:
                    continue
                frames.pop()
                if frames:
                    parent = frames[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index_of[node]:
                    component: set[str] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == node:
                            break
                    components.append(frozenset(component))
        return components

    def is_recursive(self, name: str) -> bool:
        """True when ``name`` sits on a call cycle (including self)."""
        if name in self.internal.get(name, ()):
            return True
        for component in self.sccs():
            if name in component:
                return len(component) > 1
        return False
