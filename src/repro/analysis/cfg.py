"""Orders, dominators, and natural loops over :class:`Function` CFGs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.function import Function


def postorder(function: Function) -> list[str]:
    """Block labels in depth-first postorder from the entry."""
    visited: set[str] = set()
    order: list[str] = []

    # Iterative DFS to avoid recursion limits on long unrolled CFGs.
    stack: list[tuple[str, int]] = [(function.entry, 0)]
    succs = {
        label: block.successors()
        for label, block in function.blocks.items()
    }
    visited.add(function.entry)
    while stack:
        label, child_index = stack.pop()
        children = succs[label]
        while child_index < len(children):
            child = children[child_index]
            child_index += 1
            if child not in visited:
                visited.add(child)
                stack.append((label, child_index))
                stack.append((child, 0))
                break
        else:
            order.append(label)
    return order


def reverse_postorder(function: Function) -> list[str]:
    """Block labels in reverse postorder (a topological-ish order)."""
    return list(reversed(postorder(function)))


def immediate_dominators(function: Function) -> dict[str, str | None]:
    """Cooper-Harvey-Kennedy iterative immediate-dominator computation.

    Returns a map from block label to its immediate dominator label; the
    entry maps to ``None``.  Unreachable blocks are absent.
    """
    rpo = reverse_postorder(function)
    index = {label: i for i, label in enumerate(rpo)}
    preds = function.predecessors()
    idom: dict[str, str | None] = {function.entry: None}

    def intersect(a: str, b: str) -> str:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for label in rpo:
            if label == function.entry:
                continue
            candidates = [
                p for p in preds[label] if p in idom and p in index
            ]
            if not candidates:
                continue
            new_idom = candidates[0]
            for p in candidates[1:]:
                new_idom = intersect(new_idom, p)
            if idom.get(label) != new_idom:
                idom[label] = new_idom
                changed = True
    return idom


def dominator_sets(function: Function) -> dict[str, set[str]]:
    """Full dominator sets (including the block itself)."""
    idom = immediate_dominators(function)
    doms: dict[str, set[str]] = {}
    for label in idom:
        chain = {label}
        current = idom[label]
        while current is not None:
            chain.add(current)
            current = idom[current]
        doms[label] = chain
    return doms


def dominators(function: Function) -> dict[str, set[str]]:
    """Deprecated alias for :func:`dominator_sets`.

    The old name collided with the :mod:`repro.analysis.dominators`
    submodule, which forced a deliberate rebinding hack in the package
    ``__init__``.  Use :func:`dominator_sets` (or
    :class:`repro.analysis.dominators.DominatorTree` for O(1) queries).
    """
    import warnings

    warnings.warn(
        "repro.analysis.cfg.dominators() is deprecated; "
        "use dominator_sets()",
        DeprecationWarning,
        stacklevel=2,
    )
    return dominator_sets(function)


def back_edges(function: Function) -> list[tuple[str, str]]:
    """CFG edges (tail, head) where ``head`` dominates ``tail``."""
    doms = dominator_sets(function)
    edges = []
    for label, block in function.blocks.items():
        if label not in doms:
            continue  # unreachable
        for succ in block.successors():
            if succ in doms.get(label, set()):
                edges.append((label, succ))
    return edges


@dataclass
class Loop:
    """A natural loop: its header and the set of member block labels."""

    header: str
    body: set[str] = field(default_factory=set)

    def __contains__(self, label: str) -> bool:
        return label in self.body


def natural_loops(function: Function) -> list[Loop]:
    """Natural loops from back edges; loops sharing a header are merged."""
    preds = function.predecessors()
    by_header: dict[str, Loop] = {}
    for tail, head in back_edges(function):
        loop = by_header.setdefault(head, Loop(header=head, body={head}))
        worklist = [tail]
        while worklist:
            label = worklist.pop()
            if label in loop.body:
                continue
            loop.body.add(label)
            worklist.extend(preds.get(label, ()))
    return list(by_header.values())


def loop_body_map(function: Function) -> dict[str, set[str]]:
    """Map each block label to the headers of all loops containing it."""
    membership: dict[str, set[str]] = {
        label: set() for label in function.blocks
    }
    for loop in natural_loops(function):
        for label in loop.body:
            membership[label].add(loop.header)
    return membership
