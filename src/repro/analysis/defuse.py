"""Definite-assignment (def-before-use) analysis.

The structural verifier in :mod:`repro.ir.validate` checks block shape;
this module checks *dataflow* well-formedness: every ``Reg`` use must be
preceded by a definition (or a parameter binding) on **every** path from
the entry.  Two cooperating mechanisms answer that:

* a dominator-tree fast path — a definition in a strictly dominating
  block, or earlier in the same block, covers the use on all paths;
* a forward must-analysis (intersection over predecessors) for the
  general case, which correctly accepts diamond patterns where a
  variable is defined on both arms of a branch but in neither
  dominator (e.g. the front end's short-circuit lowering).

``EnterRegion`` terminators transfer to "everything assigned": the
dispatched dynamic region runs the original region body, which may
define any variable, before resuming at an exit label.

The must-analysis is a client of the generic engine in
:mod:`repro.analysis.framework`; the original sweep survives as
:func:`repro.analysis.legacy.legacy_definitely_assigned` for
differential verification.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.dominators import DominatorTree
from repro.analysis.framework import SetIntersectProblem, solve
from repro.ir.function import Function
from repro.ir.instructions import EnterRegion


@dataclass(frozen=True)
class UseBeforeDef:
    """One possibly-undefined use: where it is and what it reads."""

    block: str
    index: int
    name: str
    instr: str  # instruction class name, for diagnostics

    def describe(self) -> str:
        return (f"{self.block}[{self.index}] ({self.instr}): "
                f"use of {self.name!r} not definitely assigned")


def _all_names(function: Function) -> frozenset[str]:
    names: set[str] = set(function.params)
    for _, _, instr in function.instructions():
        names.update(instr.defs())
        names.update(instr.uses())
    return frozenset(names)


def unreachable_blocks(function: Function) -> frozenset[str]:
    """Labels of blocks no CFG path from the entry reaches."""
    reachable: set[str] = set()
    worklist = [function.entry] if function.entry else []
    while worklist:
        label = worklist.pop()
        if label in reachable or label not in function.blocks:
            continue
        reachable.add(label)
        worklist.extend(function.blocks[label].successors())
    return frozenset(set(function.blocks) - reachable)


class _DefiniteAssignment(SetIntersectProblem):
    """Forward must: a name is assigned when every path assigns it."""

    def __init__(self, function: Function) -> None:
        self._universe = _all_names(function)

    def universe(self, function: Function) -> frozenset:
        return self._universe

    def boundary(self, function: Function) -> frozenset:
        return frozenset(function.params)

    def transfer(self, function: Function, label: str,
                 assigned: frozenset) -> frozenset:
        current = set(assigned)
        for instr in function.blocks[label].instrs:
            if isinstance(instr, EnterRegion):
                return self._universe
            current.update(instr.defs())
        return frozenset(current)


def definitely_assigned(function: Function) -> dict[str, frozenset[str]]:
    """Variables definitely assigned at entry to each *reachable* block.

    Forward must-analysis: the entry block starts from the parameter
    set; every other block meets (intersects) its predecessors' exit
    sets.  ``EnterRegion`` transfers to the full name universe (the
    region body may assign anything before execution resumes).
    """
    return solve(function, _DefiniteAssignment(function)).before


def use_before_def(function: Function,
                   tree: DominatorTree | None = None
                   ) -> list[UseBeforeDef]:
    """All possibly-undefined uses in reachable blocks, in CFG order."""
    if tree is None:
        tree = DominatorTree.build(function)

    # Fast path index: variable -> blocks containing a definition.
    def_blocks: dict[str, set[str]] = {}
    for block in function.blocks.values():
        for instr in block.instrs:
            for name in instr.defs():
                def_blocks.setdefault(name, set()).add(block.label)
    params = frozenset(function.params)

    def covered_by_dominator(name: str, label: str) -> bool:
        return any(
            tree.strictly_dominates(def_label, label)
            for def_label in def_blocks.get(name, ())
        )

    assigned_in = None  # computed lazily; most functions never need it
    problems: list[UseBeforeDef] = []
    for label in tree.reachable:
        block = function.blocks[label]
        local: set[str] = set()
        pending: list[tuple[int, str]] = []
        for index, instr in enumerate(block.instrs):
            for name in instr.uses():
                if name in params or name in local:
                    continue
                if covered_by_dominator(name, label):
                    continue
                pending.append((index, name))
            local.update(instr.defs())
        for index, name in pending:
            if assigned_in is None:
                assigned_in = definitely_assigned(function)
            before = assigned_in.get(label, frozenset())
            # Re-apply the block prefix for the precise per-instruction
            # answer (the fast path already handled same-block defs that
            # precede the use; this catches defs between the block entry
            # and the use that the dominator test cannot see).
            prefix: set[str] = set()
            for i in range(index):
                prefix.update(block.instrs[i].defs())
            if name in before or name in prefix:
                continue
            problems.append(UseBeforeDef(
                block=label, index=index, name=name,
                instr=type(block.instrs[index]).__name__,
            ))
    problems.sort(key=lambda p: (p.block, p.index, p.name))
    return problems
