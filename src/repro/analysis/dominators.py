"""Dominator tree and dominance frontiers over :class:`Function` CFGs.

:mod:`repro.analysis.cfg` computes immediate dominators (the
Cooper-Harvey-Kennedy iteration); this module packages them into a
queryable tree.  The dataflow verifier uses ``dominates`` as its fast
path for def-before-use checking (a definition in a strictly dominating
block is executed on every path to the use), and ``reachable`` to find
blocks the entry cannot reach.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import immediate_dominators
from repro.ir.function import Function


@dataclass
class DominatorTree:
    """The dominator tree of one function's CFG.

    Dominance queries are answered in O(1) using the classic Euler-tour
    interval trick: ``a`` dominates ``b`` iff ``a``'s DFS interval over
    the dominator tree encloses ``b``'s.
    """

    entry: str
    #: Block label -> immediate dominator label (entry -> None).
    #: Unreachable blocks are absent.
    idom: dict[str, str | None]
    #: Block label -> labels it immediately dominates, in insertion order.
    children: dict[str, list[str]] = field(default_factory=dict)
    _enter: dict[str, int] = field(default_factory=dict, repr=False)
    _leave: dict[str, int] = field(default_factory=dict, repr=False)

    @classmethod
    def build(cls, function: Function) -> "DominatorTree":
        idom = immediate_dominators(function)
        tree = cls(entry=function.entry, idom=idom)
        tree.children = {label: [] for label in idom}
        for label, parent in idom.items():
            if parent is not None:
                tree.children[parent].append(label)
        tree._number()
        return tree

    def _number(self) -> None:
        """Assign DFS enter/leave intervals over the dominator tree."""
        clock = 0
        stack: list[tuple[str, bool]] = [(self.entry, False)]
        while stack:
            label, done = stack.pop()
            if done:
                self._leave[label] = clock
                clock += 1
                continue
            self._enter[label] = clock
            clock += 1
            stack.append((label, True))
            for child in reversed(self.children.get(label, ())):
                stack.append((child, False))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def reachable(self) -> frozenset[str]:
        """Labels of blocks reachable from the entry."""
        return frozenset(self.idom)

    def dominates(self, a: str, b: str) -> bool:
        """True when every entry-to-``b`` path passes through ``a``.

        A block dominates itself.  Queries involving unreachable blocks
        return False (they have no dominators).
        """
        if a not in self._enter or b not in self._enter:
            return False
        return (self._enter[a] <= self._enter[b]
                and self._leave[b] <= self._leave[a])

    def strictly_dominates(self, a: str, b: str) -> bool:
        return a != b and self.dominates(a, b)

    def depth(self, label: str) -> int:
        """Distance from the entry in the dominator tree (entry = 0)."""
        depth = 0
        current = self.idom.get(label)
        while current is not None:
            depth += 1
            current = self.idom[current]
        return depth


def dominance_frontier(function: Function,
                       tree: DominatorTree | None = None
                       ) -> dict[str, set[str]]:
    """Cytron et al.'s dominance frontiers, per reachable block.

    ``DF(x)`` is the set of blocks ``y`` such that ``x`` dominates a
    predecessor of ``y`` but does not strictly dominate ``y`` — the
    classic placement set for merge-point computations.
    """
    if tree is None:
        tree = DominatorTree.build(function)
    frontier: dict[str, set[str]] = {label: set() for label in tree.idom}
    preds = function.predecessors()
    for label in tree.idom:
        relevant = [p for p in preds[label] if p in tree.idom]
        if len(relevant) < 2:
            continue
        target = tree.idom[label]
        for pred in relevant:
            runner = pred
            while runner is not None and runner != target:
                frontier[runner].add(label)
                runner = tree.idom[runner]
    return frontier
