"""Interprocedural side-effect and escape summaries.

Bottom-up over the call graph's SCCs (:mod:`repro.analysis.callgraph`),
each function gets an :class:`EffectSummary`: whether it may write or
read memory, whether it has observable effects (transitively calls an
impure intrinsic such as ``print_val``), and — attributed per
parameter via address-root tracing — which parameters' reachable
memory it may write, read, or store away (escape).  Mutual recursion
converges by a local fixpoint inside each SCC, starting from the
optimistic bottom (no effects).

Consumers:

* the specialization-safety prover (``repro.lint --interprocedural``):
  a ``pure``-annotated static call whose callee's summary is impure is
  unsound to fold at dynamic compile time (DYC304); a static pointer
  handed to a callee that writes through the matching parameter
  invalidates ``@``-load invariance (DYC301);
* :mod:`repro.autoannotate`'s admission check, which statically rejects
  candidate annotation policies the prover cannot certify.

Address-root tracing (:func:`address_root`) moved here from
``repro.lint.annotations`` so the lint layer and the interprocedural
analysis share one aliasing story.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.callgraph import CallGraph
from repro.ir.function import Function, Module
from repro.ir.instructions import (
    BinOp,
    Call,
    Imm,
    Instr,
    Load,
    Move,
    Op,
    Operand,
    Reg,
    Store,
)

_MAX_DEPTH = 32


def address_root(function: Function, operand: Operand,
                 defs: dict[str, list[Instr]],
                 stack: frozenset[str] = frozenset(),
                 depth: int = 0) -> str | None:
    """The named base variable an address operand derives from.

    Follows copy chains and the ``base + index`` shape the front end
    lowers indexing to (the base is always the left operand).  Returns
    ``None`` when the base cannot be traced to a single named variable
    (loaded pointers, call results, merges of different bases) — such
    addresses are treated as unrelated rather than as aliasing
    everything, keeping false-positive rates near zero.
    """
    if depth > _MAX_DEPTH or not isinstance(operand, Reg):
        return None
    name = operand.name
    if name in stack:
        return None
    defining = defs.get(name)
    if not defining:
        return name  # parameter (or undefined): the root itself
    stack = stack | {name}
    roots: set[str | None] = set()
    for instr in defining:
        if isinstance(instr, Move):
            roots.add(address_root(function, instr.src, defs, stack,
                                   depth + 1))
        elif isinstance(instr, BinOp) and instr.op in (Op.ADD, Op.SUB):
            root = address_root(function, instr.lhs, defs, stack,
                                depth + 1)
            if root is None and isinstance(instr.lhs, Imm):
                # ``Imm + reg`` never appears in lowered addressing, but
                # a commuted form after optimization still has a single
                # register operand to chase.
                root = address_root(function, instr.rhs, defs, stack,
                                    depth + 1)
            roots.add(root)
        else:
            roots.add(None)
    roots.discard(None)
    if len(roots) == 1:
        return roots.pop()
    return None


def def_index(function: Function) -> dict[str, list[Instr]]:
    """All defining instructions per variable name."""
    defs: dict[str, list[Instr]] = {}
    for _, _, instr in function.instructions():
        for name in instr.defs():
            defs.setdefault(name, []).append(instr)
    return defs


@dataclass(frozen=True)
class EffectSummary:
    """What one function may do to the world, transitively."""

    function: str
    #: May execute a ``Store`` (directly or via a callee).
    writes_memory: bool = False
    #: May execute a dynamic or ``@`` ``Load`` (directly or via callee).
    reads_memory: bool = False
    #: May produce output or other non-memory observable effects
    #: (transitively reaches an impure intrinsic or an unknown callee).
    observable_effects: bool = False
    #: Parameters whose reachable memory the function may write.
    writes_params: frozenset[str] = field(default_factory=frozenset)
    #: Parameters whose reachable memory the function may read.
    reads_params: frozenset[str] = field(default_factory=frozenset)
    #: Parameters whose value may be stored into memory or handed to an
    #: unknown callee — the binding-time escape set: a static value
    #: escaping this way can be mutated behind the BTA's back.
    escapes_params: frozenset[str] = field(default_factory=frozenset)

    @property
    def pure(self) -> bool:
        """Safe to fold at dynamic compile time (the ``pure``/static
        call contract): no writes, no observable effects.  Memory
        *reads* are permitted — folding then caches the read exactly
        like an ``@``-load caches its location."""
        return not (self.writes_memory or self.observable_effects)


def _summarize(function: Function, module: Module,
               summaries: dict[str, EffectSummary]) -> EffectSummary:
    from repro.machine.intrinsics import INTRINSICS

    defs = def_index(function)
    params = frozenset(function.params)
    writes_memory = reads_memory = observable = False
    writes_params: set[str] = set()
    reads_params: set[str] = set()
    escapes: set[str] = set()

    def param_root(operand: Operand) -> str | None:
        root = address_root(function, operand, defs)
        return root if root in params else None

    for _, _, instr in function.instructions():
        if isinstance(instr, Store):
            writes_memory = True
            root = param_root(instr.addr)
            if root is not None:
                writes_params.add(root)
            stored = param_root(instr.value)
            if stored is not None:
                escapes.add(stored)
        elif isinstance(instr, Load):
            reads_memory = True
            root = param_root(instr.addr)
            if root is not None:
                reads_params.add(root)
        elif isinstance(instr, Call):
            callee = instr.callee
            if callee in module.functions:
                summary = summaries.get(callee)
                if summary is None:
                    continue  # same-SCC callee at optimistic bottom
                writes_memory |= summary.writes_memory
                reads_memory |= summary.reads_memory
                observable |= summary.observable_effects
                callee_params = module.functions[callee].params
                for position, arg in enumerate(instr.args):
                    if position >= len(callee_params):
                        break
                    root = param_root(arg)
                    if root is None:
                        continue
                    formal = callee_params[position]
                    if formal in summary.writes_params:
                        writes_params.add(root)
                    if formal in summary.reads_params:
                        reads_params.add(root)
                    if formal in summary.escapes_params:
                        escapes.add(root)
            else:
                intrinsic = INTRINSICS.get(callee)
                if intrinsic is None:
                    # Unknown callee: assume the worst on every axis.
                    writes_memory = reads_memory = observable = True
                    for arg in instr.args:
                        root = param_root(arg)
                        if root is not None:
                            writes_params.add(root)
                            reads_params.add(root)
                            escapes.add(root)
                elif not intrinsic.pure:
                    # Impure intrinsics (print_val) produce output but,
                    # per the intrinsics table, write no program memory.
                    observable = True

    return EffectSummary(
        function=function.name,
        writes_memory=writes_memory,
        reads_memory=reads_memory,
        observable_effects=observable,
        writes_params=frozenset(writes_params),
        reads_params=frozenset(reads_params),
        escapes_params=frozenset(escapes),
    )


def effect_summaries(module: Module,
                     graph: CallGraph | None = None
                     ) -> dict[str, EffectSummary]:
    """Summaries for every function, SCCs solved bottom-up."""
    if graph is None:
        graph = CallGraph.build(module)
    summaries: dict[str, EffectSummary] = {}
    for component in graph.sccs():
        members = sorted(component)
        changed = True
        while changed:
            changed = False
            for name in members:
                summary = _summarize(
                    module.functions[name], module, summaries
                )
                if summaries.get(name) != summary:
                    summaries[name] = summary
                    changed = True
    return summaries
