"""Expression-level dataflow: anticipated and available expressions.

Both are must-clients of :mod:`repro.analysis.framework` over the same
expression keys that local CSE uses (:func:`expression_of` is the single
definition; :mod:`repro.opt.cse` imports it).

* **Anticipated** (very busy) expressions — backward must: an expression
  is anticipated at a point when *every* path from that point evaluates
  it before any operand is redefined.  LICM consumes this to hoist
  trapping instructions (divides, shifts) soundly: evaluating them in
  the preheader cannot introduce a trap the original program would not
  eventually hit.
* **Available** expressions — forward must over ``(key, holder)``
  pairs: at a point, ``holder`` still contains the value of ``key`` on
  every incoming path.  Global CSE consumes this to reuse values across
  block boundaries without inserting merge moves (the holder must be
  the same register on all paths, which the pair lattice encodes for
  free — differing holders meet to nothing).

Loads participate in both until a ``Store`` or ``Call`` (which may
alias them) kills every load key, mirroring local CSE's kill rule.
"""

from __future__ import annotations

from repro.analysis.framework import (
    BACKWARD,
    FORWARD,
    DataflowProblem,
    solve,
)
from repro.ir.function import Function
from repro.ir.instructions import (
    BinOp,
    Call,
    Instr,
    Load,
    Reg,
    Store,
    UnOp,
    COMMUTATIVE_OPS,
)


def expression_of(instr: Instr):
    """A hashable key identifying the pure expression ``instr`` computes,
    or ``None`` for instructions that are not CSE/motion candidates.

    Commutative binary operands are canonically ordered, so ``a + b``
    and ``b + a`` share a key.  ``@``-annotated (static) loads are
    excluded: they are specialization directives, not plain memory
    reads, and must not be merged with dynamic loads of the same
    address.
    """
    if isinstance(instr, BinOp):
        lhs, rhs = instr.lhs, instr.rhs
        if instr.op in COMMUTATIVE_OPS:
            lhs, rhs = sorted((lhs, rhs), key=repr)
        return ("bin", instr.op, lhs, rhs)
    if isinstance(instr, UnOp):
        return ("un", instr.op, instr.src)
    if isinstance(instr, Load) and not instr.static:
        return ("load", instr.addr)
    return None


def key_uses_name(key, name: str) -> bool:
    """True when the expression key reads register ``name``."""
    return any(
        isinstance(part, Reg) and part.name == name for part in key
    )


def is_load_key(key) -> bool:
    return key[0] == "load"


def _function_keys(function: Function) -> frozenset:
    keys = set()
    for _, _, instr in function.instructions():
        key = expression_of(instr)
        if key is not None:
            keys.add(key)
    return frozenset(keys)


# ----------------------------------------------------------------------
# Anticipated (very busy) expressions — backward must
# ----------------------------------------------------------------------

class _AnticipatedExpressions(DataflowProblem[frozenset]):
    direction = BACKWARD

    def __init__(self, function: Function) -> None:
        self._universe = _function_keys(function)
        # use[B]: keys evaluated in B, upward-exposed (no earlier
        # in-block redefinition of an operand, no earlier store/call for
        # load keys).  kill[B]: keys whose operands B redefines, plus
        # every load key when B may write memory.
        self._use: dict[str, frozenset] = {}
        self._kill: dict[str, frozenset] = {}
        for label, block in function.blocks.items():
            defined: set[str] = set()
            wrote_memory = False
            exposed: set = set()
            for instr in block.instrs:
                key = expression_of(instr)
                if key is not None:
                    operand_clean = not any(
                        key_uses_name(key, name) for name in defined
                    )
                    load_clean = not (is_load_key(key) and wrote_memory)
                    if operand_clean and load_clean:
                        exposed.add(key)
                if isinstance(instr, (Store, Call)):
                    wrote_memory = True
                defined.update(instr.defs())
            self._use[label] = frozenset(exposed)
            self._kill[label] = frozenset(
                key for key in self._universe
                if any(key_uses_name(key, name) for name in defined)
                or (is_load_key(key) and wrote_memory)
            )

    def boundary(self, function: Function) -> frozenset:
        # Nothing is anticipated past a function exit.
        return frozenset()

    def initial(self, function: Function, label: str) -> frozenset:
        return self._universe

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a & b

    def transfer(self, function: Function, label: str,
                 anticipated_out: frozenset) -> frozenset:
        return self._use[label] | (anticipated_out - self._kill[label])


def anticipated_expressions(
        function: Function) -> dict[str, frozenset]:
    """Expressions every path from each block entry must evaluate.

    Returns the anticipated-in set per reachable block.
    """
    return solve(function, _AnticipatedExpressions(function)).before


# ----------------------------------------------------------------------
# Available expressions — forward must over (key, holder) pairs
# ----------------------------------------------------------------------

class _AvailableExpressions(DataflowProblem[frozenset]):
    direction = FORWARD

    def __init__(self, function: Function) -> None:
        pairs = set()
        for _, _, instr in function.instructions():
            key = expression_of(instr)
            if key is not None:
                pairs.add((key, instr.dest))
        self._universe = frozenset(pairs)

    def boundary(self, function: Function) -> frozenset:
        return frozenset()

    def initial(self, function: Function, label: str) -> frozenset:
        return self._universe

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a & b

    def transfer(self, function: Function, label: str,
                 available: frozenset) -> frozenset:
        pairs = set(available)
        for instr in function.blocks[label].instrs:
            if isinstance(instr, (Store, Call)):
                pairs = {p for p in pairs if not is_load_key(p[0])}
            defined = instr.defs()
            if defined:
                pairs = {
                    (key, holder) for key, holder in pairs
                    if holder not in defined
                    and not any(key_uses_name(key, n) for n in defined)
                }
            key = expression_of(instr)
            if key is not None and not any(
                    key_uses_name(key, n) for n in defined):
                # Self-redefinitions (x = x + 1) generate nothing: the
                # key's operand no longer holds the value it names.
                pairs.add((key, instr.dest))
        return frozenset(pairs)


def available_expressions(
        function: Function) -> dict[str, frozenset]:
    """``(key, holder)`` pairs valid on every path into each block.

    Returns the available-in set per reachable block.
    """
    return solve(function, _AvailableExpressions(function)).before
