"""Generic monotone-fixpoint dataflow engine.

One worklist solver serves every dataflow analysis in the system —
forward and backward, may and must.  An analysis is a
:class:`DataflowProblem`: a lattice (``join``/``equal``/optional
``widen``), a ``transfer`` function over whole blocks, and boundary and
initialization values.  The solver iterates a priority worklist ordered
by reverse postorder (forward) or postorder (backward), which visits
acyclic regions once and converges loops in a handful of sweeps.

Clients in this package:

* :func:`repro.analysis.liveness.liveness` — backward may (union)
* :func:`repro.analysis.defuse.definitely_assigned` — forward must
  (intersection)
* :func:`repro.analysis.reaching.reaching_definitions` — forward may
* :func:`repro.analysis.expressions.anticipated_expressions` — backward
  must (very-busy expressions)
* :func:`repro.analysis.expressions.available_expressions` — forward
  must
* :func:`repro.analysis.effects.effect_summaries` — interprocedural,
  iterating intraprocedural summaries over call-graph SCCs

The reference implementations these replaced live on in
:mod:`repro.analysis.legacy`; debug-mode pass verification and the
differential test suite cross-check the ported analyses against them.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Generic, TypeVar

from repro.analysis.cfg import postorder, reverse_postorder
from repro.ir.function import Function

V = TypeVar("V")

FORWARD = "forward"
BACKWARD = "backward"


class DataflowProblem(Generic[V]):
    """One dataflow analysis: a lattice plus a block transfer function.

    Subclasses set ``direction`` and implement the four hooks.  The
    *direction-relative* convention: ``transfer`` receives the fact at
    the block's input edge (entry for forward problems, exit for
    backward ones) and returns the fact at its output edge.  The solver
    translates back to program order in the result (``before`` is
    always the block-entry fact, ``after`` the block-exit fact).
    """

    #: ``FORWARD`` or ``BACKWARD``.
    direction: str = FORWARD
    #: ``"reachable"`` restricts the solution to blocks reachable from
    #: the entry (must-analyses have no meaningful value for dead
    #: blocks); ``"all"`` also converges unreachable blocks, matching
    #: the historical whole-CFG behaviour of liveness.
    scope: str = "reachable"
    #: Apply :meth:`widen` once a block has been visited more than this
    #: many times.  ``None`` disables widening — correct for the finite
    #: lattices used here; infinite-height lattices must set it.
    widen_after: int | None = None

    def boundary(self, function: Function) -> V:
        """Value at the boundary: function entry (forward) / exits
        (backward — blocks with no successors)."""
        raise NotImplementedError

    def initial(self, function: Function, label: str) -> V:
        """Optimistic initial value for non-boundary blocks (lattice
        top for must-problems, bottom for may-problems)."""
        raise NotImplementedError

    def join(self, a: V, b: V) -> V:
        """Combine facts where control-flow edges meet."""
        raise NotImplementedError

    def transfer(self, function: Function, label: str, value: V) -> V:
        """Push a fact through one block, input edge to output edge."""
        raise NotImplementedError

    def widen(self, old: V, new: V, visits: int) -> V:
        """Accelerate convergence on infinite-ascending-chain lattices.

        Called instead of plain replacement once ``visits`` exceeds
        :attr:`widen_after`.  The default returns ``new`` (no widening).
        """
        return new

    def equal(self, a: V, b: V) -> bool:
        return a == b


@dataclass
class DataflowResult(Generic[V]):
    """The fixpoint, in *program order* regardless of direction.

    ``before[label]`` is the fact at block entry, ``after[label]`` the
    fact at block exit.  Only blocks in the problem's scope appear.
    """

    before: dict[str, V]
    after: dict[str, V]
    #: Total block visits until the fixpoint (a cost/regression probe).
    visits: int = 0
    #: Labels where widening fired (empty for finite lattices).
    widened: frozenset[str] = field(default_factory=frozenset)


def _unreachable(function: Function, reachable: list[str]) -> list[str]:
    known = set(reachable)
    return sorted(label for label in function.blocks if label not in known)


def solve(function: Function,
          problem: DataflowProblem[V]) -> DataflowResult[V]:
    """Run ``problem`` to its fixpoint over ``function``'s CFG."""
    forward = problem.direction == FORWARD
    order = (reverse_postorder(function) if forward
             else postorder(function))
    if problem.scope == "all":
        order = order + _unreachable(function, order)
    members = set(order)
    position = {label: i for i, label in enumerate(order)}

    succs = {
        label: [s for s in function.blocks[label].successors()
                if s in members]
        for label in order
    }
    preds: dict[str, list[str]] = {label: [] for label in order}
    for label, targets in succs.items():
        for succ in targets:
            preds[succ].append(label)

    if forward:
        edges_in, edges_out = preds, succs
        boundary_labels = {function.entry}
    else:
        edges_in, edges_out = succs, preds
        # Exit blocks: no successors (Return/Promote/ExitRegion ends).
        boundary_labels = {
            label for label in order if not succs[label]
        }

    boundary = problem.boundary(function)
    in_facts: dict[str, V] = {}
    out_facts: dict[str, V] = {}
    visits: dict[str, int] = {}
    total_visits = 0
    widened: set[str] = set()

    worklist: list[tuple[int, str]] = [
        (position[label], label) for label in order
    ]
    heapq.heapify(worklist)
    queued = set(order)

    while worklist:
        _, label = heapq.heappop(worklist)
        if label not in queued:
            continue
        queued.discard(label)

        if label in boundary_labels:
            # Boundary facts are pinned: the entry's assigned-set is
            # exactly the parameters even when a back edge re-enters it,
            # matching the reference implementations.
            in_fact = boundary
        else:
            in_fact: V | None = None  # type: ignore[no-redef]
            for source in edges_in[label]:
                fact = out_facts.get(source)
                if fact is None:
                    continue  # not yet visited: optimistically skipped
                in_fact = fact if in_fact is None \
                    else problem.join(in_fact, fact)
            if in_fact is None:
                in_fact = problem.initial(function, label)

        out_fact = problem.transfer(function, label, in_fact)
        visits[label] = visits.get(label, 0) + 1
        total_visits += 1
        if (problem.widen_after is not None
                and visits[label] > problem.widen_after
                and label in out_facts):
            widened_fact = problem.widen(
                out_facts[label], out_fact, visits[label]
            )
            if not problem.equal(widened_fact, out_fact):
                widened.add(label)
            out_fact = widened_fact

        in_facts[label] = in_fact
        if label not in out_facts \
                or not problem.equal(out_facts[label], out_fact):
            out_facts[label] = out_fact
            for target in edges_out[label]:
                if target not in queued:
                    queued.add(target)
                    heapq.heappush(worklist, (position[target], target))

    if forward:
        before, after = in_facts, out_facts
    else:
        before, after = out_facts, in_facts
    return DataflowResult(
        before=before, after=after,
        visits=total_visits, widened=frozenset(widened),
    )


# ----------------------------------------------------------------------
# Reusable set lattices
# ----------------------------------------------------------------------

class SetUnionProblem(DataflowProblem[frozenset]):
    """May-analysis base: facts are sets, join is union, init empty."""

    def boundary(self, function: Function) -> frozenset:
        return frozenset()

    def initial(self, function: Function, label: str) -> frozenset:
        return frozenset()

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b


class SetIntersectProblem(DataflowProblem[frozenset]):
    """Must-analysis base: join is intersection, init is the universe.

    Subclasses implement :meth:`universe` (lattice top); the solver's
    optimistic skip of unvisited predecessors supplies the rest.
    """

    def universe(self, function: Function) -> frozenset:
        raise NotImplementedError

    def initial(self, function: Function, label: str) -> frozenset:
        return self.universe(function)

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a & b
