"""Reference implementations of the framework-ported analyses.

These are the original chaotic-iteration fixpoint loops that
:mod:`repro.analysis.liveness` and :mod:`repro.analysis.defuse` shipped
before the generic engine existed.  They are kept verbatim for two
consumers:

* the differential test suite, which asserts the framework ports compute
  *identical* results on every workload's IR;
* :func:`verify_framework_analyses`, which the pass manager's debug mode
  runs after every optimization pass so an engine or port regression
  surfaces at the pass boundary, named, instead of as a wrong answer
  downstream.

Do not add new callers; use the framework ports.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instructions import EnterRegion


def legacy_liveness(function: Function) -> tuple[
        dict[str, frozenset[str]], dict[str, frozenset[str]]]:
    """The original round-robin liveness loop: ``(live_in, live_out)``."""
    use: dict[str, set[str]] = {}
    defs: dict[str, set[str]] = {}
    for label, block in function.blocks.items():
        upward: set[str] = set()
        killed: set[str] = set()
        for instr in block.instrs:
            upward |= set(instr.uses()) - killed
            killed |= set(instr.defs())
        use[label] = upward
        defs[label] = killed

    live_in: dict[str, set[str]] = {label: set() for label in function.blocks}
    live_out: dict[str, set[str]] = {
        label: set() for label in function.blocks
    }
    succs = {
        label: block.successors()
        for label, block in function.blocks.items()
    }

    changed = True
    while changed:
        changed = False
        for label in function.blocks:
            out: set[str] = set()
            for succ in succs[label]:
                out |= live_in[succ]
            new_in = use[label] | (out - defs[label])
            if out != live_out[label] or new_in != live_in[label]:
                live_out[label] = out
                live_in[label] = new_in
                changed = True

    return (
        {k: frozenset(v) for k, v in live_in.items()},
        {k: frozenset(v) for k, v in live_out.items()},
    )


def _all_names(function: Function) -> frozenset[str]:
    names: set[str] = set(function.params)
    for _, _, instr in function.instructions():
        names.update(instr.defs())
        names.update(instr.uses())
    return frozenset(names)


def legacy_definitely_assigned(
        function: Function) -> dict[str, frozenset[str]]:
    """The original forward must-analysis sweep over reachable blocks."""
    from repro.analysis.cfg import reverse_postorder

    universe = _all_names(function)
    order = reverse_postorder(function)
    in_sets: dict[str, frozenset[str]] = {}
    preds = function.predecessors()

    def transfer(label: str, assigned: frozenset[str]) -> frozenset[str]:
        current = set(assigned)
        for instr in function.blocks[label].instrs:
            if isinstance(instr, EnterRegion):
                return universe
            current.update(instr.defs())
        return frozenset(current)

    out_sets: dict[str, frozenset[str]] = {}
    changed = True
    while changed:
        changed = False
        for label in order:
            if label == function.entry:
                new_in = frozenset(function.params)
            else:
                met: frozenset[str] | None = None
                for pred in preds[label]:
                    if pred not in out_sets:
                        continue  # not yet visited (back edge) / dead
                    met = (out_sets[pred] if met is None
                           else met & out_sets[pred])
                new_in = universe if met is None else met
            if in_sets.get(label) != new_in:
                in_sets[label] = new_in
                changed = True
            new_out = transfer(label, new_in)
            if out_sets.get(label) != new_out:
                out_sets[label] = new_out
                changed = True
    return in_sets


def verify_framework_analyses(function: Function) -> None:
    """Raise :class:`repro.errors.IRError` if a framework port diverges
    from its reference implementation on ``function``.

    Run by ``PassManager(verify=True)`` after every pass that changed
    the function, alongside the structural and dataflow verifiers.
    """
    from repro.analysis.defuse import definitely_assigned
    from repro.analysis.liveness import liveness
    from repro.errors import IRError

    live = liveness(function)
    ref_in, ref_out = legacy_liveness(function)
    if dict(live.live_in) != ref_in or dict(live.live_out) != ref_out:
        diff = [
            label for label in function.blocks
            if live.live_in.get(label) != ref_in.get(label)
            or live.live_out.get(label) != ref_out.get(label)
        ]
        raise IRError(
            f"framework liveness diverges from the reference "
            f"implementation in {function.name!r} at block(s) "
            f"{', '.join(sorted(diff))}"
        )

    assigned = definitely_assigned(function)
    ref_assigned = legacy_definitely_assigned(function)
    if assigned != ref_assigned:
        diff = sorted(
            set(assigned) ^ set(ref_assigned)
            | {label for label in set(assigned) & set(ref_assigned)
               if assigned[label] != ref_assigned[label]}
        )
        raise IRError(
            f"framework definite-assignment diverges from the reference "
            f"implementation in {function.name!r} at block(s) "
            f"{', '.join(diff)}"
        )
