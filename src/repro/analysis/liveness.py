"""Backward liveness analysis over variables.

Used by the traditional optimizer's dead-code elimination, by the BTA to
bound dynamic regions ("ending after the last use of any static value",
§2.2), and by the runtime specializer to key specialization contexts on
*live* static variables only (so that dead static values do not force
spurious re-specialization).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.function import Function


@dataclass
class LivenessResult:
    """Per-block live-variable sets.

    ``live_in[label]`` holds variables live on entry to the block;
    ``live_out[label]`` those live on exit.
    """

    live_in: dict[str, frozenset[str]]
    live_out: dict[str, frozenset[str]]

    def live_before(self, function: Function, label: str,
                    index: int) -> frozenset[str]:
        """Variables live immediately before instruction ``index``."""
        block = function.block(label)
        live = set(self.live_out[label])
        for instr in reversed(block.instrs[index:]):
            live -= set(instr.defs())
            live |= set(instr.uses())
        return frozenset(live)


def liveness(function: Function) -> LivenessResult:
    """Iterative backward may-analysis for live variables."""
    use: dict[str, set[str]] = {}
    defs: dict[str, set[str]] = {}
    for label, block in function.blocks.items():
        upward: set[str] = set()
        killed: set[str] = set()
        for instr in block.instrs:
            upward |= set(instr.uses()) - killed
            killed |= set(instr.defs())
        use[label] = upward
        defs[label] = killed

    live_in: dict[str, set[str]] = {label: set() for label in function.blocks}
    live_out: dict[str, set[str]] = {
        label: set() for label in function.blocks
    }
    succs = {
        label: block.successors()
        for label, block in function.blocks.items()
    }

    changed = True
    while changed:
        changed = False
        for label in function.blocks:
            out: set[str] = set()
            for succ in succs[label]:
                out |= live_in[succ]
            new_in = use[label] | (out - defs[label])
            if out != live_out[label] or new_in != live_in[label]:
                live_out[label] = out
                live_in[label] = new_in
                changed = True

    return LivenessResult(
        live_in={k: frozenset(v) for k, v in live_in.items()},
        live_out={k: frozenset(v) for k, v in live_out.items()},
    )
