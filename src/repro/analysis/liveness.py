"""Backward liveness analysis over variables.

Used by the traditional optimizer's dead-code elimination, by the BTA to
bound dynamic regions ("ending after the last use of any static value",
§2.2), and by the runtime specializer to key specialization contexts on
*live* static variables only (so that dead static values do not force
spurious re-specialization).

A client of the generic engine in :mod:`repro.analysis.framework`: a
backward may-problem whose facts are variable-name sets.  The original
fixpoint loop survives as :func:`repro.analysis.legacy.legacy_liveness`
for differential verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.framework import (
    BACKWARD,
    SetUnionProblem,
    solve,
)
from repro.ir.function import Function


@dataclass
class LivenessResult:
    """Per-block live-variable sets.

    ``live_in[label]`` holds variables live on entry to the block;
    ``live_out[label]`` those live on exit.
    """

    live_in: dict[str, frozenset[str]]
    live_out: dict[str, frozenset[str]]
    #: Per-block cache of per-instruction live-before sets, filled by one
    #: backward sweep on first query.  Planners and the BTA ask about
    #: every instruction of a block, so the cached sweep makes a full
    #: scan O(block) instead of O(block^2).  The cache assumes the block
    #: is not mutated between queries (true everywhere liveness is used:
    #: analyses run on a frozen snapshot and recompute after rewrites).
    _before: dict[str, list[frozenset[str]]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def live_before(self, function: Function, label: str,
                    index: int) -> frozenset[str]:
        """Variables live immediately before instruction ``index``.

        ``index`` may equal ``len(block.instrs)``, meaning the block
        exit (``live_out``).
        """
        cached = self._before.get(label)
        if cached is None:
            block = function.block(label)
            count = len(block.instrs)
            cached = [frozenset()] * (count + 1)
            live = set(self.live_out[label])
            cached[count] = frozenset(live)
            for i in range(count - 1, -1, -1):
                instr = block.instrs[i]
                live.difference_update(instr.defs())
                live.update(instr.uses())
                cached[i] = frozenset(live)
            self._before[label] = cached
        return cached[index]


class _LivenessProblem(SetUnionProblem):
    """Backward may: ``live_in = use ∪ (live_out − def)``."""

    direction = BACKWARD
    #: Unreachable blocks are converged too (the historical behaviour:
    #: mid-pipeline callers may query blocks a pass has just orphaned).
    scope = "all"

    def __init__(self, function: Function) -> None:
        self._use: dict[str, frozenset[str]] = {}
        self._def: dict[str, frozenset[str]] = {}
        for label, block in function.blocks.items():
            upward: set[str] = set()
            killed: set[str] = set()
            for instr in block.instrs:
                upward |= set(instr.uses()) - killed
                killed |= set(instr.defs())
            self._use[label] = frozenset(upward)
            self._def[label] = frozenset(killed)

    def transfer(self, function: Function, label: str,
                 live_out: frozenset) -> frozenset:
        return self._use[label] | (live_out - self._def[label])


def liveness(function: Function) -> LivenessResult:
    """Iterative backward may-analysis for live variables."""
    result = solve(function, _LivenessProblem(function))
    return LivenessResult(
        live_in=result.before,
        live_out=result.after,
    )
