"""Reaching definitions — a forward may-client of the dataflow engine.

A *definition site* is one instruction that assigns a name (parameters
are synthetic sites with ``block=None``).  The analysis computes, per
block, the set of sites whose assignment may still be the current value
of its name on entry.  Consumers: the specialization-safety prover's
unbounded-key check (chasing how a promotion key was derived along a
loop back edge) and ad-hoc def-use queries that previously re-derived
this by scanning.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.framework import FORWARD, SetUnionProblem, solve
from repro.ir.function import Function
from repro.ir.instructions import Instr


@dataclass(frozen=True)
class DefSite:
    """One definition of ``name``: a parameter binding or an instruction."""

    name: str
    #: Defining block label; ``None`` for a parameter binding.
    block: str | None
    #: Instruction index within the block; ``-1`` for a parameter.
    index: int = -1

    @property
    def is_param(self) -> bool:
        return self.block is None

    def instr(self, function: Function) -> Instr | None:
        """The defining instruction (``None`` for parameter sites)."""
        if self.block is None:
            return None
        return function.blocks[self.block].instrs[self.index]


@dataclass
class ReachingResult:
    """Per-block reaching-definition sets, plus point queries."""

    reach_in: dict[str, frozenset[DefSite]]
    reach_out: dict[str, frozenset[DefSite]]
    _before: dict[str, list[frozenset[DefSite]]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def reaching_before(self, function: Function, label: str,
                        index: int) -> frozenset[DefSite]:
        """Sites reaching the point immediately before instruction
        ``index`` (``index == len(block.instrs)`` means the exit)."""
        cached = self._before.get(label)
        if cached is None:
            block = function.block(label)
            current = set(self.reach_in[label])
            cached = [frozenset(current)]
            for i, instr in enumerate(block.instrs):
                defined = set(instr.defs())
                if defined:
                    current = {
                        site for site in current
                        if site.name not in defined
                    }
                    current.update(
                        DefSite(name, label, i) for name in defined
                    )
                cached.append(frozenset(current))
            self._before[label] = cached
        return cached[index]

    def definitions_of(self, function: Function, label: str, index: int,
                       name: str) -> frozenset[DefSite]:
        """Sites of ``name`` reaching the given instruction's input."""
        return frozenset(
            site for site in self.reaching_before(function, label, index)
            if site.name == name
        )


class _ReachingDefinitions(SetUnionProblem):
    direction = FORWARD

    def __init__(self, function: Function) -> None:
        # Per-block gen (last def of each name) and kill (names defined).
        self._gen: dict[str, frozenset[DefSite]] = {}
        self._kill: dict[str, frozenset[str]] = {}
        for label, block in function.blocks.items():
            last: dict[str, DefSite] = {}
            for index, instr in enumerate(block.instrs):
                for name in instr.defs():
                    last[name] = DefSite(name, label, index)
            self._gen[label] = frozenset(last.values())
            self._kill[label] = frozenset(last)

    def boundary(self, function: Function) -> frozenset:
        return frozenset(DefSite(name, None) for name in function.params)

    def transfer(self, function: Function, label: str,
                 reaching: frozenset) -> frozenset:
        kill = self._kill[label]
        kept = frozenset(s for s in reaching if s.name not in kill)
        return kept | self._gen[label]


def reaching_definitions(function: Function) -> ReachingResult:
    """Forward may-analysis over definition sites."""
    problem = _ReachingDefinitions(function)
    result = solve(function, problem)
    return ReachingResult(reach_in=result.before, reach_out=result.after)
