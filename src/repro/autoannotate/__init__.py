"""Automatic annotation: the paper's stated next step, implemented.

§6: "Our next major step is to build on this understanding by developing
a system that works towards automating the policy decisions", using
"value profiling [2] to identify static variable candidates, and a
cost-benefit model to select appropriate optimizations" (§3.2).

This package provides that front half:

* :class:`~repro.autoannotate.profiler.ValueProfiler` — records, per
  function, invocation counts, inclusive cycles, and per-parameter
  value distributions while a statically compiled program runs (Calder
  et al.'s value profiling, the paper's reference [2]);
* :func:`~repro.autoannotate.suggest.suggest_annotations` — turns a
  profile into ranked annotation suggestions: which hot functions have
  quasi-invariant parameters, which loop indices should join the
  ``make_static`` for complete unrolling, and which cache policy fits
  the observed value distribution (single value → ``cache_one_
  unchecked``; small byte-range → ``cache_indexed``; else
  ``cache_all``);
* :func:`~repro.autoannotate.suggest.annotate_module` — applies a
  suggestion to an IR module by inserting the ``MakeStatic`` at
  function entry, so the suggestion can be compiled and measured
  immediately;
* :func:`~repro.autoannotate.admission.admit_suggestions` — the static
  gate: re-lints each candidate with the interprocedural
  specialization-safety prover and rejects suggestions whose
  annotation introduces new diagnostics, before anything is compiled.
"""

from repro.autoannotate.admission import (
    AdmissionResult,
    admit_suggestions,
    admitted_suggestions,
)
from repro.autoannotate.profiler import FunctionProfile, ValueProfiler
from repro.autoannotate.suggest import (
    Suggestion,
    annotate_module,
    suggest_annotations,
)

__all__ = [
    "ValueProfiler",
    "FunctionProfile",
    "Suggestion",
    "suggest_annotations",
    "annotate_module",
    "AdmissionResult",
    "admit_suggestions",
    "admitted_suggestions",
]
