"""Static admission control for candidate annotation policies.

The profiler's suggestions are *dynamic* evidence ("these parameters
were quasi-invariant on this run"); admission is the *static* gate:
before a suggestion is compiled and measured, the interprocedural
specialization-safety prover (``repro.lint --interprocedural``) checks
whether annotating would be provably unsound — a static pointer
escaping into a memory-writing callee (DYC301), an unbounded
``cache_all`` key set (DYC302), a non-dominating in-loop promotion
(DYC303), or a hazard from the intraprocedural annotation lints
(DYC1xx).  Unsound candidates are rejected with the diagnostics as the
reason, instead of being discovered as miscompiles after dynamic
compilation.

The comparison is differential: only diagnostics *introduced by the
annotation* count against a suggestion, so pre-existing findings in
the unannotated module (or ambient DYC304s from ``pure`` annotations)
never block admission.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.autoannotate.suggest import Suggestion, annotate_module
from repro.config import ALL_ON, OptConfig
from repro.ir.function import Module
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import lint_module


@dataclass(frozen=True)
class AdmissionResult:
    """The verdict for one candidate suggestion."""

    suggestion: Suggestion
    admitted: bool
    #: Diagnostics the annotation introduced (empty when admitted).
    introduced: tuple[Diagnostic, ...] = ()

    @property
    def reason(self) -> str:
        if self.admitted:
            return "statically safe"
        return "; ".join(
            f"{d.code}: {d.message}" for d in self.introduced
        )


def _fingerprint(diag: Diagnostic) -> tuple:
    # Block labels and indices shift when the BTA splits annotated
    # blocks, so the differential compares (function, code) occurrences
    # rather than exact locations.
    return (diag.function, diag.code)


def admit_suggestions(module: Module,
                      suggestions: list[Suggestion],
                      config: OptConfig = ALL_ON,
                      static_loads: bool = False
                      ) -> list[AdmissionResult]:
    """Statically screen candidates; one verdict per suggestion.

    Each suggestion is applied *alone* to a copy of ``module`` and the
    full lint (interprocedural prover included) re-run; any diagnostic
    occurrence not already present in the unannotated baseline rejects
    that suggestion.
    """
    baseline: dict[tuple, int] = {}
    for diag in lint_module(module, config=config, interprocedural=True):
        key = _fingerprint(diag)
        baseline[key] = baseline.get(key, 0) + 1

    results: list[AdmissionResult] = []
    for suggestion in suggestions:
        annotated = annotate_module(
            module, [suggestion], static_loads=static_loads
        )
        seen: dict[tuple, int] = {}
        introduced: list[Diagnostic] = []
        for diag in lint_module(annotated, config=config,
                                interprocedural=True):
            key = _fingerprint(diag)
            seen[key] = seen.get(key, 0) + 1
            if seen[key] > baseline.get(key, 0):
                introduced.append(diag)
        results.append(AdmissionResult(
            suggestion=suggestion,
            admitted=not introduced,
            introduced=tuple(introduced),
        ))
    return results


def admitted_suggestions(module: Module,
                         suggestions: list[Suggestion],
                         config: OptConfig = ALL_ON,
                         static_loads: bool = False) -> list[Suggestion]:
    """Just the statically safe candidates, in their original order."""
    return [
        result.suggestion
        for result in admit_suggestions(module, suggestions,
                                        config=config,
                                        static_loads=static_loads)
        if result.admitted
    ]
