"""Value profiling (Calder, Feller & Eustace — the paper's [2]).

Attach a :class:`ValueProfiler` to a machine and run the statically
compiled program on representative inputs; the profiler records, per
function:

* invocation count;
* inclusive cycles (the gprof-style hotness the paper used to choose
  optimization targets, §3.2);
* per-parameter value distributions, capped at ``max_tracked_values``
  distinct values per parameter (beyond the cap a parameter is plainly
  not a run-time constant and exact counts stop mattering).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class ParamProfile:
    """Observed values of one parameter across calls."""

    name: str
    values: Counter = field(default_factory=Counter)
    observations: int = 0
    overflowed: bool = False

    @property
    def distinct(self) -> int:
        return len(self.values)

    @property
    def invariance(self) -> float:
        """Fraction of calls that saw the single most common value."""
        if not self.observations:
            return 0.0
        if self.overflowed:
            return 0.0
        (_, top_count), = self.values.most_common(1) or [((None, 0))]
        return top_count / self.observations

    def record(self, value, cap: int) -> None:
        self.observations += 1
        if self.overflowed:
            return
        hashable = value if isinstance(value, (int, float)) else repr(value)
        self.values[hashable] += 1
        if len(self.values) > cap:
            self.overflowed = True
            self.values.clear()


@dataclass
class FunctionProfile:
    """Everything observed about one function."""

    name: str
    params: tuple[str, ...]
    calls: int = 0
    inclusive_cycles: float = 0.0
    param_profiles: dict[str, ParamProfile] = field(default_factory=dict)

    def cycle_share(self, total_cycles: float) -> float:
        if total_cycles <= 0:
            return 0.0
        return min(1.0, self.inclusive_cycles / total_cycles)


class ValueProfiler:
    """Machine hook recording call counts, cycles, and parameter values.

    Attach with ``machine.profiler = profiler`` before running.  Nested
    and recursive calls are handled: inclusive cycles attribute the full
    subtree to every active frame of the function (double counting of
    self-recursion is avoided by attributing only the outermost frame).
    """

    def __init__(self, module, max_tracked_values: int = 64) -> None:
        self.max_tracked_values = max_tracked_values
        self.functions: dict[str, FunctionProfile] = {}
        self.total_cycles: float = 0.0
        self._module = module
        self._stack: list[tuple[str, float]] = []
        self._active: Counter = Counter()

    def profile_for(self, name: str) -> FunctionProfile:
        if name not in self.functions:
            params = ()
            if self._module is not None and name in self._module:
                params = self._module.function(name).params
            profile = FunctionProfile(name=name, params=params)
            for param in params:
                profile.param_profiles[param] = ParamProfile(param)
            self.functions[name] = profile
        return self.functions[name]

    # ------------------------------------------------------------------
    # Machine hooks
    # ------------------------------------------------------------------

    def enter(self, name: str, args: list, cycles: float) -> None:
        profile = self.profile_for(name)
        profile.calls += 1
        for param, value in zip(profile.params, args):
            profile.param_profiles[param].record(
                value, self.max_tracked_values
            )
        self._stack.append((name, cycles))
        self._active[name] += 1

    def leave(self, name: str, cycles: float) -> None:
        while self._stack:
            frame_name, entry_cycles = self._stack.pop()
            if frame_name == name:
                break
        else:  # pragma: no cover - defensive
            return
        self._active[name] -= 1
        if self._active[name] == 0:
            # Outermost frame of this function: attribute the subtree.
            self.functions[name].inclusive_cycles += cycles - entry_cycles
        self.total_cycles = max(self.total_cycles, cycles)

    # ------------------------------------------------------------------

    def hottest(self, limit: int = 5) -> list[FunctionProfile]:
        """Functions by inclusive cycles, descending (the gprof step)."""
        return sorted(
            self.functions.values(),
            key=lambda p: p.inclusive_cycles,
            reverse=True,
        )[:limit]
