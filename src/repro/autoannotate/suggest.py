"""From value profiles to annotation suggestions.

The heuristics mirror the paper's manual methodology (§3.2): "we first
profiled them with gprof.  We then examined the functions that comprised
the most execution time, searching for invariant function parameters" —
plus the unrolling step: a loop whose exit test depends only on
suggested-static variables (and its own induction variable) is a
complete-unrolling candidate, so its induction variable joins the
``make_static`` list, exactly as Figure 2 annotates crow/ccol.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import natural_loops
from repro.autoannotate.profiler import FunctionProfile, ValueProfiler
from repro.ir.function import Function, Module
from repro.ir.instructions import BinOp, Branch, Load, MakeStatic, Op, Reg


@dataclass(frozen=True)
class Suggestion:
    """One proposed ``make_static`` annotation."""

    function: str
    #: Quasi-invariant parameters to annotate.
    params: tuple[str, ...]
    #: Loop induction variables to annotate for complete unrolling.
    induction_vars: tuple[str, ...]
    policy: str
    #: Fraction of profiled execution spent in the function.
    cycle_share: float
    #: Min over chosen params of P(most common value).
    invariance: float
    rationale: str

    @property
    def names(self) -> tuple[str, ...]:
        return self.params + self.induction_vars

    def annotation_source(self) -> str:
        """The MiniC line the user would paste at function entry."""
        names = ", ".join(self.names)
        if self.policy == "cache_all":
            return f"make_static({names});"
        return f"make_static({names}) : {self.policy};"


def _byte_ranged(profile) -> bool:
    """Does the parameter range over a small set of byte values?"""
    return (not profile.overflowed and 1 < profile.distinct <= 64
            and all(isinstance(v, int) and 0 <= v < 256
                    for v in profile.values))


def _choose_policy(profiles: list) -> str:
    """Pick a cache policy from the observed value distributions.

    * every chosen parameter saw exactly one value → the value never
      changes: ``cache_one_unchecked`` (the §4.4.3 fast path);
    * exactly one parameter ranging over small non-negative ints (all
      others single-valued) → ``cache_indexed`` (the §3.1 extension);
    * otherwise the safe default, ``cache_all``.
    """
    if all(p.distinct == 1 for p in profiles):
        return "cache_one_unchecked"
    varying = [p for p in profiles if p.distinct > 1]
    if len(varying) == 1 and _byte_ranged(varying[0]):
        return "cache_indexed"
    return "cache_all"


def _address_base_params(function: Function) -> set[str]:
    """Parameters used as pointer bases (Load/Store address roots).

    Relies on the front end's lowering convention: ``base[index]``
    lowers to ``addr = base + index`` with the base on the left.
    """
    params = set(function.params)
    bases: set[str] = set()
    for _, _, instr in function.instructions():
        if isinstance(instr, BinOp) and instr.op is Op.ADD:
            if isinstance(instr.lhs, Reg) and instr.lhs.name in params:
                bases.add(instr.lhs.name)
        elif isinstance(instr, Load):
            if isinstance(instr.addr, Reg) \
                    and instr.addr.name in params:
                bases.add(instr.addr.name)
    return bases


def _induction_candidates(function: Function,
                          static_params: set[str]) -> tuple[str, ...]:
    """Loop indices whose loops would completely unroll if annotated.

    A loop qualifies when its header's exit test reads only (a) the
    suggested static parameters and (b) variables defined inside the
    loop (the induction variables themselves).  Those in-loop variables
    are returned for annotation.
    """
    result: list[str] = []
    for loop in natural_loops(function):
        header = function.blocks[loop.header]
        terminator = header.instrs[-1]
        if not isinstance(terminator, Branch):
            continue
        loop_defs: set[str] = set()
        for label in loop.body:
            for instr in function.blocks[label].instrs:
                loop_defs.update(instr.defs())
        # Variables feeding the exit condition (one level back).
        cond_vars: set[str] = set()
        if isinstance(terminator.cond, Reg):
            cond_name = terminator.cond.name
            cond_vars.add(cond_name)
            for instr in header.instrs:
                if cond_name in instr.defs():
                    cond_vars.update(instr.uses())
        inductions = {
            name for name in cond_vars
            if name in loop_defs and not name.startswith("%")
        }
        others = cond_vars - inductions - {
            name for name in cond_vars if name.startswith("%")
        }
        if inductions and others <= static_params:
            result.extend(sorted(inductions))
    # Deduplicate, preserving order.
    seen: set[str] = set()
    ordered = []
    for name in result:
        if name not in seen:
            seen.add(name)
            ordered.append(name)
    return tuple(ordered)


def suggest_annotations(
    profiler: ValueProfiler,
    module: Module,
    min_calls: int = 3,
    min_cycle_share: float = 0.02,
    min_invariance: float = 0.5,
    max_distinct: int = 16,
) -> list[Suggestion]:
    """Rank annotation opportunities from a value profile."""
    total = profiler.total_cycles
    suggestions: list[Suggestion] = []
    for profile in profiler.functions.values():
        if profile.calls < min_calls or profile.name not in module:
            continue
        share = profile.cycle_share(total)
        if share < min_cycle_share:
            continue
        function = module.function(profile.name)
        address_bases = _address_base_params(function)
        chosen = []
        for param in profile.params:
            pp = profile.param_profiles[param]
            if pp.overflowed:
                continue
            # Quasi-invariant params, plus byte-ranged params (which the
            # indexed-dispatch policy handles even when they vary) — but
            # a parameter used as an address *base* is a pointer, whose
            # numeric smallness in our flat memory means nothing.
            if (pp.invariance >= min_invariance
                    and pp.distinct <= max_distinct) \
                    or (_byte_ranged(pp)
                        and param not in address_bases):
                chosen.append(pp)
        if not chosen:
            continue
        static_params = tuple(p.name for p in chosen)
        inductions = _induction_candidates(
            function, set(static_params)
        )
        invariance = min(p.invariance for p in chosen)
        policy = _choose_policy(chosen)
        distinct_desc = ", ".join(
            f"{p.name}: {p.distinct} value"
            f"{'s' if p.distinct != 1 else ''}" for p in chosen
        )
        rationale = (
            f"{profile.name} takes {share:.0%} of profiled cycles over "
            f"{profile.calls} calls; quasi-invariant parameters "
            f"({distinct_desc})"
        )
        if inductions:
            rationale += (
                f"; loops over {', '.join(inductions)} bounded by "
                "static values would completely unroll"
            )
        suggestions.append(Suggestion(
            function=profile.name,
            params=static_params,
            induction_vars=inductions,
            policy=policy,
            cycle_share=share,
            invariance=invariance,
            rationale=rationale,
        ))
    suggestions.sort(key=lambda s: (s.cycle_share, s.invariance),
                     reverse=True)
    return suggestions


def annotate_module(module: Module, suggestions: list[Suggestion],
                    static_loads: bool = False) -> Module:
    """Insert the suggested ``make_static`` annotations into a copy of
    ``module`` (at function entry), ready for ``compile_annotated``.

    With ``static_loads=True``, loads whose addresses derive from a
    suggested static pointer parameter are additionally marked ``@``.
    Like DyC's ``@`` annotation this is an *unsafe assertion* that the
    pointed-to data is invariant — the human step of §3.2 ("in cases
    when invariance was too difficult to infer by inspection, we logged
    the values") remains the caller's responsibility, e.g. by running
    with ``OptConfig(check_annotations=True)``.
    """
    import copy

    annotated = copy.deepcopy(module)
    for suggestion in suggestions:
        function = annotated.function(suggestion.function)
        entry = function.entry_block
        entry.instrs.insert(0, MakeStatic(
            suggestion.names, policy=suggestion.policy
        ))
        if static_loads:
            _mark_static_loads(function, set(suggestion.params))
    return annotated


def _mark_static_loads(function: Function,
                       static_params: set[str]) -> None:
    """Mark loads addressed off suggested static pointers as ``@``."""
    for block in function.blocks.values():
        addr_bases: dict[str, set[str]] = {}
        for index, instr in enumerate(block.instrs):
            if isinstance(instr, BinOp) and instr.op is Op.ADD:
                bases = set()
                for operand in (instr.lhs, instr.rhs):
                    if isinstance(operand, Reg):
                        if operand.name in static_params:
                            bases.add(operand.name)
                        bases |= addr_bases.get(operand.name, set())
                if bases:
                    addr_bases[instr.dest] = bases
            elif isinstance(instr, Load) and not instr.static:
                base = None
                if isinstance(instr.addr, Reg):
                    name = instr.addr.name
                    if name in static_params or addr_bases.get(name):
                        base = name
                if base is not None:
                    block.instrs[index] = Load(
                        instr.dest, instr.addr, static=True
                    )
