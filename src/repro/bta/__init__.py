"""Binding-time analysis (BTA) with polyvariant division.

Given an annotated, traditionally optimized function, the BTA determines —
per program point and per *division* (set of annotated variables assumed
static) — which variables are static (run-time constants) and which
computations can therefore be executed once at dynamic compile time.  It
also discovers the extent of each dynamic region, its entry promotion,
its exits back into statically compiled code, and every internal
dynamic-to-static promotion point (§2.2.1–2.2.5 of the paper).
"""

from repro.bta.annotations import (
    collect_annotations,
    split_at_annotations,
)
from repro.bta.facts import (
    ContextFacts,
    Division,
    InstrClass,
    PromotionPoint,
    RegionInfo,
)
from repro.bta.analysis import BindingTimeAnalysis, analyze_function

__all__ = [
    "collect_annotations",
    "split_at_annotations",
    "ContextFacts",
    "Division",
    "InstrClass",
    "PromotionPoint",
    "RegionInfo",
    "BindingTimeAnalysis",
    "analyze_function",
]
