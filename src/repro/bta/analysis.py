"""The binding-time analysis proper.

A flow-sensitive, program-point-specific forward analysis over contexts
``(block, division)``.  The dataflow value is the pair ``(S, D)`` — the
set of static variables and the division (annotated variables in force) —
with set intersection as the meet.  With polyvariant division enabled the
division is part of the context key, so joins with differing divisions
*split* the analysis instead of merging it (§2.2.5); with it disabled,
divisions meet by intersection like everything else.

The analysis also:

* discovers the dynamic region's extent ("ending after the last use of
  any static value", §2.2) and its exit edges;
* places promotion points (region entry, internal annotation promotions,
  and dynamic-assignment promotions, §2.2.1–2.2.2);
* when complete loop unrolling is disabled (the Table 5 ablation),
  demotes loop-variant variables at loop headers so loops are left
  rolled.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.analysis.cfg import natural_loops
from repro.analysis.liveness import liveness
from repro.bta.annotations import (
    collect_annotations,
    split_at_annotations,
)
from repro.bta.facts import (
    ContextFacts,
    Division,
    EMPTY_DIVISION,
    InstrClass,
    PromotionPoint,
    RegionInfo,
)
from repro.errors import BTAError
from repro.config import OptConfig
from repro.ir.function import Function, Module
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    Imm,
    Instr,
    Jump,
    Load,
    MakeDynamic,
    MakeStatic,
    Move,
    Reg,
    Return,
    Store,
    UnOp,
)
from repro.machine.intrinsics import INTRINSICS

StaticSet = frozenset[str]
State = tuple[StaticSet, Division]


def _operands_static(instr: Instr, static: StaticSet) -> bool:
    """True when every register operand of ``instr`` is static."""
    return all(name in static for name in instr.uses())


@dataclass
class _Outcome:
    """Result of transferring one block in one context."""

    facts: ContextFacts
    #: (successor label, state flowing to it); exits excluded.
    successors: list[tuple[str, State]]
    #: Successor labels that leave the region.
    exits: list[str]


class BindingTimeAnalysis:
    """Runs the BTA for one function, producing its dynamic regions."""

    def __init__(self, function: Function, config: OptConfig,
                 module: Module | None = None,
                 first_region_id: int = 0) -> None:
        self.function = function
        self.config = config
        self.module = module
        self.first_region_id = first_region_id
        self.liveness = liveness(function)
        self.loop_defs = self._compute_loop_defs()
        self._promotion_counter = 0

    # ------------------------------------------------------------------
    # Public driver
    # ------------------------------------------------------------------

    def run(self) -> list[RegionInfo]:
        """Analyze every annotation-rooted region in the function."""
        regions: list[RegionInfo] = []
        claimed: set[str] = set()
        for site in collect_annotations(self.function):
            if site.block in claimed:
                continue  # interior annotation of an earlier region
            region_id = self.first_region_id + len(regions)
            region = self._analyze_region(region_id, site)
            regions.append(region)
            claimed |= region.blocks
        return regions

    # ------------------------------------------------------------------
    # Per-region fixpoint
    # ------------------------------------------------------------------

    def _analyze_region(self, region_id: int, site) -> RegionInfo:
        region = RegionInfo(
            region_id=region_id,
            function_name=self.function.name,
            entry_block=site.block,
            entry_keys=site.names,
            entry_policy=site.policy,
        )
        self._promotion_counter = 0

        # --- fixpoint over (block, division) contexts -------------------
        poly = self.config.polyvariant_division

        def key_of(label: str, division: Division):
            return (label, division) if poly else (label,)

        entry_state: State = (frozenset(), EMPTY_DIVISION)
        states: dict[object, State] = {
            key_of(site.block, EMPTY_DIVISION): entry_state,
        }
        entry_divisions: dict[object, Division] = {
            key_of(site.block, EMPTY_DIVISION): EMPTY_DIVISION,
        }
        worklist = [key_of(site.block, EMPTY_DIVISION)]
        labels_of_key = {key_of(site.block, EMPTY_DIVISION): site.block}

        while worklist:
            key = worklist.pop()
            label = labels_of_key[key]
            static_in, division_in = states[key]
            outcome = self._transfer(
                region, label, static_in, division_in, record=False
            )
            for succ, (succ_static, succ_division) in outcome.successors:
                succ_key = key_of(succ, succ_division)
                labels_of_key[succ_key] = succ
                if succ_key not in states:
                    states[succ_key] = (succ_static, succ_division)
                    worklist.append(succ_key)
                else:
                    old_static, old_division = states[succ_key]
                    met = (old_static & succ_static,
                           old_division & succ_division)
                    if met != states[succ_key]:
                        states[succ_key] = met
                        worklist.append(succ_key)

        # --- final recording pass ---------------------------------------
        exit_labels: list[str] = []
        for key, (static_in, division_in) in states.items():
            label = labels_of_key[key]
            outcome = self._transfer(
                region, label, static_in, division_in, record=True
            )
            region.contexts[(label, outcome.facts.division)] = outcome.facts
            region.blocks.add(label)
            for exit_label in outcome.exits:
                if exit_label not in exit_labels:
                    exit_labels.append(exit_label)

        region.exits = tuple(sorted(exit_labels))
        # The entry dispatch is keyed on the variables actually promoted
        # at the region-entry annotation (annotated *and* live there).
        entry_promotions = [
            p for p in region.promotions.values() if p.kind == "entry"
        ]
        region.entry_keys = (
            entry_promotions[0].names if entry_promotions else ()
        )
        region.live_in = {
            label: self.liveness.live_in[label]
            for label in self.function.blocks
        }
        return region

    # ------------------------------------------------------------------
    # Block transfer
    # ------------------------------------------------------------------

    def _transfer(self, region: RegionInfo, label: str,
                  static_in: StaticSet, division_in: Division,
                  record: bool) -> _Outcome:
        block = self.function.blocks[label]
        static = set(static_in)
        division = set(division_in)

        # Loop-variant variables at a loop header: only *annotated* ones
        # may stay static (they request complete unrolling, as Figure 2's
        # crow/ccol do).  Unannotated derived statics that vary around
        # the loop (irow = crowso2; irow = irow + 1 under a dynamic exit
        # test) are demoted — otherwise specialization would speculate
        # through a dynamic loop without bound.  With the unrolling
        # ablation, annotated ones are demoted too.
        variant = self.loop_defs.get(label)
        if variant:
            if self.config.complete_loop_unrolling:
                static -= (variant - division)
            else:
                static -= variant
                division -= variant

        facts = ContextFacts(
            label=label,
            division=frozenset(division_in),
            static_in=frozenset(static),
        )

        for index, instr in enumerate(block.instrs):
            before = frozenset(static)
            klass, promotion = self._classify_instr(
                region, label, index, instr, static, division,
                frozenset(division_in),
            )
            facts.classes.append(klass)
            facts.static_before.append(before)
            if promotion is not None:
                facts.promotions[index] = promotion
                if record:
                    region.promotions[promotion.point_id] = promotion

        static_out = frozenset(static)
        division_out = frozenset(division)
        facts.static_out = static_out
        facts.division_out = division_out

        successors: list[tuple[str, State]] = []
        exits: list[str] = []
        for succ in block.successors():
            live = self.liveness.live_in[succ]
            usable = static_out & live
            # Demote loop-variant variables on the edge into the loop
            # header, so every edge agrees on the context key (annotated
            # ones survive unless the unrolling ablation is active).
            variant = self.loop_defs.get(succ)
            edge_division = division_out
            if variant:
                if self.config.complete_loop_unrolling:
                    usable -= (variant - division_out)
                else:
                    usable -= variant
                    edge_division = division_out - variant
            if usable:
                # The region continues: besides the live statics, carry
                # every *annotated* static along even where it is
                # momentarily dead — an annotation keeps its variable
                # static for the rest of the region (so a path on which
                # pc is dead, e.g. an interpreter's halt arm, does not
                # demote pc at the loop-head meet).  The division is
                # likewise never intersected with liveness.
                carried = usable | (static_out & edge_division)
                successors.append((succ, (carried, edge_division)))
                facts.succ_division[succ] = edge_division
            else:
                # No live static value flows along this edge: the region
                # ends here ("after the last use of any static value").
                exits.append(succ)
        facts.exit_successors = frozenset(exits)
        return _Outcome(facts=facts, successors=successors, exits=exits)

    def _classify_instr(self, region: RegionInfo, label: str, index: int,
                        instr: Instr, static: set[str],
                        division: set[str],
                        division_key: Division):
        """Classify one instruction, updating ``static``/``division``.

        Returns ``(InstrClass, PromotionPoint | None)``.
        """
        cls = type(instr)

        if cls is MakeStatic:
            for name in instr.names:
                region.policies[name] = instr.policy
            # Only variables that are live here carry a value to promote;
            # the rest (e.g. loop indices annotated before their first
            # assignment, as in Figure 2) merely join the division and
            # become static when assigned a static value.
            live_here = self.liveness.live_before(
                self.function, label, index
            )
            promoted = tuple(
                name for name in instr.names
                if name not in static and name in live_here
            )
            division.update(instr.names)
            static.update(promoted)
            if promoted:
                kind = "entry" if (
                    label == region.entry_block and index == 0
                ) else "annotation"
                promotion = self._promotion(
                    region, label, index, division_key, promoted,
                    instr.policy, kind,
                )
                return InstrClass.ANNOTATION, promotion
            return InstrClass.ANNOTATION, None

        if cls is MakeDynamic:
            for name in instr.names:
                static.discard(name)
                division.discard(name)
            return InstrClass.ANNOTATION, None

        if cls in (Move, UnOp, BinOp):
            if _operands_static(instr, static):
                static.add(instr.dest)
                return InstrClass.STATIC, None
            return self._dynamic_def(
                region, label, index, instr, instr.dest, static,
                division, division_key,
            )

        if cls is Load:
            addr_static = _operands_static(instr, static)
            if instr.static and self.config.static_loads and addr_static:
                static.add(instr.dest)
                return InstrClass.STATIC_LOAD, None
            return self._dynamic_def(
                region, label, index, instr, instr.dest, static,
                division, division_key,
            )

        if cls is Call:
            args_static = _operands_static(instr, static)
            if (instr.static and self.config.static_calls and args_static
                    and self._callee_is_pure(instr.callee)):
                if instr.dest is not None:
                    static.add(instr.dest)
                return InstrClass.STATIC_CALL, None
            if instr.dest is None:
                return InstrClass.DYNAMIC, None
            return self._dynamic_def(
                region, label, index, instr, instr.dest, static,
                division, division_key,
            )

        if cls is Store:
            return InstrClass.DYNAMIC, None

        if cls is Branch:
            cond_static = _operands_static(instr, static)
            if cond_static:
                return InstrClass.STATIC_BRANCH, None
            return InstrClass.DYNAMIC_BRANCH, None

        if cls in (Jump, Return):
            return InstrClass.DYNAMIC, None

        raise BTAError(
            f"unexpected instruction {type(instr).__name__} during BTA"
        )

    def _dynamic_def(self, region: RegionInfo, label: str, index: int,
                     instr: Instr, dest: str, static: set[str],
                     division: set[str], division_key: Division):
        """A dynamic computation defines ``dest``.

        If ``dest`` is an annotated static variable, this is the §2.2.2
        situation: insert an internal promotion (when enabled) so that
        specialization on ``dest`` resumes after a cache check; otherwise
        the variable is demoted.
        """
        if dest in division:
            live_after = self.liveness.live_before(
                self.function, label, index + 1
            )
            if self.config.internal_promotions and dest in live_after:
                policy = region.policies.get(dest, "cache_all")
                promotion = self._promotion(
                    region, label, index, division_key, (dest,), policy,
                    "assignment",
                )
                # dest stays static downstream of the promotion.
                static.add(dest)
                return InstrClass.PROMOTION, promotion
            division.discard(dest)
        static.discard(dest)
        return InstrClass.DYNAMIC, None

    def _promotion(self, region: RegionInfo, label: str, index: int,
                   division_key: Division, names: tuple[str, ...],
                   policy: str, kind: str) -> PromotionPoint:
        """Allocate (or re-find) the promotion point at this site."""
        for existing in region.promotions.values():
            if (existing.block == label and existing.index == index
                    and existing.names == names):
                return existing
        point_id = self._promotion_counter
        self._promotion_counter += 1
        return PromotionPoint(
            point_id=point_id, block=label, index=index, names=names,
            policy=policy, kind=kind,
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _callee_is_pure(self, callee: str) -> bool:
        intrinsic = INTRINSICS.get(callee)
        if intrinsic is not None:
            return intrinsic.pure
        # Module functions reached through a static call: the front end
        # already restricted the flag to `pure func`, but double-check the
        # callee exists so specialize-time evaluation cannot fault.
        return self.module is not None and callee in self.module.functions

    def _compute_loop_defs(self) -> dict[str, frozenset[str]]:
        """Map loop-header label -> variables defined inside the loop."""
        result: dict[str, frozenset[str]] = {}
        for loop in natural_loops(self.function):
            defs: set[str] = set()
            for label in loop.body:
                for instr in self.function.blocks[label].instrs:
                    defs.update(instr.defs())
            result[loop.header] = frozenset(defs)
        return result

def analyze_function(function: Function, config: OptConfig,
                     module: Module | None = None,
                     first_region_id: int = 0) -> list[RegionInfo]:
    """Split annotations to block boundaries, then run the BTA.

    The function is modified in place (block splitting); each returned
    region additionally carries a deep-copied ``template`` snapshot of the
    function for the generating-extension builder to consume after the
    host function has been rewritten.
    """
    split_at_annotations(function)
    analysis = BindingTimeAnalysis(
        function, config, module=module, first_region_id=first_region_id
    )
    regions = analysis.run()
    if regions:
        snapshot = copy.deepcopy(function)
        for region in regions:
            region.template = snapshot
    return regions
