"""Annotation discovery and CFG preprocessing for the BTA.

The BTA wants every ``make_static`` annotation to sit at the *start* of a
basic block (so a region entry or an internal division point coincides
with a block boundary).  :func:`split_at_annotations` establishes that
invariant by splitting blocks in front of mid-block annotations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Jump, MakeStatic


@dataclass(frozen=True)
class AnnotationSite:
    """A ``make_static`` occurrence (always block-initial after splitting)."""

    block: str
    names: tuple[str, ...]
    policy: str


def has_annotations(function: Function) -> bool:
    """True when the function contains any ``make_static`` annotation."""
    return any(
        isinstance(instr, MakeStatic)
        for _, _, instr in function.instructions()
    )


def split_at_annotations(function: Function) -> None:
    """Split blocks so every ``MakeStatic`` is the first instruction.

    Rewrites the function in place.  Block labels of the new annotation
    blocks are derived from the original label, so diagnostics stay
    readable.
    """
    counter = 0
    worklist = list(function.blocks.values())
    while worklist:
        block = worklist.pop()
        for index, instr in enumerate(block.instrs):
            if isinstance(instr, MakeStatic) and index > 0:
                counter += 1
                new_label = f"{block.label}.ms{counter}"
                while new_label in function.blocks:
                    counter += 1
                    new_label = f"{block.label}.ms{counter}"
                tail = BasicBlock(new_label, block.instrs[index:])
                block.instrs = block.instrs[:index] + [Jump(new_label)]
                function.blocks[new_label] = tail
                worklist.append(tail)
                break


def collect_annotations(function: Function) -> list[AnnotationSite]:
    """All block-initial ``make_static`` sites, in CFG (dict) order.

    Call :func:`split_at_annotations` first; a mid-block annotation here
    is a programming error.
    """
    sites: list[AnnotationSite] = []
    for label, block in function.blocks.items():
        first = block.instrs[0] if block.instrs else None
        if isinstance(first, MakeStatic):
            sites.append(AnnotationSite(label, first.names, first.policy))
    return sites
