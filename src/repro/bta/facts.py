"""Result structures produced by the binding-time analysis."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.ir.function import Function

#: A *division*: the set of annotated variables currently assumed static
#: (§2.2.5).  With polyvariant division enabled, the same block may be
#: analyzed once per distinct division flowing into it.
Division = frozenset[str]

EMPTY_DIVISION: Division = frozenset()


class InstrClass(enum.Enum):
    """Binding-time classification of one instruction in one context."""

    STATIC = "static"               # evaluated once, at dynamic compile time
    STATIC_LOAD = "static_load"     # @-load folded at dynamic compile time
    STATIC_CALL = "static_call"     # pure call memoized at dyn compile time
    DYNAMIC = "dynamic"             # emitted into the specialized code
    STATIC_BRANCH = "static_branch"  # folded: specializer picks the arm
    DYNAMIC_BRANCH = "dynamic_branch"  # emitted; both arms specialized
    ANNOTATION = "annotation"       # make_static / make_dynamic
    PROMOTION = "promotion"         # dynamic assignment to an annotated var


@dataclass(frozen=True)
class PromotionPoint:
    """An internal dynamic-to-static promotion (§2.2.2).

    ``kind`` is ``"entry"`` for the region-entry promotion,
    ``"annotation"`` for a ``make_static`` executed where some listed
    variable is currently dynamic, and ``"assignment"`` for a dynamic
    value assigned to an annotated static variable.
    """

    point_id: int
    block: str
    index: int
    names: tuple[str, ...]
    policy: str
    kind: str


@dataclass
class ContextFacts:
    """Per-(block, division) facts for the generating-extension builder."""

    label: str
    division: Division
    #: Static set at block entry (restricted to variables live at entry).
    static_in: frozenset[str]
    #: Per-instruction classification.
    classes: list[InstrClass] = field(default_factory=list)
    #: Per-instruction static set *before* that instruction (used to turn
    #: static operands of dynamic instructions into template holes).
    static_before: list[frozenset[str]] = field(default_factory=list)
    #: Division at block exit (annotations inside the block may change it).
    division_out: Division = EMPTY_DIVISION
    #: Static set at block exit.
    static_out: frozenset[str] = frozenset()
    #: Promotion triggered by an instruction index, if any.
    promotions: dict[int, PromotionPoint] = field(default_factory=dict)
    #: For each successor label: is the edge a region exit?
    exit_successors: frozenset[str] = frozenset()
    #: For each non-exit successor label: the division flowing to it
    #: (the context key the generating extension must target).
    succ_division: dict[str, Division] = field(default_factory=dict)


@dataclass
class RegionInfo:
    """Everything known statically about one dynamic region."""

    region_id: int
    function_name: str
    entry_block: str
    entry_keys: tuple[str, ...]
    entry_policy: str
    #: The region's template CFG (a snapshot of the host function taken
    #: before the host was rewritten to dispatch through the code cache).
    template: Function | None = None
    #: Region member block labels.
    blocks: set[str] = field(default_factory=set)
    #: Ordered region-exit target labels (indices = ExitRegion operands).
    exits: tuple[str, ...] = ()
    #: (label, division) -> facts.
    contexts: dict[tuple[str, Division], ContextFacts] = field(
        default_factory=dict
    )
    #: Variables live at entry of each block (host-function liveness),
    #: used to key specialization contexts on live static variables only.
    live_in: dict[str, frozenset[str]] = field(default_factory=dict)
    #: All promotion points, by id.
    promotions: dict[int, PromotionPoint] = field(default_factory=dict)
    #: Per-variable cache policy (from annotations).
    policies: dict[str, str] = field(default_factory=dict)

    def facts_for(self, label: str,
                  division: Division) -> ContextFacts:
        """Facts for a block under a division (exact key required)."""
        return self.contexts[(label, division)]

    @property
    def division_count(self) -> int:
        """Number of distinct divisions across the region's contexts."""
        return len({division for (_, division) in self.contexts})
