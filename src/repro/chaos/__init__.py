"""Seeded chaos harness for the supervised serve daemon.

``python -m repro.chaos`` starts a real ``repro.serve.supervisor``
subprocess, replays seeded load-generator traffic at it while a
seed-derived schedule injects faults (``serve.respond``,
``persist.fsync``, ``serve.worker_heartbeat``) *and* SIGKILLs live
workers mid-traffic, then checks the invariants the serve tier
promises to keep under fire:

* every request gets exactly one response carrying its own echo token
  (no losses, duplicates, or cross-wired responses);
* every served fingerprint is byte-identical to the offline harness
  oracle;
* the persistent artifact store verifies clean after every crash
  (atomic tmp-file + rename + fsync writes leave no torn records);
* the error taxonomy stays bounded (only known statuses/codes);
* a SIGTERM drain finishes in-flight requests, snapshots the store,
  and a warm restart serves the same bytes.

The schedule — fault spec, kill points, targeted worker slots — is a
pure function of ``--seed``, so a failure reproduces exactly by
re-running with the same seed.  Results land in ``BENCH_chaos.json``.
"""

from repro.chaos.orchestrator import main, plan_schedule

__all__ = ["main", "plan_schedule"]
