"""``python -m repro.chaos`` — run the seeded chaos harness."""

from __future__ import annotations

import sys

from repro.chaos.orchestrator import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
