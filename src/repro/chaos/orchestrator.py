"""The chaos orchestrator: seeded faults + kills against a live fleet.

Execution shape (all derived from ``--seed`` before anything starts):

1. **Plan** — :func:`plan_schedule` draws the daemon-side fault spec,
   the per-chunk traffic, and the kill schedule (which worker slot
   dies after which traffic chunk) from one seeded RNG.
2. **Launch** — a real ``python -m repro.serve.supervisor`` subprocess
   (its own session, so cleanup can ``killpg`` the whole tree even
   when an assertion fails — no orphaned daemons).
3. **Storm** — traffic chunks replay through the retrying loadgen
   client; between chunks the scheduled SIGKILLs land on live worker
   pids read from the supervisor's state file, and the persist store
   is re-verified after every kill.
4. **Drain** — SIGTERM with a burst still in flight: the burst must
   complete, the supervisor must exit 0 having saved a snapshot, and
   a warm-restarted fleet must serve a replay byte-identically.
5. **Verdict** — every distinct fingerprint is re-derived offline;
   invariant failures are listed and exit the process non-zero.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import time

from repro.runtime.persist import verify_store
from repro.serve import knobs
from repro.serve.loadgen import (
    DEFAULT_WORKLOADS,
    LegResult,
    fetch,
    run_leg,
    wait_ready,
)
from repro.serve.protocol import build_config, run_fingerprint
from repro.serve.supervisor import read_state
from repro.workloads import WORKLOADS_BY_NAME

DEFAULT_BENCH_PATH = "BENCH_chaos.json"
DEFAULT_SEED = 20260807

#: Statuses the serve tier is allowed to produce under chaos; anything
#: else is an unbounded-taxonomy failure.
ALLOWED_STATUSES = {"200", "422", "429", "500", "502", "503"}
#: Structured error codes the taxonomy bounds chaos runs to.
ALLOWED_ERROR_CODES = {
    "quota_exceeded", "backpressure", "circuit_open", "injected_fault",
    "specialization_budget", "specialization_error", "harness_error",
}


# ----------------------------------------------------------------------
# Seeded schedule
# ----------------------------------------------------------------------

def plan_schedule(seed: int, *, procs: int, kills: int, chunks: int,
                  chunk_size: int, tenants: int,
                  workloads: tuple[str, ...]) -> dict:
    """Everything the run will do, as a pure function of the seed.

    The returned dict *is* the reproducibility contract: re-running
    with the same seed replans the identical fault spec, traffic, and
    kill schedule (worker slots and chunk boundaries), so a chaos
    failure replays exactly.
    """
    rng = random.Random(seed)
    fault_spec = ";".join([
        # A worker dies (or drops the wire) instead of responding.
        f"serve.respond:every={rng.randrange(17, 31)}",
        # The fsync barrier of a persisted artifact write fails.
        f"persist.fsync:every={rng.randrange(5, 12)}",
        # One simulated hang per worker incarnation.
        f"serve.worker_heartbeat:at={rng.randrange(60, 120)}",
    ])
    universe = []
    for t in range(tenants):
        for name in workloads:
            for variant in (0, 1):
                universe.append({
                    "tenant": f"chaos-{t}",
                    "workload": name,
                    "config": {"quarantine_after": 3 + variant},
                })
    traffic = [
        [dict(rng.choice(universe)) for _ in range(chunk_size)]
        for _ in range(chunks)
    ]
    # Kills land *during* chunks 1..chunks-1 (never before the fleet
    # has served real traffic), so recycling is proven against
    # genuinely in-flight requests, not idle workers.
    kill_points = sorted(
        rng.sample(range(1, chunks), min(kills, chunks - 1))
        if chunks > 1 else [])
    kill_plan = [{"during_chunk": point,
                  "worker_slot": rng.randrange(procs)}
                 for point in kill_points]
    # The drain burst uses fresh keys so its requests actually execute
    # (and are therefore genuinely in flight when SIGTERM lands).
    burst = [{"tenant": "drain", "workload": workloads[i % len(workloads)],
              "config": {"quarantine_after": 8000 + i}}
             for i in range(min(8, 2 * len(workloads)))]
    return {
        "seed": seed,
        "procs": procs,
        "fault_spec": fault_spec,
        "universe_keys": len(universe),
        "chunks": chunks,
        "chunk_size": chunk_size,
        "traffic": traffic,
        "kills": kill_plan,
        "drain_burst": burst,
    }


# ----------------------------------------------------------------------
# Supervisor subprocess management
# ----------------------------------------------------------------------

class SupervisedFleet:
    """A ``repro.serve.supervisor`` subprocess in its own session."""

    def __init__(self, *, procs: int, fault_spec: str | None,
                 persist_dir: str, state_file: str,
                 snapshot_out: str | None = None,
                 snapshot_in: str | None = None,
                 env_overrides: dict[str, str] | None = None):
        self.state_file = state_file
        argv = [sys.executable, "-m", "repro.serve.supervisor",
                "--port", "0", "--procs", str(procs),
                "--state-file", state_file,
                "--persist-dir", persist_dir]
        if fault_spec:
            argv += ["--faults", fault_spec]
        if snapshot_out:
            argv += ["--snapshot-out", snapshot_out]
        if snapshot_in:
            argv += ["--snapshot", snapshot_in]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.join(os.path.dirname(__file__),
                                     "..", ".."),
                        env.get("PYTHONPATH")) if p)
        env.update(env_overrides or {})
        self.proc = subprocess.Popen(
            argv, env=env, start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE)
        self._stderr_tail: list[bytes] = []

    def wait_ready(self, procs: int, timeout: float = 30.0) -> dict:
        """Block until the state file shows a full worker fleet."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"supervisor exited early "
                    f"({self.proc.returncode}): "
                    f"{self.proc.stderr.read().decode(errors='replace')}")
            state = read_state(self.state_file)
            if state and len(state.get("workers", [])) >= procs \
                    and state.get("port"):
                return state
            time.sleep(0.05)
        raise RuntimeError("supervised fleet never became ready")

    def state(self) -> dict:
        return read_state(self.state_file) or {}

    def terminate(self) -> int | None:
        """Graceful SIGTERM to the supervisor (it drains its workers)."""
        if self.proc.poll() is None:
            self.proc.terminate()
        return self.proc.poll()

    def destroy(self) -> None:
        """Hard cleanup: kill the whole session, success or failure.

        This is the no-orphaned-daemons guarantee — assertion failures
        and exceptions run through here before the orchestrator exits.
        """
        try:
            if self.proc.poll() is None:
                os.killpg(self.proc.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError, OSError):
            pass
        try:
            self.proc.wait(timeout=10)
        except (subprocess.TimeoutExpired, OSError):
            pass
        if self.proc.stderr is not None:
            try:
                self._stderr_tail = self.proc.stderr.read().splitlines()
                self.proc.stderr.close()
            except OSError:
                pass

    def stderr_tail(self, lines: int = 40) -> list[str]:
        return [raw.decode(errors="replace")
                for raw in self._stderr_tail[-lines:]]


def kill_worker(fleet: SupervisedFleet, slot: int,
                timeout: float = 20.0) -> dict:
    """SIGKILL the live pid in ``slot``; wait for its replacement."""
    state = fleet.state()
    before = state.get("restarts_total", 0)
    target = next((w for w in state.get("workers", [])
                   if w["worker"] == slot), None)
    if target is None:
        return {"slot": slot, "killed_pid": None, "recycled": False,
                "error": "slot not found in state file"}
    try:
        os.kill(target["pid"], signal.SIGKILL)
    except ProcessLookupError:
        pass  # already being recycled (e.g. a respond-fault exit won)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        state = fleet.state()
        fresh = next((w for w in state.get("workers", [])
                      if w["worker"] == slot), None)
        if state.get("restarts_total", 0) > before and fresh \
                and fresh["pid"] != target["pid"]:
            return {"slot": slot, "killed_pid": target["pid"],
                    "recycled_pid": fresh["pid"], "recycled": True}
        time.sleep(0.05)
    return {"slot": slot, "killed_pid": target["pid"],
            "recycled": False, "error": "worker was not recycled"}


# ----------------------------------------------------------------------
# Invariant helpers
# ----------------------------------------------------------------------

def merge_leg(total: LegResult, part: LegResult) -> None:
    total.latencies += part.latencies
    total.cached += part.cached
    total.coalesced += part.coalesced
    total.transport_errors += part.transport_errors
    total.retries += part.retries
    total.lost += part.lost
    total.echo_mismatches += part.echo_mismatches
    total.mismatched_fingerprints += part.mismatched_fingerprints
    for key, count in part.statuses.items():
        total.statuses[key] = total.statuses.get(key, 0) + count
    for key, count in part.error_codes.items():
        total.error_codes[key] = total.error_codes.get(key, 0) + count
    for identity, fp in part.fingerprints.items():
        seen = total.fingerprints.get(identity)
        if seen is None:
            total.fingerprints[identity] = fp
        elif seen != fp:
            total.mismatched_fingerprints += 1


def oracle_check(fingerprints: dict[str, str]) -> dict:
    """Re-derive every distinct fingerprint offline; all must match."""
    from repro.evalharness.runner import run_workload
    checked = matched = 0
    mismatches = []
    for identity in sorted(fingerprints):
        spec = json.loads(identity)
        result = run_workload(
            WORKLOADS_BY_NAME[spec["workload"]],
            build_config(spec["config"]), verify=spec["verify"],
            backend="threaded")
        checked += 1
        if run_fingerprint(result) == fingerprints[identity]:
            matched += 1
        else:
            mismatches.append(spec["workload"])
    return {"checked": checked, "matched": matched,
            "mismatches": mismatches}


def check_store(persist_dir: str, when: str,
                failures: list[str]) -> dict:
    """The store must scan clean — no torn or corrupt records."""
    scan = verify_store(persist_dir)
    scan["when"] = when
    if scan["corrupt"]:
        failures.append(
            f"store corrupt after {when}: {scan['corrupt']} bad "
            f"record(s) of {scan['records']}")
    return scan


# ----------------------------------------------------------------------
# The run
# ----------------------------------------------------------------------

async def _drain_with_burst(fleet: SupervisedFleet, host: str,
                            port: int, burst: list[dict],
                            timeout: float) -> tuple[LegResult, int]:
    """SIGTERM the fleet with the burst in flight; both must finish."""
    task = asyncio.ensure_future(run_leg(
        "drain-burst", host, port, [dict(r) for r in burst],
        clients=len(burst), timeout=timeout, echo=True))
    # Give every client time to connect and put its request on the
    # wire, then pull the trigger while the work is still running.
    await asyncio.sleep(0.4)
    fleet.terminate()
    leg = await task
    exit_code = await asyncio.get_running_loop().run_in_executor(
        None, fleet.proc.wait, 60)
    return leg, exit_code


def run_chaos(args: argparse.Namespace) -> tuple[dict, list[str]]:
    schedule = plan_schedule(
        args.seed, procs=args.procs, kills=args.kills,
        chunks=args.chunks, chunk_size=args.chunk_size,
        tenants=args.tenants, workloads=tuple(args.workloads))
    failures: list[str] = []
    scratch = tempfile.mkdtemp(prefix="repro-chaos-")
    store = os.path.join(scratch, "store")
    warm_store = os.path.join(scratch, "store-warm")
    snap = os.path.join(scratch, "drain.snap")
    env = {
        # Fast hang detection so heartbeat faults recycle within the
        # smoke budget; both knobs are part of the memo fingerprint,
        # but chaos traffic never compares memo keys across runs with
        # different knobs, so this is safe.
        "REPRO_HEARTBEAT_INTERVAL": "0.25",
        "REPRO_HEARTBEAT_TIMEOUT": "2.0",
        "REPRO_BREAKER_THRESHOLD": str(args.breaker_threshold),
    }
    report: dict = {
        "schema": 1,
        "kind": "chaos-bench",
        "seed": args.seed,
        "schedule": {k: v for k, v in schedule.items()
                     if k != "traffic"},
        "kills": [],
        "store_checks": [],
    }
    total = LegResult("chaos")
    kills_by_chunk: dict[int, list[dict]] = {}
    for kill in schedule["kills"]:
        kills_by_chunk.setdefault(kill["during_chunk"], []).append(kill)

    fleet = SupervisedFleet(
        procs=args.procs, fault_spec=schedule["fault_spec"],
        persist_dir=store, state_file=os.path.join(scratch, "sup.json"),
        snapshot_out=snap, env_overrides=env)
    warm_fleet: SupervisedFleet | None = None
    try:
        state = fleet.wait_ready(args.procs)
        host, port = state["host"], state["port"]
        asyncio.run(wait_ready(host, port))
        print(f"[chaos] fleet up on :{port} (procs={args.procs}, "
              f"faults={schedule['fault_spec']})", file=sys.stderr)

        async def storm_chunk(index: int, chunk: list[dict]) -> None:
            """One traffic chunk with its kills landing mid-flight."""
            loop = asyncio.get_running_loop()
            task = asyncio.ensure_future(run_leg(
                f"chunk-{index}", host, port, chunk,
                clients=args.clients, timeout=args.timeout, echo=True))
            for kill in kills_by_chunk.get(index, ()):
                await asyncio.sleep(0.3)  # let the chunk get in flight
                outcome = await loop.run_in_executor(
                    None, kill_worker, fleet, kill["worker_slot"])
                report["kills"].append(outcome)
                if not outcome["recycled"]:
                    failures.append(
                        f"kill during chunk {index}: worker slot "
                        f"{kill['worker_slot']} was not recycled "
                        f"({outcome.get('error')})")
                print(f"[chaos] chunk {index}: killed worker "
                      f"{kill['worker_slot']} "
                      f"(pid {outcome.get('killed_pid')}) -> "
                      f"recycled={outcome['recycled']}",
                      file=sys.stderr)
            merge_leg(total, await task)

        start = time.perf_counter()
        for index, chunk in enumerate(schedule["traffic"]):
            asyncio.run(storm_chunk(index, chunk))
            for kill in kills_by_chunk.get(index, ()):
                report["store_checks"].append(check_store(
                    store, f"kill during chunk {index}", failures))
        total.duration = time.perf_counter() - start

        # ---- graceful drain with a burst in flight -------------------
        drain_leg, drain_exit = asyncio.run(_drain_with_burst(
            fleet, host, port, schedule["drain_burst"], args.timeout))
        if drain_exit != 0:
            failures.append(
                f"supervisor exited {drain_exit} on SIGTERM drain")
        if drain_leg.lost:
            failures.append(
                f"drain: {drain_leg.lost} in-flight request(s) never "
                f"got a response")
        bad_drain = set(drain_leg.statuses) - {"200"}
        if bad_drain:
            failures.append(
                f"drain: burst saw statuses {sorted(bad_drain)}")
        if not os.path.exists(snap):
            failures.append("drain: no snapshot was saved")
        report["store_checks"].append(
            check_store(store, "graceful drain", failures))
        final_state = fleet.state()
        report["supervisor"] = final_state
        if len(report["kills"]) != len(schedule["kills"]):
            failures.append("not every scheduled kill was delivered")
        expected_kills = sum(
            1 for k in report["kills"] if k.get("killed_pid"))
        if final_state.get("crash_exits", 0) < expected_kills:
            failures.append(
                f"supervisor reaped {final_state.get('crash_exits', 0)} "
                f"crashes but {expected_kills} kills were delivered")

        # ---- warm restart from the drain snapshot --------------------
        warm_fleet = SupervisedFleet(
            procs=args.procs, fault_spec=None, persist_dir=warm_store,
            state_file=os.path.join(scratch, "sup-warm.json"),
            snapshot_in=snap, env_overrides=env)
        wstate = warm_fleet.wait_ready(args.procs)
        asyncio.run(wait_ready(wstate["host"], wstate["port"]))
        warm_leg = asyncio.run(run_leg(
            "warm-replay", wstate["host"], wstate["port"],
            [dict(r) for r in schedule["drain_burst"]],
            clients=4, timeout=args.timeout, echo=True))
        for identity, fp in drain_leg.fingerprints.items():
            if warm_leg.fingerprints.get(identity) != fp:
                failures.append(
                    f"warm restart changed the fingerprint of "
                    f"{json.loads(identity)['workload']}")
        warm_fleet.terminate()
        try:
            warm_exit = warm_fleet.proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            warm_exit = None
        if warm_exit != 0:
            failures.append(f"warm supervisor exited {warm_exit}")
        report["drain"] = {
            "burst": drain_leg.report(),
            "supervisor_exit": drain_exit,
            "snapshot_saved": os.path.exists(snap),
            "warm_replay": warm_leg.report(),
            "warm_fingerprints_identical": all(
                warm_leg.fingerprints.get(i) == fp
                for i, fp in drain_leg.fingerprints.items()),
        }
        merge_leg(total, drain_leg)
        merge_leg(total, warm_leg)
    finally:
        fleet.destroy()
        if warm_fleet is not None:
            warm_fleet.destroy()

    # ---- fleet-independent verdicts ----------------------------------
    report["traffic"] = total.report()
    if total.lost:
        failures.append(f"{total.lost} request(s) lost a response "
                        f"across worker kills")
    if total.echo_mismatches:
        failures.append(f"{total.echo_mismatches} cross-wired "
                        f"response(s) (echo token mismatch)")
    if total.mismatched_fingerprints:
        failures.append("the same key served different fingerprints")
    bad_statuses = set(total.statuses) - ALLOWED_STATUSES
    if bad_statuses:
        failures.append(f"unbounded statuses under chaos: "
                        f"{sorted(bad_statuses)}")
    bad_codes = set(total.error_codes) - ALLOWED_ERROR_CODES
    if bad_codes:
        failures.append(f"unbounded error codes under chaos: "
                        f"{sorted(bad_codes)}")
    oracle = oracle_check(total.fingerprints)
    report["offline_oracle"] = oracle
    if oracle["checked"] == 0:
        failures.append("oracle checked nothing (no 200s at all?)")
    if oracle["matched"] != oracle["checked"]:
        failures.append(f"offline oracle mismatches: "
                        f"{oracle['mismatches']}")
    if not report["kills"]:
        failures.append("no worker kills were scheduled")
    report["failures"] = list(failures)
    report["ok"] = not failures

    import shutil
    shutil.rmtree(scratch, ignore_errors=True)
    return report, failures


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def _parse_args(argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Seeded chaos run against a supervised serve "
                    "fleet.",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--procs", type=int, default=2)
    parser.add_argument("--kills", type=int, default=5,
                        help="scheduled SIGKILLs of live workers")
    parser.add_argument("--chunks", type=int, default=8,
                        help="traffic chunks (kills land between them)")
    parser.add_argument("--chunk-size", type=int, default=40)
    parser.add_argument("--clients", type=int, default=12)
    parser.add_argument("--tenants", type=int, default=3)
    parser.add_argument("--breaker-threshold", type=int, default=5)
    parser.add_argument("--timeout", type=float, default=120.0)
    parser.add_argument("--workloads", nargs="+",
                        default=list(DEFAULT_WORKLOADS),
                        choices=sorted(WORKLOADS_BY_NAME))
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (fewer, smaller chunks)")
    parser.add_argument("--output", default=DEFAULT_BENCH_PATH)
    return parser.parse_args(argv)


def _apply_smoke_sizing(args: argparse.Namespace) -> None:
    args.chunks = min(args.chunks, 6)
    args.chunk_size = min(args.chunk_size, 24)
    args.clients = min(args.clients, 8)
    args.kills = min(args.kills, 5)


def main(argv: list[str]) -> int:
    args = _parse_args(argv)
    if args.smoke:
        _apply_smoke_sizing(args)
    if args.kills > args.chunks - 1:
        print(f"--kills {args.kills} needs --chunks >= "
              f"{args.kills + 1}; raising chunks", file=sys.stderr)
        args.chunks = args.kills + 1
    report, failures = run_chaos(args)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[chaos] report written to {args.output}", file=sys.stderr)
    print(json.dumps({
        "seed": report["seed"],
        "traffic": report["traffic"],
        "kills": report["kills"],
        "offline_oracle": report["offline_oracle"],
        "drain": {k: v for k, v in report.get("drain", {}).items()
                  if k != "warm_replay"},
        "ok": report["ok"],
    }, indent=2, sort_keys=True))
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"all chaos invariants held over "
          f"{report['traffic']['requests']} requests and "
          f"{len(report['kills'])} worker kills", file=sys.stderr)
    return 0
