"""Optimization configuration — the switches Table 5 ablates.

Each field corresponds to one column of the paper's Table 5 (plus the
annotation-checking debug mode).  Disabling a switch degrades the pipeline
the way the paper describes:

``complete_loop_unrolling``
    off ⇒ loop-variant variables are demoted to dynamic at loop headers,
    so loops are emitted with back edges instead of being unrolled away —
    and every optimization that needed a static induction variable
    (static loads indexed by it, static calls on it, …) degrades with it.
``static_loads``
    off ⇒ ``@`` annotations are ignored; annotated loads stay dynamic.
``unchecked_dispatching``
    off ⇒ the ``cache_one_unchecked`` policy is ignored and every dispatch
    pays the general hash-table ``cache_all`` cost.
``static_calls``
    off ⇒ ``pure`` annotations are ignored; calls stay dynamic.
``zero_copy_propagation`` / ``dead_assignment_elimination``
    the two halves of §2.2.7's staged dynamic optimization.  DAE builds on
    the notes ZCP records, but eliminating an instruction whose result is
    provably unused works without ZCP, so the switches are independent,
    matching the paper's separate Table 5 columns.
``strength_reduction``
    off ⇒ multiplies/divides/moduli by run-time constants are emitted
    as-is instead of shifts/masks.
``internal_promotions``
    off ⇒ a static variable assigned a dynamic value is demoted for the
    rest of the region instead of being re-promoted through a cache check.
``polyvariant_division``
    off ⇒ analysis contexts merge at join points (intersection of the
    annotated sets), losing path-specific staticness (the viewperf-shader
    situation of §4.4.4).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True)
class OptConfig:
    """Which of DyC's staged run-time optimizations are enabled."""

    complete_loop_unrolling: bool = True
    static_loads: bool = True
    unchecked_dispatching: bool = True
    static_calls: bool = True
    zero_copy_propagation: bool = True
    dead_assignment_elimination: bool = True
    strength_reduction: bool = True
    internal_promotions: bool = True
    polyvariant_division: bool = True
    #: Debug mode: verify that ``@`` loads really read invariant memory.
    check_annotations: bool = False
    #: Run the staged-specialization linter (:mod:`repro.lint`) before
    #: compiling; error-severity diagnostics abort compilation with
    #: :class:`repro.errors.LintError`.
    lint: bool = False

    # --- robustness knobs (not optimizations; excluded from
    # --- enabled_names and from Table 5) -------------------------------
    #: Fault-injection spec (see :mod:`repro.faults`), combined with the
    #: ``REPRO_FAULTS`` environment variable.
    faults: str = ""
    #: Force the graceful-degradation ladder on.  It also activates
    #: automatically whenever any fault point is armed, or via the
    #: ``REPRO_DEGRADE`` environment variable.
    degrade: bool = False
    #: Bound on live entries per ``cache_all`` code cache (0 = unbounded);
    #: full caches evict clock/second-chance victims instead of growing.
    cache_capacity: int = 0
    #: Per-batch specialization-context budget (0 = the module default,
    #: :data:`repro.runtime.specializer.MAX_CONTEXTS_PER_BATCH`).  With
    #: the ladder active, overruns residualize the remaining work as
    #: ordinary dynamic code instead of raising.
    specialize_budget: int = 0
    #: Quarantine a (region, context) after this many specialization
    #: failures; further dispatches run the unspecialized fallback
    #: directly (circuit breaker).
    quarantine_after: int = 3
    #: Codegen-backend mode: ``"counted"`` (stats byte-identical to the
    #: reference interpreter) or ``"fast"`` (no cycle accounting).
    #: Empty means resolve from ``REPRO_CODEGEN_MODE`` / the default
    #: (``counted``).  Only meaningful with ``backend="pycodegen"``.
    codegen_mode: str = ""
    #: DYC210 size budget (characters) for a region's emitted Python
    #: source; 0 disables the lint.
    codegen_source_budget: int = 0

    def without(self, *names: str) -> "OptConfig":
        """A copy with the named optimizations disabled (for ablations)."""
        valid = {f.name for f in dataclasses.fields(self)}
        for name in names:
            if name not in valid:
                raise ValueError(f"unknown optimization {name!r}")
        return dataclasses.replace(self, **{name: False for name in names})

    def enabled_names(self) -> tuple[str, ...]:
        """Names of the enabled optimization switches."""
        non_opt_fields = (
            "check_annotations", "lint", "faults", "degrade",
            "cache_capacity", "specialize_budget", "quarantine_after",
            "codegen_mode", "codegen_source_budget",
        )
        return tuple(
            f.name for f in dataclasses.fields(self)
            if f.name not in non_opt_fields and getattr(self, f.name)
        )


#: All optimizations on — the paper's "normal configuration" (§4.4).
ALL_ON = OptConfig()

#: Everything off — specialization still happens (the BTA still folds
#: static computations at region entry) but none of the staged
#: optimizations beyond plain constant folding apply.
ALL_OFF = OptConfig(
    complete_loop_unrolling=False,
    static_loads=False,
    unchecked_dispatching=False,
    static_calls=False,
    zero_copy_propagation=False,
    dead_assignment_elimination=False,
    strength_reduction=False,
    internal_promotions=False,
    polyvariant_division=False,
)

#: The ablation set evaluated by Table 5, in the paper's column order.
TABLE5_ABLATIONS: tuple[str, ...] = (
    "complete_loop_unrolling",
    "static_loads",
    "unchecked_dispatching",
    "static_calls",
    "zero_copy_propagation",
    "dead_assignment_elimination",
    "strength_reduction",
    "internal_promotions",
    "polyvariant_division",
)
