"""DyC's core: staged dynamic compilation.

This package implements the paper's primary contribution:

* :mod:`repro.dyc.config` — per-optimization switches (the knobs Table 5
  ablates);
* :mod:`repro.bta` (sibling package) — the binding-time analysis;
* :mod:`repro.dyc.plans` — static planning for staged dynamic zero/copy
  propagation, dead-assignment elimination, and strength reduction;
* :mod:`repro.dyc.genext` — construction of generating extensions (the
  custom per-region dynamic compilers with emit code "hard-wired" in);
* :mod:`repro.dyc.compiler` — the static-compile-time driver that ties it
  all together and rewrites host functions to dispatch into regions.
"""

from repro.config import OptConfig, ALL_ON, ALL_OFF, TABLE5_ABLATIONS
from repro.dyc.compiler import (
    CompiledProgram,
    DycCompiler,
    compile_annotated,
    compile_static,
)
from repro.dyc.genext import GeneratingExtension, build_generating_extension

__all__ = [
    "OptConfig",
    "ALL_ON",
    "ALL_OFF",
    "TABLE5_ABLATIONS",
    "CompiledProgram",
    "DycCompiler",
    "compile_annotated",
    "compile_static",
    "GeneratingExtension",
    "build_generating_extension",
]
