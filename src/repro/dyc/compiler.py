"""The static-compile-time driver (DyC's compile pipeline, §2.1).

``compile_annotated`` performs, for each procedure:

1. traditional intraprocedural optimization;
2. binding-time analysis for procedures containing annotations;
3. generating-extension construction per dynamic region;
4. the host rewrite: each region's entry block is replaced by an
   ``EnterRegion`` dispatch.  The region's other blocks stay in the host
   only where paths bypassing the annotation still need them (the
   unspecialized division); unreachable ones are removed.

``compile_static`` builds the baseline configuration: the same program
compiled "by ignoring the annotations in the application source" (§3.3).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.bta.analysis import analyze_function
from repro.bta.annotations import has_annotations
from repro.bta.facts import RegionInfo
from repro.config import ALL_ON, OptConfig
from repro.dyc.genext import GeneratingExtension, build_generating_extension
from repro.ir.function import BasicBlock, Module
from repro.ir.instructions import EnterRegion, MakeDynamic, MakeStatic
from repro.machine.interp import Machine
from repro.machine.costs import CostModel, ALPHA_21164
from repro.machine.icache import ICacheModel
from repro.opt.pipeline import optimize_function


@dataclass
class CompiledProgram:
    """A dynamically compiled program: host module + generating
    extensions."""

    module: Module
    config: OptConfig
    regions: dict[int, RegionInfo] = field(default_factory=dict)
    genexts: dict[int, GeneratingExtension] = field(default_factory=dict)
    #: function name -> region ids it contains.
    region_functions: dict[str, list[int]] = field(default_factory=dict)

    def make_machine(self, memory=None,
                     cost_model: CostModel = ALPHA_21164,
                     icache: ICacheModel | None = None,
                     overhead=None,
                     tracked=frozenset(),
                     step_limit: int = 500_000_000,
                     backend: str = "reference",
                     codegen_mode: str = "counted"):
        """A machine + runtime pair ready to execute this program."""
        # Imported here: the runtime package imports the generating-
        # extension definitions from this package, so a module-level
        # import would be circular.
        from repro.runtime.runtime import DycRuntime

        runtime = DycRuntime(self, overhead=overhead)
        machine = Machine(
            self.module,
            memory=memory,
            cost_model=cost_model,
            icache=icache,
            runtime=runtime,
            tracked=tracked,
            step_limit=step_limit,
            backend=backend,
            codegen_mode=codegen_mode,
        )
        return machine, runtime


class DycCompiler:
    """Compiles an annotated module for dynamic compilation."""

    def __init__(self, config: OptConfig = ALL_ON):
        self.config = config

    def compile(self, module: Module) -> CompiledProgram:
        """Produce a :class:`CompiledProgram`; ``module`` is not
        modified.

        With ``config.lint`` enabled, the staged-specialization linter
        runs first and error-severity diagnostics abort compilation
        with :class:`LintError` — the specializer's behaviour on
        ill-formed IR is undefined, so it never sees it.
        """
        if self.config.lint:
            self._lint_gate(module)
        module = copy.deepcopy(module)
        compiled = CompiledProgram(module=module, config=self.config)
        next_region_id = 0
        for function in module.functions.values():
            optimize_function(function)
            if not has_annotations(function):
                continue
            regions = analyze_function(
                function, self.config, module=module,
                first_region_id=next_region_id,
            )
            for region in regions:
                genext = build_generating_extension(region, self.config)
                compiled.regions[region.region_id] = region
                compiled.genexts[region.region_id] = genext
                compiled.region_functions.setdefault(
                    function.name, []
                ).append(region.region_id)
                self._rewrite_host(function, region)
                next_region_id = region.region_id + 1
            function.remove_unreachable_blocks()
            self._strip_annotations(function)
        return compiled

    def _lint_gate(self, module: Module) -> None:
        # Imported here: repro.lint imports the generating-extension
        # definitions from this package, so a module-level import would
        # be circular.
        from repro.errors import LintError
        from repro.lint import Severity, lint_module

        diagnostics = lint_module(module, config=self.config)
        errors = [
            d for d in diagnostics if d.severity is Severity.ERROR
        ]
        if errors:
            raise LintError(errors)

    @staticmethod
    def _rewrite_host(function, region: RegionInfo) -> None:
        """Replace the region's entry block with a dispatch."""
        dispatch = EnterRegion(
            region_id=region.region_id,
            keys=region.entry_keys,
            exits=region.exits,
            policy=region.entry_policy,
        )
        function.blocks[region.entry_block] = BasicBlock(
            region.entry_block, [dispatch]
        )

    @staticmethod
    def _strip_annotations(function) -> None:
        """Remove annotation pseudo-instructions left on unspecialized
        paths (they are no-ops at run time, but removing them keeps the
        host clean)."""
        for block in function.blocks.values():
            block.instrs = [
                instr for instr in block.instrs
                if not isinstance(instr, (MakeStatic, MakeDynamic))
            ]


def compile_annotated(module: Module,
                      config: OptConfig = ALL_ON) -> CompiledProgram:
    """Compile ``module`` for dynamic compilation under ``config``."""
    return DycCompiler(config).compile(module)


def compile_static(module: Module) -> Module:
    """The statically compiled baseline: annotations ignored (§3.3)."""
    module = copy.deepcopy(module)
    for function in module.functions.values():
        DycCompiler._strip_annotations(function)
        optimize_function(function)
    return module
