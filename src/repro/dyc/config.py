"""Re-export of :mod:`repro.config` under the historical location.

The optimization configuration lives at the package root so that
:mod:`repro.bta` (which the DyC driver imports) can use it without a
circular import through ``repro.dyc.__init__``.
"""

from repro.config import (  # noqa: F401
    ALL_OFF,
    ALL_ON,
    OptConfig,
    TABLE5_ABLATIONS,
)

__all__ = ["OptConfig", "ALL_ON", "ALL_OFF", "TABLE5_ABLATIONS"]
