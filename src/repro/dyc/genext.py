"""Generating-extension construction (§2.1's "dynamic-compiler generator").

At static compile time, each dynamic region is compiled into a
:class:`GeneratingExtension`: per analysis context ``(block, division)``,
a pre-planned list of *actions* — set-up evaluations interleaved with emit
actions whose operands are already split into holes (run-time constants)
and dynamic registers.  The runtime specializer simply interprets these
action lists; it never re-runs the BTA or inspects the original IR, which
is the paper's staging claim ("these functions are in effect hard-wired
into the custom compiler for that region").
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.analysis.cfg import natural_loops
from repro.analysis.liveness import liveness
from repro.bta.facts import (
    ContextFacts,
    Division,
    EMPTY_DIVISION,
    InstrClass,
    PromotionPoint,
    RegionInfo,
)
from repro.config import OptConfig
from repro.dyc.plans import InstrPlan, plan_instruction
from repro.errors import SpecializationError
from repro.ir.instructions import (
    Branch,
    Instr,
    Jump,
    Return,
)

ContextKey = tuple[str, Division]


# ----------------------------------------------------------------------
# Actions
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class EvalAction:
    """Execute a static computation on the static store at specialize
    time (set-up code)."""

    instr: Instr
    klass: InstrClass  # STATIC, STATIC_LOAD, or STATIC_CALL


@dataclass(frozen=True)
class EmitAction:
    """Emit a template instruction, filling holes from the static store.

    ``holes`` names the register operands that are static at this point
    and therefore become run-time-constant values; ``plan`` carries the
    statically computed ZCP/DAE/SR plan.
    """

    instr: Instr
    holes: frozenset[str]
    plan: InstrPlan | None = None


@dataclass(frozen=True)
class ResidualAction:
    """Materialize static variables that become dynamic here.

    Emitted for ``make_dynamic``: the variables' current run-time-constant
    values are emitted as constant moves so downstream dynamic code can
    read them (static-to-dynamic residualization).  The analogous
    transition at control-flow merges is handled by the specializer when
    it transfers a static store to a successor context.
    """

    names: tuple[str, ...]


@dataclass(frozen=True)
class PromoteAction:
    """A dynamic-to-static promotion point (§2.2.1–2.2.2).

    ``emit`` is the dynamic instruction computing the promoted value
    (``None`` for pure annotation promotions).  Specialization of the
    current context stops here with a ``Promote`` terminator; the
    continuation (the remaining actions of this block) is specialized
    lazily, once per distinct tuple of promoted values.
    """

    point: PromotionPoint
    emit: EmitAction | None = None


Action = EvalAction | EmitAction | PromoteAction | ResidualAction


# ----------------------------------------------------------------------
# Terminators
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TermStatic:
    """A branch on a static condition: folded at specialize time."""

    instr: Branch


@dataclass(frozen=True)
class TermDynamic:
    """A branch on a dynamic condition: emitted, both arms specialized."""

    action: EmitAction


@dataclass(frozen=True)
class TermJump:
    """An unconditional edge."""

    target: str


@dataclass(frozen=True)
class TermReturn:
    """A host-level return emitted inside the region."""

    action: EmitAction


Terminator = TermStatic | TermDynamic | TermJump | TermReturn


#: Successor resolution: ("exit", exit_index) or ("context", context_key).
SuccInfo = tuple[str, object]


@dataclass
class ActionBlock:
    """The compiled form of one (block, division) analysis context."""

    label: str
    division: Division
    #: Variables whose values identify a specialization context at this
    #: block (the static variables live at entry), sorted for determinism.
    key_vars: tuple[str, ...]
    actions: list[Action] = field(default_factory=list)
    terminator: Terminator | None = None
    #: Successor label -> SuccInfo.
    succ_info: dict[str, SuccInfo] = field(default_factory=dict)


@dataclass
class GeneratingExtension:
    """The custom dynamic compiler for one region."""

    region: RegionInfo
    config: OptConfig
    blocks: dict[ContextKey, ActionBlock] = field(default_factory=dict)
    entry_key: ContextKey = ("", EMPTY_DIVISION)
    #: Action index at which entry specialization starts (just after the
    #: region-entry PromoteAction, whose values the dispatcher supplies).
    entry_start: int = 0
    #: Loop structure of the template, for SW/MW unrolling attribution:
    #: header label -> frozenset of body labels.
    loops: dict[str, frozenset[str]] = field(default_factory=dict)

    def block(self, key: ContextKey) -> ActionBlock:
        try:
            return self.blocks[key]
        except KeyError:
            raise SpecializationError(
                f"region {self.region.region_id}: no compiled context "
                f"{key!r}"
            ) from None

    def resolve_context(self, label: str,
                        division: Division) -> ContextKey:
        """Find the compiled context for an edge target."""
        if (label, division) in self.blocks:
            return (label, division)
        # Polyvariant division disabled (or divisions merged): a single
        # context exists per label.
        for key in self.blocks:
            if key[0] == label:
                return key
        raise SpecializationError(
            f"region {self.region.region_id}: no context for block "
            f"{label!r}"
        )


def build_generating_extension(region: RegionInfo,
                               config: OptConfig) -> GeneratingExtension:
    """Compile a region's BTA facts into a generating extension."""
    template = region.template
    if template is None:
        raise SpecializationError(
            f"region {region.region_id} has no template snapshot"
        )
    live = liveness(template)
    genext = GeneratingExtension(region=region, config=config)
    genext.entry_key = (region.entry_block, EMPTY_DIVISION)
    genext.loops = {
        loop.header: frozenset(loop.body)
        for loop in natural_loops(template)
    }

    exit_index = {label: i for i, label in enumerate(region.exits)}

    for (label, division), facts in region.contexts.items():
        block = template.blocks[label]
        action_block = _compile_context(
            region, facts, block.instrs, live.live_out[label], config
        )
        # Successor resolution.
        for succ in block.successors():
            if succ in facts.exit_successors:
                action_block.succ_info[succ] = ("exit", exit_index[succ])
            else:
                succ_division = facts.succ_division.get(
                    succ, facts.division_out
                )
                action_block.succ_info[succ] = (
                    "context", (succ, succ_division)
                )
        genext.blocks[(label, division)] = action_block

    _fix_entry_start(genext)
    _prune_unreachable(genext)
    return genext


def _compile_context(region: RegionInfo, facts: ContextFacts,
                     instrs: list[Instr], live_out: frozenset[str],
                     config: OptConfig) -> ActionBlock:
    action_block = ActionBlock(
        label=facts.label,
        division=facts.division,
        key_vars=tuple(sorted(facts.static_in)),
    )
    for index, instr in enumerate(instrs):
        klass = facts.classes[index]
        is_terminator = index == len(instrs) - 1

        if klass is InstrClass.ANNOTATION:
            promotion = facts.promotions.get(index)
            if promotion is not None:
                action_block.actions.append(PromoteAction(promotion))
            else:
                from repro.ir.instructions import MakeDynamic

                if isinstance(instr, MakeDynamic):
                    action_block.actions.append(
                        ResidualAction(instr.names)
                    )
            continue

        if klass in (InstrClass.STATIC, InstrClass.STATIC_LOAD,
                     InstrClass.STATIC_CALL):
            action_block.actions.append(EvalAction(instr, klass))
            continue

        if klass is InstrClass.PROMOTION:
            emit = _emit_action(instr, index, facts, instrs, live_out,
                                config)
            if emit.plan is not None:
                # The promotion dispatch reads the defining
                # instruction's result from the environment at run
                # time, so it must never be elided — even when all its
                # *template* uses are static computations (which fold).
                emit = EmitAction(
                    emit.instr, emit.holes,
                    dataclasses.replace(emit.plan, remote=True),
                )
            promotion = facts.promotions[index]
            action_block.actions.append(PromoteAction(promotion, emit))
            continue

        if klass is InstrClass.STATIC_BRANCH:
            action_block.terminator = TermStatic(instr)
            continue

        if klass is InstrClass.DYNAMIC_BRANCH:
            action_block.terminator = TermDynamic(
                _emit_action(instr, index, facts, instrs, live_out,
                             config)
            )
            continue

        # Plain dynamic instructions (including Jump/Return terminators).
        if isinstance(instr, Jump):
            action_block.terminator = TermJump(instr.target)
        elif isinstance(instr, Return):
            action_block.terminator = TermReturn(
                _emit_action(instr, index, facts, instrs, live_out,
                             config)
            )
        elif is_terminator:
            raise SpecializationError(
                f"unsupported region terminator "
                f"{type(instr).__name__} in {facts.label!r}"
            )
        else:
            action_block.actions.append(
                _emit_action(instr, index, facts, instrs, live_out,
                             config)
            )
    if action_block.terminator is None:
        raise SpecializationError(
            f"context {facts.label!r} compiled without a terminator"
        )
    return action_block


def _emit_action(instr: Instr, index: int, facts: ContextFacts,
                 instrs: list[Instr], live_out: frozenset[str],
                 config: OptConfig) -> EmitAction:
    static = facts.static_before[index]
    holes = frozenset(name for name in instr.uses() if name in static)
    plan = plan_instruction(instr, index, facts, instrs, live_out)
    return EmitAction(instr=instr, holes=holes, plan=plan)


def _fix_entry_start(genext: GeneratingExtension) -> None:
    """Locate the entry PromoteAction; entry dispatch supplies its values,
    so entry specialization starts just after it."""
    entry_block = genext.blocks.get(genext.entry_key)
    if entry_block is None:
        raise SpecializationError(
            f"region {genext.region.region_id}: missing entry context"
        )
    for i, action in enumerate(entry_block.actions):
        if isinstance(action, PromoteAction) and action.point.kind == "entry":
            genext.entry_start = i + 1
            return
    genext.entry_start = 0


def _prune_unreachable(genext: GeneratingExtension) -> None:
    """Drop contexts not reachable from the entry context.

    The BTA fixpoint can record stale contexts (division keys produced by
    intermediate iterations); they are never specialized, so drop them to
    keep Table 2's division counts honest.
    """
    reachable: set[ContextKey] = set()
    worklist = [genext.entry_key]
    while worklist:
        key = worklist.pop()
        if key in reachable or key not in genext.blocks:
            continue
        reachable.add(key)
        block = genext.blocks[key]
        for kind, payload in block.succ_info.values():
            if kind == "context":
                label, division = payload
                try:
                    worklist.append(
                        genext.resolve_context(label, division)
                    )
                except SpecializationError:
                    continue
    genext.blocks = {
        key: block for key, block in genext.blocks.items()
        if key in reachable
    }
