"""Static planning for staged dynamic optimizations (§2.2.7).

Dynamic zero/copy propagation and dead-assignment elimination are staged:
this module is the *planning* stage, run at static compile time; the
*completion* stage lives in :mod:`repro.runtime.zcp` and runs during
dynamic compilation using only the plans computed here plus a small note
table — no run-time IR analysis.

For each dynamic (to-be-emitted) instruction the planner records:

* whether it is a ZCP candidate — a binary operation one of whose operands
  will be a run-time constant, such that special values (0, 1) let the
  instruction be replaced by a move or clear and then eliminated;
* whether it is a strength-reduction candidate (multiply/divide/modulus
  by a run-time-constant integer);
* how many *local* downstream uses its result has among emitted
  instructions in the same template block, and whether the result may
  have uses beyond the block (``remote``) — the information
  dead-assignment elimination needs to know when an emitted instruction's
  result has become unreferenced.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.liveness import LivenessResult
from repro.bta.facts import ContextFacts, InstrClass
from repro.ir.instructions import (
    BinOp,
    Instr,
    Op,
    Reg,
)

#: Operations eligible for value-dependent ZCP (checked at dynamic
#: compile time by :mod:`repro.runtime.emit`).  Beyond the paper's
#: multiply/add examples, the same staging covers the bitwise identities
#: (x|0, x^0, x&0, shifts by 0).
ZCP_OPS = frozenset({
    Op.MUL, Op.ADD, Op.SUB, Op.DIV,
    Op.OR, Op.XOR, Op.AND, Op.SHL, Op.SHR,
})

#: Operations eligible for dynamic strength reduction.
SR_OPS = frozenset({Op.MUL, Op.DIV, Op.MOD})

#: Classes of emitted instructions (everything else is folded away).
EMITTED_CLASSES = frozenset({
    InstrClass.DYNAMIC,
    InstrClass.DYNAMIC_BRANCH,
    InstrClass.PROMOTION,
})


@dataclass(frozen=True)
class InstrPlan:
    """Per-instruction plan consumed by the dynamic-compile completion
    stage."""

    #: May this instruction be optimized by zero/copy propagation once the
    #: static operand's value is known?
    zcp_candidate: bool
    #: May this instruction be strength-reduced?
    sr_candidate: bool
    #: Number of uses of the result by emitted instructions later in the
    #: same template block (including the terminator).
    local_uses: int
    #: True when the result may be used beyond this template block (live
    #: out), in which case dead-assignment elimination must keep it.
    remote: bool
    #: Is the instruction removable when its result becomes unreferenced?
    removable: bool


def _static_operand_count(instr: BinOp, static: frozenset[str]) -> int:
    count = 0
    for operand in (instr.lhs, instr.rhs):
        if not isinstance(operand, Reg) or operand.name in static:
            count += 1
    return count


def plan_instruction(
    instr: Instr,
    index: int,
    facts: ContextFacts,
    block_instrs: list[Instr],
    live_out: frozenset[str],
) -> InstrPlan:
    """Build the plan for one dynamic instruction of one context."""
    static = facts.static_before[index]
    zcp = False
    sr = False
    if isinstance(instr, BinOp):
        static_operands = _static_operand_count(instr, static)
        # A candidate has at most one static operand now — but an operand
        # that is dynamic here may still turn out to be a run-time
        # constant through an upstream ZCP note (the planner marks all
        # *potential* optimizations; the value check happens at dynamic
        # compile time, §2.2.7).
        if static_operands <= 1:
            zcp = instr.op in ZCP_OPS
            sr = instr.op in SR_OPS and static_operands == 1

    dests = instr.defs()
    if not dests:
        return InstrPlan(zcp, sr, 0, False, False)
    dest = dests[0]

    local_uses = 0
    redefined = False
    remote = False
    # Promotion points split the block across separate emission batches
    # (the continuation is specialized lazily, with a fresh note table);
    # a use beyond a promotion point is therefore *not* local to this
    # instruction's emitter and must pin the definition.
    promotion_indices = sorted(
        p for p in facts.promotions if p > index
    )

    def crosses_promotion(later_index: int) -> bool:
        return any(p < later_index for p in promotion_indices)

    for later_index in range(index + 1, len(block_instrs)):
        later = block_instrs[later_index]
        if facts.classes[later_index] in EMITTED_CLASSES \
                and dest in later.uses():
            if crosses_promotion(later_index):
                remote = True
            else:
                local_uses += later.uses().count(dest)
        if dest in later.defs():
            redefined = True
            break
    remote = remote or ((not redefined) and dest in live_out)

    # Pure value-producing instructions can be deleted if unreferenced;
    # calls and stores cannot.
    from repro.ir.instructions import Load, Move, UnOp

    removable = isinstance(instr, (Move, UnOp, BinOp, Load))
    return InstrPlan(zcp, sr, local_uses, remote, removable)
