"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single handler while still being
able to distinguish front-end, IR, analysis, and runtime problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SourceError(ReproError):
    """A problem in MiniC source code (lexing, parsing, or lowering).

    Carries an optional (line, column) location for diagnostics.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None):
        self.message = message
        self.line = line
        self.column = column
        super().__init__(self._format())

    def _format(self) -> str:
        if self.line is None:
            return self.message
        if self.column is None:
            return f"line {self.line}: {self.message}"
        return f"line {self.line}, col {self.column}: {self.message}"


class LexError(SourceError):
    """Raised when the lexer encounters an invalid token."""


class ParseError(SourceError):
    """Raised when the parser encounters invalid syntax."""


class LowerError(SourceError):
    """Raised when AST-to-IR lowering finds a semantic problem."""


class IRError(ReproError):
    """Raised when an IR structure is malformed (verifier failures, etc.)."""


class AnalysisError(ReproError):
    """Raised when a static analysis (BTA, dataflow) cannot proceed."""


class BTAError(AnalysisError):
    """Raised for binding-time-analysis-specific failures."""


class LintError(AnalysisError):
    """Raised when the pre-compile lint gate finds error diagnostics.

    Carries the offending :class:`repro.lint.Diagnostic` list so callers
    can render them; ``str()`` includes each one.
    """

    def __init__(self, diagnostics):
        self.diagnostics = list(diagnostics)
        summary = "; ".join(d.format() for d in self.diagnostics)
        super().__init__(
            f"lint found {len(self.diagnostics)} error(s): {summary}"
        )


class MachineError(ReproError):
    """Raised for runtime faults in the abstract machine."""


class MemoryFault(MachineError):
    """Out-of-bounds or null access in abstract-machine memory."""


class TrapError(MachineError):
    """Raised when executed code performs an illegal operation."""


class SpecializationError(ReproError):
    """Raised when the runtime specializer cannot specialize a region."""


class AnnotationError(ReproError):
    """Raised when annotation checking detects a violated static assertion.

    DyC's ``@`` loads and ``pure`` calls are unsafe programmer assertions;
    this error is raised only when the optional checking mode is enabled and
    observes an annotated-invariant value changing.
    """


class CacheError(ReproError):
    """Raised on code-cache misuse (e.g. cache-one-unchecked key change)."""
