"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single handler while still being
able to distinguish front-end, IR, analysis, and runtime problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SourceError(ReproError):
    """A problem in MiniC source code (lexing, parsing, or lowering).

    Carries an optional (line, column) location for diagnostics.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None):
        self.message = message
        self.line = line
        self.column = column
        super().__init__(self._format())

    def _format(self) -> str:
        if self.line is None:
            return self.message
        if self.column is None:
            return f"line {self.line}: {self.message}"
        return f"line {self.line}, col {self.column}: {self.message}"


class LexError(SourceError):
    """Raised when the lexer encounters an invalid token."""


class ParseError(SourceError):
    """Raised when the parser encounters invalid syntax."""


class LowerError(SourceError):
    """Raised when AST-to-IR lowering finds a semantic problem."""


class IRError(ReproError):
    """Raised when an IR structure is malformed (verifier failures, etc.)."""


class AnalysisError(ReproError):
    """Raised when a static analysis (BTA, dataflow) cannot proceed."""


class BTAError(AnalysisError):
    """Raised for binding-time-analysis-specific failures."""


class LintError(AnalysisError):
    """Raised when the pre-compile lint gate finds error diagnostics.

    Carries the offending :class:`repro.lint.Diagnostic` list so callers
    can render them; ``str()`` includes each one.
    """

    def __init__(self, diagnostics):
        self.diagnostics = list(diagnostics)
        summary = "; ".join(d.format() for d in self.diagnostics)
        super().__init__(
            f"lint found {len(self.diagnostics)} error(s): {summary}"
        )


class MachineError(ReproError):
    """Raised for runtime faults in the abstract machine."""


class MemoryFault(MachineError):
    """Out-of-bounds or null access in abstract-machine memory."""


class TrapError(MachineError):
    """Raised when executed code performs an illegal operation."""


class SpecializationError(ReproError):
    """Raised when the runtime specializer cannot specialize a region.

    Beyond the human-readable message, the error carries structured
    fields so the degradation ladder can key its quarantine on the
    failing (region, context) and the harness can report *where* a run
    degraded: ``region_id``, ``context_key`` (the promoted-value tuple),
    ``fault_point`` (the :mod:`repro.faults` point that injected the
    failure, if any), and ``attempt`` (1 for the first specialization
    attempt, 2 for the re-specialize rung).
    """

    def __init__(self, message: str, *, region_id: int | None = None,
                 context_key: tuple | None = None,
                 fault_point: str | None = None,
                 attempt: int | None = None):
        self.message = message
        self.region_id = region_id
        self.context_key = context_key
        self.fault_point = fault_point
        self.attempt = attempt
        super().__init__(self._format())

    def _format(self) -> str:
        details = []
        if self.region_id is not None and \
                f"region {self.region_id}" not in self.message:
            details.append(f"region {self.region_id}")
        if self.context_key is not None:
            details.append(f"context {self.context_key!r}")
        if self.fault_point is not None:
            details.append(f"fault {self.fault_point}")
        if self.attempt is not None:
            details.append(f"attempt {self.attempt}")
        if not details:
            return self.message
        return f"{self.message} [{', '.join(details)}]"

    def fields(self) -> dict:
        """Structured fields as a plain dict (for memoization/transport)."""
        return {
            "region_id": self.region_id,
            "context_key": self.context_key,
            "fault_point": self.fault_point,
            "attempt": self.attempt,
        }


class SpecializationBudgetError(SpecializationError):
    """A specialization batch exceeded its context budget.

    Distinguished so the degradation ladder can residualize the runaway
    unrolling dynamically instead of retrying (a retry would overrun the
    same budget again).
    """


class FaultConfigError(ReproError):
    """Raised for malformed ``REPRO_FAULTS`` / ``OptConfig.faults`` specs."""


class WorkerFault(ReproError):
    """An injected failure inside an eval-harness pool worker."""


class HarnessError(ReproError):
    """One or more harness tasks failed even after retries.

    Raised *after* the whole sweep completes (so completed results are
    persisted via the memo cache); carries the per-task failure records.
    """

    def __init__(self, failures, context: str = "harness sweep"):
        self.failures = list(failures)
        summary = "; ".join(
            f"task {f.index}: {f.error_type}: {f.error}"
            for f in self.failures
        )
        super().__init__(
            f"{context}: {len(self.failures)} task(s) failed after "
            f"retries: {summary}"
        )


class AnnotationError(ReproError):
    """Raised when annotation checking detects a violated static assertion.

    DyC's ``@`` loads and ``pure`` calls are unsafe programmer assertions;
    this error is raised only when the optional checking mode is enabled and
    observes an annotated-invariant value changing.
    """


class CacheError(ReproError):
    """Raised on code-cache misuse (e.g. cache-one-unchecked key change)."""
