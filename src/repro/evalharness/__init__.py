"""Experiment harness: reproduces the paper's Tables 1–5.

* :mod:`repro.evalharness.runner` — run one workload (static baseline +
  dynamically compiled) under a given :class:`~repro.config.OptConfig`,
  with output verification and cycle accounting;
* :mod:`repro.evalharness.metrics` — asymptotic speedup, break-even
  point, overhead per generated instruction (§4.2's definitions);
* :mod:`repro.evalharness.tables` — builders and text renderers for each
  table;
* ``python -m repro.evalharness <table1|table2|table3|table4|table5|all>``
  regenerates them from scratch.
"""

from repro.evalharness.metrics import RegionMetrics, breakeven_point
from repro.evalharness.runner import RunResult, run_workload
from repro.evalharness.tables import (
    build_table1,
    build_table2,
    build_table3,
    build_table4,
    build_table5,
    render_table,
)

__all__ = [
    "RegionMetrics",
    "breakeven_point",
    "RunResult",
    "run_workload",
    "build_table1",
    "build_table2",
    "build_table3",
    "build_table4",
    "build_table5",
    "render_table",
]
