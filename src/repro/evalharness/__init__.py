"""Experiment harness: reproduces the paper's Tables 1–5.

* :mod:`repro.evalharness.runner` — run one workload (static baseline +
  dynamically compiled) under a given :class:`~repro.config.OptConfig`,
  with output verification and cycle accounting;
* :mod:`repro.evalharness.metrics` — asymptotic speedup, break-even
  point, overhead per generated instruction (§4.2's definitions);
* :mod:`repro.evalharness.tables` — builders and text renderers for each
  table;
* :mod:`repro.evalharness.memo` — content-hash memoization of run
  results (backend-independent, since both backends produce
  byte-identical statistics);
* :mod:`repro.evalharness.parallel` — process-pool fan-out of runs
  (``--jobs N``);
* :mod:`repro.evalharness.bench` — wall-clock benchmark of the
  reference vs. threaded execution backends (``BENCH_interp.json``);
* ``python -m repro.evalharness <table1|…|table5|dispatch|all|bench>``
  regenerates them from scratch.
"""

from repro.evalharness.bench import run_bench, write_bench
from repro.evalharness.memo import Memoizer, memo_key
from repro.evalharness.metrics import RegionMetrics, breakeven_point
from repro.evalharness.parallel import (
    resolve_jobs,
    run_ablations,
    run_configs,
)
from repro.evalharness.runner import (
    RunResult,
    resolve_backend,
    run_workload,
)
from repro.evalharness.tables import (
    build_table1,
    build_table2,
    build_table3,
    build_table4,
    build_table5,
    render_table,
    run_all,
)

__all__ = [
    "RegionMetrics",
    "breakeven_point",
    "RunResult",
    "run_workload",
    "resolve_backend",
    "Memoizer",
    "memo_key",
    "resolve_jobs",
    "run_configs",
    "run_ablations",
    "run_bench",
    "write_bench",
    "run_all",
    "build_table1",
    "build_table2",
    "build_table3",
    "build_table4",
    "build_table5",
    "render_table",
]
