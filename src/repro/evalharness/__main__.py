"""Regenerate the paper's tables: ``python -m repro.evalharness [what]``.

``what`` is one of ``table1`` … ``table5``, ``dispatch`` (the §4.4.3
dispatch-cost measurements), ``all`` (default), ``bench`` (wall-clock
comparison of the execution backends, written to ``BENCH_interp.json``),
or ``warmstart`` (cold vs warm artifact generation against the
persistent store, written to ``BENCH_warmstart.json``).

Shared flags::

    --backend {reference,threaded,pycodegen}
                                     execution backend (default: threaded,
                                     or $REPRO_BACKEND)
    --codegen-mode {counted,fast}    pycodegen mode (default: counted,
                                     or $REPRO_CODEGEN_MODE)
    --jobs N                         fan runs out over N worker processes
                                     (0 = one per CPU; default $REPRO_JOBS
                                     or serial)
    --no-memo                        disable the content-hash result cache
    --memo-dir DIR                   cache directory (default .repro_memo,
                                     or $REPRO_MEMO_DIR)
    --persist-dir DIR                activate the persistent artifact
                                     store at DIR for every run (sets
                                     REPRO_PERSIST_DIR, so --jobs pool
                                     workers share it too)

Robustness flags (exported to the environment so pool workers inherit
them)::

    --faults SPEC                    arm fault-injection points
                                     (sets REPRO_FAULTS)
    --degrade                        enable the graceful-degradation
                                     ladder (sets REPRO_DEGRADE=1)
    --task-timeout SECS              no-progress timeout per pool round
                                     (sets REPRO_TASK_TIMEOUT)

``bench``/``warmstart`` flags: ``--output PATH``, ``--repeat N``
(bench only), and ``--compare`` (diff the committed report at
``--output`` against a fresh run instead of overwriting it; exits
non-zero on semantic divergence).

Fusion-profile feedback (see :mod:`repro.machine.fusionprofile`)::

    --fusion-profile-out PATH        collect observed block transfers on
                                     the threaded tier and write them as
                                     JSON (serial runs only: pool-worker
                                     transfers are not collected)
    --fusion-profile-in PATH         order pycodegen trace layout by a
                                     previously collected profile (sets
                                     REPRO_FUSION_PROFILE_IN for workers)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.evalharness.bench import (
    DEFAULT_BENCH_PATH,
    compare_reports,
    load_bench,
    run_bench,
    write_bench,
)
from repro.evalharness.memo import Memoizer
from repro.evalharness.tables import (
    Table,
    build_table1,
    build_table2,
    build_table3,
    build_table4,
    build_table5,
    render_table,
    run_all,
)
from repro.machine import BACKENDS, CODEGEN_MODES
from repro.workloads import APPLICATIONS

TARGETS = ("table1", "table2", "table3", "table4", "table5",
           "dispatch", "all", "bench", "warmstart")


def _emit(table: Table) -> None:
    print()
    print(render_table(table))


def build_dispatch_table(results) -> Table:
    """§4.4.3: unchecked vs hash-based dispatch costs."""
    table = Table(
        title="Dispatch Costs (Section 4.4.3)",
        headers=["Dynamic Region", "Policy", "Dispatches",
                 "Avg Cycles/Dispatch"],
    )
    for name, result in results.items():
        for region_id, stats in sorted(result.region_stats.items()):
            if not stats.dispatches:
                continue
            policy = ("cache_one_unchecked" if stats.unchecked_dispatches
                      else "cache_all")
            table.rows.append([
                f"{name} (region {region_id})",
                policy,
                str(stats.dispatches),
                f"{stats.dispatch_cycles / stats.dispatches:.0f}",
            ])
    return table


def _parse_args(argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.evalharness",
        description="Reproduce the paper's tables / benchmark the "
                    "interpreter backends.",
    )
    parser.add_argument("what", nargs="?", default="all",
                        choices=TARGETS,
                        help="which table (or sweep) to build")
    parser.add_argument("--backend", choices=BACKENDS, default=None,
                        help="execution backend (default: $REPRO_BACKEND "
                             "or threaded)")
    parser.add_argument("--codegen-mode", choices=CODEGEN_MODES,
                        default=None,
                        help="pycodegen mode (default: "
                             "$REPRO_CODEGEN_MODE or counted; sets "
                             "$REPRO_CODEGEN_MODE for workers too)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes (0 = one per CPU; "
                             "default: $REPRO_JOBS or serial)")
    parser.add_argument("--no-memo", action="store_true",
                        help="disable the content-hash result cache")
    parser.add_argument("--memo-dir", default=None, metavar="DIR",
                        help="result-cache directory (default: "
                             "$REPRO_MEMO_DIR or .repro_memo)")
    parser.add_argument("--persist-dir", default=None, metavar="DIR",
                        help="activate the persistent artifact store at "
                             "DIR (sets $REPRO_PERSIST_DIR for workers "
                             "too)")
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="fault-injection spec, e.g. "
                             "'cache.corrupt:once;worker.crash' "
                             "(sets $REPRO_FAULTS for workers too)")
    parser.add_argument("--degrade", action="store_true",
                        help="enable the graceful-degradation ladder "
                             "(sets $REPRO_DEGRADE=1)")
    parser.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECS",
                        help="abandon a pool round after SECS with no "
                             "completed task (sets $REPRO_TASK_TIMEOUT)")
    parser.add_argument("--output", default=DEFAULT_BENCH_PATH,
                        metavar="PATH",
                        help="bench only: where to write the JSON report")
    parser.add_argument("--repeat", type=int, default=3, metavar="N",
                        help="bench only: timing repetitions per "
                             "measurement (best-of; default 3)")
    parser.add_argument("--compare", action="store_true",
                        help="bench only: diff the committed report at "
                             "--output against a fresh run instead of "
                             "overwriting it")
    parser.add_argument("--fusion-profile-out", default=None,
                        metavar="PATH",
                        help="collect threaded-tier block-transfer "
                             "profiles and write them to PATH as JSON")
    parser.add_argument("--fusion-profile-in", default=None,
                        metavar="PATH",
                        help="feed a collected profile back into the "
                             "pycodegen trace layout (sets "
                             "$REPRO_FUSION_PROFILE_IN for workers too)")
    return parser.parse_args(argv)


def _bench(args: argparse.Namespace) -> int:
    report = run_bench(repeat=args.repeat)
    if args.compare:
        try:
            committed = load_bench(args.output)
        except (OSError, ValueError) as err:
            print(f"cannot load committed report {args.output}: {err}",
                  file=sys.stderr)
            return 1
        lines, ok = compare_reports(committed, report)
        for line in lines:
            print(line)
        if not ok:
            print("ERROR: committed bench report disagrees with the "
                  "fresh run", file=sys.stderr)
            return 1
        return 0
    write_bench(report, args.output)
    print(json.dumps(report["backends"], indent=2))
    for column, value in report["geomean"].items():
        print(f"geomean speedup (reference/{column}): {value}x")
    print(f"report written to {args.output}")
    failed = False
    if not report["checksums_match"]:
        print("ERROR: counted execution statistics diverged "
              "(stats_checksum mismatch)", file=sys.stderr)
        failed = True
    if not report["results_match"]:
        print("ERROR: program results diverged across backends "
              "(results_checksum mismatch)", file=sys.stderr)
        failed = True
    if failed:
        return 1
    print("backend statistics and results checksums match")
    return 0


def _warmstart(args: argparse.Namespace) -> int:
    from repro.evalharness.warmstart import (
        DEFAULT_WARMSTART_PATH,
        compare_warmstart,
        load_warmstart,
        run_warmstart,
        write_warmstart,
    )
    output = args.output
    if output == DEFAULT_BENCH_PATH:
        output = DEFAULT_WARMSTART_PATH
    report = run_warmstart(backend=args.backend)
    if args.compare:
        try:
            committed = load_warmstart(output)
        except (OSError, ValueError) as err:
            print(f"cannot load committed report {output}: {err}",
                  file=sys.stderr)
            return 1
        lines, ok = compare_warmstart(committed, report)
        for line in lines:
            print(line)
        if not ok:
            print("ERROR: committed warm-start report disagrees with "
                  "the fresh run", file=sys.stderr)
            return 1
        return 0
    write_warmstart(report, output)
    for name, entry in report["workloads"].items():
        print(f"{name:12s} cold={entry['cold_work_seconds']:.4f}s "
              f"warm={entry['warm_work_seconds']:.4f}s "
              f"ratio={entry['warm_ratio']:.4f} "
              f"match={entry['checksums_match']}")
    totals = report["totals"]
    print(f"total cold={totals['cold_work_seconds']:.4f}s "
          f"warm={totals['warm_work_seconds']:.4f}s "
          f"ratio={totals['warm_ratio']:.4f}")
    print(f"report written to {output}")
    if not report["checksums_match"]:
        print("ERROR: warm run statistics/results diverged from cold "
              "run", file=sys.stderr)
        return 1
    if not report["warm_within_limit"]:
        print("ERROR: warm-start overhead exceeds "
              f"{report['warm_ratio_limit']:.0%} of cold",
              file=sys.stderr)
        return 1
    print("warm runs byte-identical to cold and within the overhead "
          "limit")
    return 0


def _export_robustness_env(args: argparse.Namespace) -> None:
    """Publish robustness flags as environment variables.

    The runtime resolves faults/degradation from the environment (on top
    of ``OptConfig``), and pool workers inherit ``os.environ`` — so one
    export point covers the serial path, the parent's own runs, and
    every worker process.
    """
    if args.faults is not None:
        from repro.faults import parse_spec
        parse_spec(args.faults)   # fail fast on typos, in the parent
        os.environ["REPRO_FAULTS"] = args.faults
    if args.degrade:
        os.environ["REPRO_DEGRADE"] = "1"
    if args.task_timeout is not None:
        os.environ["REPRO_TASK_TIMEOUT"] = str(args.task_timeout)
    if args.codegen_mode is not None:
        os.environ["REPRO_CODEGEN_MODE"] = args.codegen_mode
    if args.persist_dir is not None:
        from repro.runtime import persist
        os.environ[persist.ENV_PERSIST_DIR] = args.persist_dir
        # The parent process may already have resolved (and cached) "no
        # store" — re-resolve so its own runs honor the flag too.
        persist.reset()


def _arm_fusion_profile(args: argparse.Namespace):
    """Install ``--fusion-profile-in`` / arm ``--fusion-profile-out``.

    Returns the collecting profile (or None) so :func:`main` can save
    it once the sweep finishes.
    """
    from repro.machine import fusionprofile
    if args.fusion_profile_in is not None:
        profile = fusionprofile.FusionProfile.load(args.fusion_profile_in)
        fusionprofile.install(profile)
        # Pool workers resolve the profile lazily from the environment.
        os.environ[fusionprofile.ENV_PROFILE_IN] = args.fusion_profile_in
    if args.fusion_profile_out is not None:
        return fusionprofile.start_collecting()
    return None


def _save_fusion_profile(args: argparse.Namespace, profile) -> None:
    if profile is None:
        return
    profile.save(args.fusion_profile_out)
    print(f"fusion profile ({profile.total_edges} edges over "
          f"{len(profile.edges)} function(s)) written to "
          f"{args.fusion_profile_out}", file=sys.stderr)


def main(argv: list[str]) -> int:
    args = _parse_args(argv)
    _export_robustness_env(args)
    collecting = _arm_fusion_profile(args)
    start = time.time()

    if args.what == "bench":
        code = _bench(args)
        _save_fusion_profile(args, collecting)
        return code
    if args.what == "warmstart":
        code = _warmstart(args)
        _save_fusion_profile(args, collecting)
        return code

    memo = None if args.no_memo else Memoizer(args.memo_dir)
    kwargs = dict(jobs=args.jobs, memo=memo, backend=args.backend)

    if args.what in ("table1", "all"):
        _emit(build_table1())
    if args.what in ("table2", "table3", "table4", "dispatch", "all"):
        results = run_all(**kwargs)
        if args.what in ("table2", "all"):
            _emit(build_table2(results))
        if args.what in ("table3", "all"):
            _emit(build_table3(results))
        if args.what in ("table4", "all"):
            app_results = {
                w.name: results[w.name] for w in APPLICATIONS
            }
            _emit(build_table4(app_results))
        if args.what in ("dispatch", "all"):
            _emit(build_dispatch_table(results))
        if args.what == "all":
            _emit(build_table5(results, progress=_progress, **kwargs))
    elif args.what == "table5":
        _emit(build_table5(progress=_progress, **kwargs))

    _save_fusion_profile(args, collecting)
    print(f"\n[{time.time() - start:.1f}s]", file=sys.stderr)
    return 0


def _progress(workload: str, ablation: str) -> None:
    print(f"  [table5] {workload} without {ablation}", file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
