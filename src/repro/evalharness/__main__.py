"""Regenerate the paper's tables: ``python -m repro.evalharness [what]``.

``what`` is one of ``table1`` … ``table5``, ``dispatch`` (the §4.4.3
dispatch-cost measurements), or ``all`` (default).
"""

from __future__ import annotations

import sys
import time

from repro.config import ALL_ON
from repro.evalharness.tables import (
    Table,
    build_table1,
    build_table2,
    build_table3,
    build_table4,
    build_table5,
    render_table,
    run_all,
)
from repro.workloads import APPLICATIONS


def _emit(table: Table) -> None:
    print()
    print(render_table(table))


def build_dispatch_table(results) -> Table:
    """§4.4.3: unchecked vs hash-based dispatch costs."""
    table = Table(
        title="Dispatch Costs (Section 4.4.3)",
        headers=["Dynamic Region", "Policy", "Dispatches",
                 "Avg Cycles/Dispatch"],
    )
    for name, result in results.items():
        for region_id, stats in sorted(result.region_stats.items()):
            if not stats.dispatches:
                continue
            policy = ("cache_one_unchecked" if stats.unchecked_dispatches
                      else "cache_all")
            table.rows.append([
                f"{name} (region {region_id})",
                policy,
                str(stats.dispatches),
                f"{stats.dispatch_cycles / stats.dispatches:.0f}",
            ])
    return table


def main(argv: list[str]) -> int:
    what = argv[0] if argv else "all"
    start = time.time()

    if what in ("table1", "all"):
        _emit(build_table1())
    if what in ("table2", "table3", "table4", "dispatch", "all"):
        results = run_all(ALL_ON)
        if what in ("table2", "all"):
            _emit(build_table2(results))
        if what in ("table3", "all"):
            _emit(build_table3(results))
        if what in ("table4", "all"):
            app_results = {
                w.name: results[w.name] for w in APPLICATIONS
            }
            _emit(build_table4(app_results))
        if what in ("dispatch", "all"):
            _emit(build_dispatch_table(results))
        if what in ("table5", "all"):
            def progress(workload: str, ablation: str) -> None:
                print(f"  [table5] {workload} without {ablation} ...",
                      file=sys.stderr)
            _emit(build_table5(results, progress=progress))
    elif what == "table5":
        def progress(workload: str, ablation: str) -> None:
            print(f"  [table5] {workload} without {ablation} ...",
                  file=sys.stderr)
        _emit(build_table5(progress=progress))
    elif what not in ("table1",):
        print(f"unknown target {what!r}; use table1..table5, "
              "dispatch, or all", file=sys.stderr)
        return 2

    print(f"\n[{time.time() - start:.1f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
