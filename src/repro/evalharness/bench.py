"""Wall-clock benchmark of the reference, threaded, and codegen backends.

``python -m repro.evalharness bench`` runs every workload's static and
dynamic executions under each benchmark column, sharing one compiled
program per workload across columns so only *execution* time is
compared, and writes ``BENCH_interp.json`` (schema 2) with per-workload
and aggregate wall-clock seconds, per-column speedup factors over the
reference interpreter, a geometric-mean summary, and a SHA-256 checksum
over each counted column's full execution statistics.  A checksum
mismatch means the backends diverged — the CLI (and CI) treat that as a
hard failure.

The columns are:

``reference``
    The reference interpreter — the baseline every speedup is against.
``threaded``
    The direct-threaded closure backend (with superinstruction fusion).
``pycodegen_counted``
    The Python-codegen backend in counted mode: regions compiled to real
    code objects, statistics byte-identical to the reference
    interpreter (checksum-enforced here).
``pycodegen``
    The Python-codegen backend in fast mode: no cycle accounting, so it
    participates only in the *results* checksum (program outputs must
    still match the reference run exactly).

Note this benchmarks the *interpreter itself* (host-Python seconds spent
simulating the abstract machine), not the simulated cycle counts the
tables report — those are identical across counted columns by
construction.

:func:`compare_reports` diffs a committed report against a fresh run:
statistics/results checksums must agree (they are machine-independent);
wall-clock drift is reported but never fails the comparison.
"""

from __future__ import annotations

import hashlib
import json
import math
import platform
import sys
import time

from repro.config import ALL_ON, OptConfig
from repro.dyc import compile_annotated, compile_static
from repro.evalharness.runner import _machine_kwargs
from repro.frontend import compile_source
from repro.ir import Memory
from repro.machine import ALPHA_21164, Machine
from repro.runtime.overhead import DEFAULT_OVERHEAD
from repro.workloads import ALL_WORKLOADS

DEFAULT_BENCH_PATH = "BENCH_interp.json"

#: Benchmark columns, in report order: (column name, backend, mode).
BENCH_COLUMNS: tuple[tuple[str, str, str], ...] = (
    ("reference", "reference", "counted"),
    ("threaded", "threaded", "counted"),
    ("pycodegen_counted", "pycodegen", "counted"),
    ("pycodegen", "pycodegen", "fast"),
)

#: Columns whose execution statistics must be byte-identical.
COUNTED_COLUMNS = ("reference", "threaded", "pycodegen_counted")

#: Columns with a speedup factor over the reference interpreter.
SPEEDUP_COLUMNS = ("threaded", "pycodegen_counted", "pycodegen")


def _execute(workload, static_module, compiled, backend: str, mode: str):
    """One timed static + dynamic execution.

    Returns ``(seconds, stats_fingerprint, results_fingerprint,
    cycles)``; the stats fingerprint is only meaningful in counted mode.
    """
    tracked = frozenset(workload.region_functions)
    kwargs = _machine_kwargs(workload, ALPHA_21164, backend, mode)

    static_memory = Memory()
    static_input = workload.setup(static_memory)
    static_machine = Machine(static_module, memory=static_memory,
                             tracked=tracked, **kwargs)
    dynamic_memory = Memory()
    dynamic_input = workload.setup(dynamic_memory)
    dynamic_machine, _runtime = compiled.make_machine(
        memory=dynamic_memory, tracked=tracked,
        overhead=DEFAULT_OVERHEAD, **kwargs,
    )

    start = time.perf_counter()
    static_result = static_machine.run(workload.entry,
                                       *static_input.args)
    dynamic_result = dynamic_machine.run(workload.entry,
                                         *dynamic_input.args)
    seconds = time.perf_counter() - start

    stat = static_machine.stats
    dyn = dynamic_machine.stats
    stats_fingerprint = (
        workload.name,
        stat.cycles, stat.instructions,
        dyn.cycles, dyn.instructions, dyn.dc_cycles,
        dyn.dispatch_cycles, dyn.dispatches,
        sorted(dyn.scope_cycles.items()),
        sorted(dyn.scope_entries.items()),
        static_result, dynamic_result,
    )
    if static_input.checksum is not None:
        results_fingerprint = (
            workload.name,
            static_input.checksum(static_memory, static_machine),
            dynamic_input.checksum(dynamic_memory, dynamic_machine),
        )
    else:
        results_fingerprint = (workload.name, static_result,
                               dynamic_result)
    cycles = stat.cycles + dyn.cycles + dyn.dc_cycles
    return seconds, stats_fingerprint, results_fingerprint, cycles


def _geomean(values: list[float]) -> float:
    if not values:
        return 0.0
    return math.exp(sum(math.log(max(v, 1e-12)) for v in values)
                    / len(values))


def run_bench(workloads=ALL_WORKLOADS,
              config: OptConfig = ALL_ON,
              repeat: int = 3) -> dict:
    """Benchmark every column over ``workloads``; return the report."""
    columns = [name for name, _, _ in BENCH_COLUMNS]
    per_workload: dict[str, dict] = {}
    totals = {name: 0.0 for name in columns}
    stats_hashers = {name: hashlib.sha256() for name in COUNTED_COLUMNS}
    results_hashers = {name: hashlib.sha256() for name in columns}
    total_cycles = {name: 0.0 for name in COUNTED_COLUMNS}
    speedups: dict[str, list[float]] = {c: [] for c in SPEEDUP_COLUMNS}

    for workload in workloads:
        module = compile_source(workload.source)
        static_module = compile_static(module)
        compiled = compile_annotated(module, config)
        entry: dict[str, float] = {}
        for name, backend, mode in BENCH_COLUMNS:
            best = stats_fp = results_fp = cycles = None
            for _ in range(max(1, repeat)):
                seconds, stats_fp, results_fp, cycles = _execute(
                    workload, static_module, compiled, backend, mode
                )
                best = seconds if best is None else min(best, seconds)
            if name in stats_hashers:
                stats_hashers[name].update(
                    repr(stats_fp).encode("utf-8"))
                total_cycles[name] += cycles
            results_hashers[name].update(repr(results_fp).encode("utf-8"))
            totals[name] += best
            entry[f"{name}_seconds"] = round(best, 6)
        for name in SPEEDUP_COLUMNS:
            speedup = (entry["reference_seconds"]
                       / max(entry[f"{name}_seconds"], 1e-12))
            entry[f"{name}_speedup"] = round(speedup, 3)
            speedups[name].append(speedup)
        per_workload[workload.name] = entry

    stats_checksums = {c: stats_hashers[c].hexdigest()
                       for c in COUNTED_COLUMNS}
    results_checksums = {c: results_hashers[c].hexdigest()
                         for c in columns}
    backends: dict[str, dict] = {}
    for name in columns:
        info: dict[str, object] = {
            "seconds": round(totals[name], 6),
            "results_checksum": results_checksums[name],
        }
        if name in COUNTED_COLUMNS:
            info["cycles"] = total_cycles[name]
            info["stats_checksum"] = stats_checksums[name]
        backends[name] = info

    report = {
        "schema": 2,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "repeat": repeat,
        "columns": columns,
        "workloads": per_workload,
        "backends": backends,
        "geomean": {
            name: round(_geomean(speedups[name]), 3)
            for name in SPEEDUP_COLUMNS
        },
        "checksums_match":
            len(set(stats_checksums.values())) == 1,
        "results_match":
            len(set(results_checksums.values())) == 1,
    }
    return report


def write_bench(report: dict, path: str = DEFAULT_BENCH_PATH) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")


def load_bench(path: str = DEFAULT_BENCH_PATH) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def compare_reports(committed: dict, fresh: dict) -> tuple[list[str], bool]:
    """Diff a committed bench report against a freshly measured one.

    Returns ``(lines, ok)``.  ``ok`` goes False only on *semantic*
    divergence — schema mismatch, differing workload sets, internal
    checksum failures in the fresh run, or counted-stats / results
    checksums that disagree between the two reports (statistics are
    machine-independent, so any drift means the simulation changed).
    Wall-clock and speedup drift is listed but never fails.
    """
    lines: list[str] = []
    ok = True

    if committed.get("schema") != fresh.get("schema"):
        lines.append(
            f"schema: committed {committed.get('schema')!r} != "
            f"fresh {fresh.get('schema')!r}"
        )
        return lines, False

    if not fresh.get("checksums_match", False):
        lines.append("fresh run: counted-stats checksums diverge "
                     "across backends")
        ok = False
    if not fresh.get("results_match", False):
        lines.append("fresh run: program results diverge across backends")
        ok = False

    committed_wl = set(committed.get("workloads", {}))
    fresh_wl = set(fresh.get("workloads", {}))
    if committed_wl != fresh_wl:
        only_committed = sorted(committed_wl - fresh_wl)
        only_fresh = sorted(fresh_wl - committed_wl)
        if only_committed:
            lines.append("workloads only in committed report: "
                         + ", ".join(only_committed))
        if only_fresh:
            lines.append("workloads only in fresh report: "
                         + ", ".join(only_fresh))
        ok = False

    for column in COUNTED_COLUMNS:
        old = committed.get("backends", {}).get(column, {})
        new = fresh.get("backends", {}).get(column, {})
        for key in ("stats_checksum", "results_checksum"):
            if old.get(key) != new.get(key):
                lines.append(
                    f"{column}: {key} changed "
                    f"({str(old.get(key))[:12]}… -> "
                    f"{str(new.get(key))[:12]}…)"
                )
                ok = False

    # Informational: timing drift (machine-dependent, never a failure).
    for column in SPEEDUP_COLUMNS:
        old = committed.get("geomean", {}).get(column)
        new = fresh.get("geomean", {}).get(column)
        if old is not None and new is not None and old != new:
            lines.append(
                f"{column}: geomean speedup {old} -> {new} "
                "(wall-clock drift, informational)"
            )

    if not lines:
        lines.append("reports agree")
    return lines, ok
