"""Wall-clock benchmark of the reference vs. threaded backends.

``python -m repro.evalharness bench`` runs every workload's static and
dynamic executions under both backends, sharing one compiled program per
workload across backends so only *execution* time is compared, and writes
``BENCH_interp.json`` with per-workload and aggregate wall-clock seconds,
the speedup factor, and a SHA-256 checksum over each backend's full
execution statistics.  A checksum mismatch means the backends diverged —
the CLI (and CI) treat that as a hard failure.

Note this benchmarks the *interpreter itself* (host-Python seconds spent
simulating the abstract machine), not the simulated cycle counts the
tables report — those are identical across backends by construction.
"""

from __future__ import annotations

import hashlib
import json
import platform
import sys
import time

from repro.config import ALL_ON, OptConfig
from repro.dyc import compile_annotated, compile_static
from repro.evalharness.runner import _machine_kwargs
from repro.frontend import compile_source
from repro.ir import Memory
from repro.machine import ALPHA_21164, BACKENDS, Machine
from repro.runtime.overhead import DEFAULT_OVERHEAD
from repro.workloads import ALL_WORKLOADS

DEFAULT_BENCH_PATH = "BENCH_interp.json"


def _execute(workload, static_module, compiled, backend: str):
    """One timed static + dynamic execution; returns (seconds, stats)."""
    tracked = frozenset(workload.region_functions)
    kwargs = _machine_kwargs(workload, ALPHA_21164, backend)

    static_memory = Memory()
    static_input = workload.setup(static_memory)
    static_machine = Machine(static_module, memory=static_memory,
                             tracked=tracked, **kwargs)
    dynamic_memory = Memory()
    dynamic_input = workload.setup(dynamic_memory)
    dynamic_machine, _runtime = compiled.make_machine(
        memory=dynamic_memory, tracked=tracked,
        overhead=DEFAULT_OVERHEAD, **kwargs,
    )

    start = time.perf_counter()
    static_result = static_machine.run(workload.entry,
                                       *static_input.args)
    dynamic_result = dynamic_machine.run(workload.entry,
                                         *dynamic_input.args)
    seconds = time.perf_counter() - start

    stat = static_machine.stats
    dyn = dynamic_machine.stats
    fingerprint = (
        workload.name,
        stat.cycles, stat.instructions,
        dyn.cycles, dyn.instructions, dyn.dc_cycles,
        dyn.dispatch_cycles, dyn.dispatches,
        sorted(dyn.scope_cycles.items()),
        sorted(dyn.scope_entries.items()),
        static_result, dynamic_result,
    )
    cycles = stat.cycles + dyn.cycles + dyn.dc_cycles
    return seconds, fingerprint, cycles


def run_bench(workloads=ALL_WORKLOADS,
              config: OptConfig = ALL_ON,
              repeat: int = 3) -> dict:
    """Benchmark every backend over ``workloads``; return the report."""
    per_workload: dict[str, dict] = {}
    totals = {backend: 0.0 for backend in BACKENDS}
    hashers = {backend: hashlib.sha256() for backend in BACKENDS}
    total_cycles = {backend: 0.0 for backend in BACKENDS}

    for workload in workloads:
        module = compile_source(workload.source)
        static_module = compile_static(module)
        compiled = compile_annotated(module, config)
        entry: dict[str, float] = {}
        for backend in BACKENDS:
            best = None
            for _ in range(max(1, repeat)):
                seconds, fingerprint, cycles = _execute(
                    workload, static_module, compiled, backend
                )
                best = seconds if best is None else min(best, seconds)
            hashers[backend].update(repr(fingerprint).encode("utf-8"))
            total_cycles[backend] += cycles
            totals[backend] += best
            entry[f"{backend}_seconds"] = round(best, 6)
        entry["speedup"] = round(
            entry["reference_seconds"] / max(entry["threaded_seconds"],
                                             1e-12), 3)
        per_workload[workload.name] = entry

    checksums = {b: hashers[b].hexdigest() for b in BACKENDS}
    report = {
        "schema": 1,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "repeat": repeat,
        "workloads": per_workload,
        "backends": {
            backend: {
                "seconds": round(totals[backend], 6),
                "cycles": total_cycles[backend],
                "stats_checksum": checksums[backend],
            }
            for backend in BACKENDS
        },
        "speedup": round(
            totals["reference"] / max(totals["threaded"], 1e-12), 3),
        "checksums_match": len(set(checksums.values())) == 1,
    }
    return report


def write_bench(report: dict, path: str = DEFAULT_BENCH_PATH) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
