"""Content-hash memoization of (workload, config, cost model) runs.

Every quantity in a :class:`~repro.evalharness.runner.RunResult` is a
deterministic function of the workload program text, its prepared inputs,
the optimization configuration, and the cost/overhead models — the
execution *backend* explicitly is not part of the key, because every
backend produces byte-identical statistics (enforced by
``tests/test_threaded_backend.py`` and
``tests/test_pycodegen_backend.py``; the runner bypasses the memoizer
entirely for pycodegen in fast mode, whose statistics are not counted).
The memoizer therefore keys cached
results on a SHA-256 of exactly those inputs, so re-running tables (or the
full ``all`` sweep) only recomputes runs whose inputs actually changed.

Cache entries are one pickle file per key, written atomically
(temp file + ``os.replace``) so concurrent ``--jobs`` workers can share a
cache directory without locking: the worst case is two workers computing
the same run and one ``replace`` winning, which is harmless.

Deterministic specialization failures (``SpecializationError``, e.g. mipsi
without static loads exceeding the context budget) are memoized too — as a
small error marker rather than a result — so Table 5's fallback logic does
not re-pay the failed specialization on a warm cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile

from repro.config import OptConfig
from repro.errors import SpecializationBudgetError, SpecializationError
from repro.faults import resolve_degrade, resolve_fault_spec
from repro.ir import Memory
from repro.machine.costs import CostModel
from repro.machine.pycodegen import resolve_source_limit
from repro.machine.threaded import resolve_fusion_threshold
from repro.runtime import persist
from repro.runtime.overhead import OverheadModel
from repro.workloads import WORKLOADS_BY_NAME
from repro.workloads.base import Workload

#: Bump when the RunResult layout or the fingerprint recipe changes;
#: stale entries from older schemas simply never match.  Schema 6 keys
#: the serve tier's resilience knobs (circuit-breaker threshold and
#: cooldown, supervised worker count) into the environment fingerprint.
_SCHEMA = 6

#: Default cache directory (relative to the current working directory)
#: when none is given explicitly or via ``REPRO_MEMO_DIR``.
DEFAULT_MEMO_DIR = ".repro_memo"


def resolve_memo_dir(directory: str | None) -> str:
    """Resolve a memo directory choice (explicit > env > default)."""
    if directory is None:
        directory = os.environ.get("REPRO_MEMO_DIR") or DEFAULT_MEMO_DIR
    return directory


def _fingerprint_inputs(workload: Workload) -> str:
    """Deterministic description of the workload's prepared inputs.

    Runs the workload's ``setup`` on a fresh memory and captures both the
    entry arguments and the full memory image.  ``repr`` round-trips ints
    and floats exactly, so this is a byte-level fingerprint.
    """
    memory = Memory()
    inp = workload.setup(memory)
    has_checksum = inp.checksum is not None
    return repr((tuple(inp.args), has_checksum, memory.words()))


def backend_env_fingerprint() -> tuple:
    """Resolved values of backend-affecting environment knobs.

    These knobs change *how* a run executes — when the threaded tier
    quickens (``REPRO_FUSION_THRESHOLD``), when the codegen tier refuses
    an oversize source and walks the backend ladder
    (``REPRO_PYCODEGEN_SOURCE_LIMIT``, which bumps
    ``degraded_compilations``), and when the supervised pool abandons a
    round (``REPRO_TASK_TIMEOUT``, which decides whether a hung worker's
    task is retried or reported).  None of them is visible in
    ``OptConfig``, so without feeding the *resolved* values into the key
    a warm hit could serve a result computed under a different
    configuration.  The timeout is read through
    :func:`repro.evalharness.parallel.resolve_task_timeout` lazily to
    keep this module import-light.
    """
    from repro.evalharness.parallel import resolve_task_timeout
    from repro.serve.knobs import (
        resolve_breaker_cooldown,
        resolve_breaker_threshold,
        resolve_serve_procs,
    )
    return (
        resolve_fusion_threshold(),
        resolve_source_limit(),
        resolve_task_timeout(),
        # Serve-tier resilience knobs.  They do not change run *bytes*,
        # but results computed and persisted by a supervised fleet are
        # replayed across worker recycles; keying the knobs makes a
        # fleet reconfiguration (different breaker policy or worker
        # count) start from a fresh key space instead of mixing
        # artifacts produced under different supervision regimes.
        resolve_breaker_threshold(),
        resolve_breaker_cooldown(),
        resolve_serve_procs(),
    )


def memo_key(workload: Workload,
             config: OptConfig,
             cost_model: CostModel,
             overhead: OverheadModel,
             verify: bool = True) -> str:
    """SHA-256 key over everything that determines a run's statistics."""
    hasher = hashlib.sha256()

    def feed(part: object) -> None:
        hasher.update(repr(part).encode("utf-8"))
        hasher.update(b"\x00")

    feed(_SCHEMA)
    feed(workload.name)
    feed(workload.source)
    feed(workload.entry)
    feed(tuple(workload.region_functions))
    feed(workload.icache_capacity_bytes)
    feed(_fingerprint_inputs(workload))
    feed(sorted(dataclasses.asdict(config).items()))
    # Fault-injection and degradation settings change run statistics but
    # partly live in environment variables (REPRO_FAULTS/REPRO_DEGRADE),
    # which ``asdict(config)`` cannot see: feed the *resolved* values so a
    # faulted run can never serve a clean run from the cache (or vice
    # versa).
    feed(("resolved_faults", resolve_fault_spec(config)))
    feed(("resolved_degrade", resolve_degrade(config)))
    # Backend-affecting environment knobs (same rationale: they change
    # run behavior but are invisible to ``asdict(config)``).
    feed(("resolved_env", backend_env_fingerprint()))
    # Persistent-store state: schema version and whether a store is
    # active.  Artifact records are themselves keyed on this memo key
    # plus the persist schema, so a snapshot from an older persist
    # layout (or a run that flipped persistence on/off) can never serve
    # a stale memoized result.
    feed(("persist", (persist.PERSIST_SCHEMA,
                      persist.active_store() is not None)))
    feed(sorted(dataclasses.asdict(cost_model).items()))
    feed(sorted(dataclasses.asdict(overhead).items()))
    feed(verify)
    return hasher.hexdigest()


class Memoizer:
    """A directory of pickled run results keyed by content hash."""

    def __init__(self, directory: str | None = None):
        self.directory = resolve_memo_dir(directory)

    # -- key construction ------------------------------------------------

    key_for = staticmethod(memo_key)

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.pkl")

    # -- load ------------------------------------------------------------

    def get(self, key: str):
        """Return the cached RunResult for ``key``, raise a cached
        :class:`SpecializationError`, or return ``None`` on a miss."""
        try:
            with open(self._path(key), "rb") as fh:
                payload = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, ValueError,
                AttributeError, ImportError):
            return None
        if not isinstance(payload, dict) or payload.get("schema") != _SCHEMA:
            return None
        if "error" in payload:
            cls = (SpecializationBudgetError
                   if payload.get("error_kind") == "budget"
                   else SpecializationError)
            fields = payload.get("error_fields") or {}
            raise cls(payload["error"], **fields)
        fields = payload.get("result")
        if not isinstance(fields, dict):
            return None
        workload = WORKLOADS_BY_NAME.get(fields.get("workload"))
        if workload is None:
            return None
        from repro.evalharness.runner import RunResult
        try:
            return RunResult(**{**fields, "workload": workload})
        except TypeError:
            return None

    # -- store -----------------------------------------------------------

    def _write(self, key: str, payload: dict) -> None:
        os.makedirs(self.directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def put(self, key: str, result) -> None:
        """Cache a RunResult (the Workload is stored by name)."""
        fields = {
            f.name: getattr(result, f.name)
            for f in dataclasses.fields(result)
        }
        fields["workload"] = result.workload.name
        self._write(key, {"schema": _SCHEMA, "result": fields})

    def put_error(self, key: str, error: SpecializationError) -> None:
        """Cache a deterministic specialization failure.

        The raw message and the structured fields are stored separately
        (``str(error)`` already embeds the fields) so :meth:`get` can
        reconstruct an identical exception, subclass included.
        """
        self._write(key, {
            "schema": _SCHEMA,
            "error": getattr(error, "message", str(error)),
            "error_fields": error.fields(),
            "error_kind": (
                "budget" if isinstance(error, SpecializationBudgetError)
                else "spec"
            ),
        })
