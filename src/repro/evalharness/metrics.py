"""The paper's performance metrics (§4.2).

* **Asymptotic speedup** — ``s / d``: statically compiled execution
  cycles over dynamically compiled execution cycles, *excluding* dynamic
  compilation overhead (dispatch overhead, which recurs per execution,
  is part of ``d``).
* **Break-even point** — ``o / (s − d)``: the number of region
  executions at which static and dynamic versions (including dynamic
  compilation overhead ``o``) cost the same.
* **DC overhead per instruction** — ``o`` divided by the number of
  dynamically generated instructions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class RegionMetrics:
    """Per-region measurements, per invocation where applicable."""

    name: str
    region_label: str
    static_cycles_per_invocation: float
    dynamic_cycles_per_invocation: float
    dc_overhead_cycles: float
    instructions_generated: int
    invocations: int
    breakeven_unit: str
    units_per_invocation: float

    @property
    def asymptotic_speedup(self) -> float:
        if self.dynamic_cycles_per_invocation == 0:
            return math.inf
        return (self.static_cycles_per_invocation
                / self.dynamic_cycles_per_invocation)

    @property
    def breakeven_invocations(self) -> float:
        return breakeven_point(
            self.static_cycles_per_invocation,
            self.dynamic_cycles_per_invocation,
            self.dc_overhead_cycles,
        )

    @property
    def breakeven_units(self) -> float:
        return self.breakeven_invocations * self.units_per_invocation

    @property
    def overhead_per_instruction(self) -> float:
        if not self.instructions_generated:
            return 0.0
        return self.dc_overhead_cycles / self.instructions_generated


def breakeven_point(static_cycles: float, dynamic_cycles: float,
                    overhead_cycles: float) -> float:
    """Executions needed before dynamic compilation pays for itself.

    Returns ``inf`` when the dynamic version is not faster (it never
    breaks even).
    """
    gain = static_cycles - dynamic_cycles
    if gain <= 0:
        return math.inf
    return overhead_cycles / gain
