"""Process-pool fan-out of workload runs (``--jobs N``).

Each run of one (workload, config) pair is an independent, deterministic
computation, so the harness can farm runs out to worker processes.  The
workers are plain top-level functions taking picklable task tuples —
workloads travel by *name* (rehydrated from ``WORKLOADS_BY_NAME`` in the
worker) and results travel back with the workload field replaced by its
name, because :class:`~repro.workloads.base.Workload` carries setup and
checksum callables that may not pickle.

``jobs <= 1`` runs every task serially in-process through the exact same
worker functions, so the two paths cannot drift apart behaviourally.
Workers share the memo cache directory (if any); its atomic writes make
that safe without locking.

The pool is *supervised*: a worker that raises, dies (``worker.crash``),
or stops making progress (``worker.hang`` + ``REPRO_TASK_TIMEOUT``) does
not take the sweep down with it.  Failed tasks are retried once in a
fresh pool round, then once more inline in the parent process; tasks
that still fail are collected as :class:`TaskFailure` records and
reported together in a :class:`~repro.errors.HarnessError` *after* the
rest of the sweep has completed (and its memo entries persisted).
"""

from __future__ import annotations

import dataclasses
import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool

from repro.config import ALL_ON, OptConfig
from repro.errors import HarnessError, SpecializationError, WorkerFault
from repro.evalharness.memo import Memoizer
from repro.evalharness.runner import RunResult, run_workload
from repro.faults import FaultRegistry, resolve_fault_spec
from repro.workloads import WORKLOADS_BY_NAME


def resolve_jobs(jobs: int | None) -> int:
    """Resolve a worker-count choice.

    ``None`` falls back to the ``REPRO_JOBS`` environment variable, then
    to 1 (serial).  ``0`` means "one worker per CPU".
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS")
        jobs = int(env) if env else 1
    if jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def resolve_task_timeout() -> float:
    """Per-round no-progress timeout in seconds (0 disables it).

    Read from ``REPRO_TASK_TIMEOUT``.  The timeout is deliberately
    *no-progress* rather than per-task: any completion resets the clock,
    so a large sweep with one slow task is not misdiagnosed as hung.
    """
    env = os.environ.get("REPRO_TASK_TIMEOUT")
    if not env:
        return 0.0
    try:
        value = float(env)
    except ValueError:
        return 0.0
    return max(0.0, value)


@dataclasses.dataclass
class TaskFailure:
    """One task that failed every rung of the retry ladder."""
    index: int
    error_type: str
    error: str
    attempts: int


# ----------------------------------------------------------------------
# Result transport
# ----------------------------------------------------------------------

def _pack(result: RunResult) -> dict:
    fields = {
        f.name: getattr(result, f.name)
        for f in dataclasses.fields(result)
    }
    fields["workload"] = result.workload.name
    return fields


def _unpack(fields: dict) -> RunResult:
    workload = WORKLOADS_BY_NAME[fields["workload"]]
    return RunResult(**{**fields, "workload": workload})


# ----------------------------------------------------------------------
# Worker functions (must be top-level for pickling)
# ----------------------------------------------------------------------

def _worker_faults(attempt: int) -> None:
    """Fire injected worker faults, on the first pool attempt only.

    ``attempt`` is 0 for the initial pool round, positive for retries,
    and negative for the serial path (where a crash or hang would take
    down the harness itself rather than a supervised worker — worker
    faults only make sense under the pool).  Firing only at attempt 0
    keeps the retry ladder deterministic: the re-dispatched task runs
    clean.
    """
    if attempt != 0:
        return
    spec = resolve_fault_spec(None)
    if not spec:
        return
    registry = FaultRegistry.from_spec(spec)
    if registry.enabled("worker.hang") \
            and registry.should_fire("worker.hang"):
        time.sleep(registry.param("worker.hang", "secs", 30.0))
    if registry.enabled("worker.crash") \
            and registry.should_fire("worker.crash"):
        os._exit(86)
    if registry.enabled("worker.error") \
            and registry.should_fire("worker.error"):
        raise WorkerFault("injected worker fault (worker.error)")


def _run_config_task(task) -> dict:
    """Worker: run one workload under one configuration."""
    name, config, backend, memo_dir, *rest = task
    _worker_faults(rest[0] if rest else -1)
    workload = WORKLOADS_BY_NAME[name]
    memo = Memoizer(memo_dir) if memo_dir is not None else None
    return _pack(run_workload(workload, config, backend=backend,
                              memo=memo))


def _run_ablation_task(task) -> tuple[dict, bool]:
    """Worker: run one single-ablation configuration for Table 5.

    Mirrors the fallback in :func:`repro.evalharness.tables.build_table5`:
    if the ablation alone makes specialization diverge, additionally
    disable complete loop unrolling and star the result.
    """
    name, ablation, backend, memo_dir, *rest = task
    _worker_faults(rest[0] if rest else -1)
    workload = WORKLOADS_BY_NAME[name]
    memo = Memoizer(memo_dir) if memo_dir is not None else None
    try:
        result = run_workload(workload, ALL_ON.without(ablation),
                              backend=backend, memo=memo)
        starred = False
    except SpecializationError:
        result = run_workload(
            workload, ALL_ON.without(ablation, "complete_loop_unrolling"),
            backend=backend, memo=memo,
        )
        starred = True
    return _pack(result), starred


# ----------------------------------------------------------------------
# Dispatcher
# ----------------------------------------------------------------------

def _pool_round(worker, payloads, pending, jobs: int, attempt: int,
                timeout: float, finish, failures: dict) -> list[int]:
    """Run one supervised pool round over ``pending`` task indices.

    Returns the indices that must be retried.  A broken pool (a worker
    hard-crashed) or a no-progress timeout abandons the round: completed
    futures are harvested, everything else is queued for retry, and the
    pool is discarded without waiting on possibly-hung workers.
    """
    workers = min(jobs, len(pending))
    pool = ProcessPoolExecutor(max_workers=workers)
    futures = {
        pool.submit(worker, (*payloads[index], attempt)): index
        for index in pending
    }
    remaining = set(futures)
    retry: list[int] = []
    abandoned = False

    def record(index: int, error_type: str, message: str) -> None:
        failures[index] = TaskFailure(index, error_type, message,
                                      attempt + 1)
        retry.append(index)

    try:
        while remaining:
            done, _ = wait(remaining, timeout=timeout or None,
                           return_when=FIRST_COMPLETED)
            if not done:
                abandoned = True
                for future in remaining:
                    record(futures[future], "TimeoutError",
                           f"worker made no progress within {timeout:g}s")
                break
            for future in done:
                remaining.discard(future)
                index = futures[future]
                try:
                    finish(index, future.result())
                except BrokenProcessPool as err:
                    abandoned = True
                    record(index, type(err).__name__,
                           str(err) or "worker process died")
                except Exception as err:  # noqa: BLE001
                    record(index, type(err).__name__, str(err))
            if abandoned:
                # The pool is unusable; harvest whatever already
                # finished and queue the rest for the next round.
                for future in remaining:
                    index = futures[future]
                    try:
                        if future.done():
                            finish(index, future.result())
                            continue
                    except Exception as err:  # noqa: BLE001
                        record(index, type(err).__name__,
                               str(err) or "worker process died")
                        continue
                    record(index, "BrokenProcessPool",
                           "pool died before the task ran")
                break
    finally:
        # After a hang/crash do not wait on the corpse; cancel anything
        # not yet started.  Injected hangs are bounded sleeps, so
        # orphaned workers drain themselves.
        pool.shutdown(wait=not abandoned, cancel_futures=True)
    return retry


def _map_tasks(worker, payloads, jobs: int | None, on_done=None) -> list:
    """Run ``worker`` over ``payloads``, preserving input order.

    Supervision ladder per task: pool attempt 0 (worker faults armed) →
    pool attempt 1 in a fresh pool → inline attempt 2 in the parent.
    Raises :class:`HarnessError` listing every task that exhausted the
    ladder — only after all other tasks have completed.
    """
    jobs = resolve_jobs(jobs)
    results: list = [None] * len(payloads)
    failures: dict[int, TaskFailure] = {}

    def finish(index: int, value) -> None:
        results[index] = value
        failures.pop(index, None)
        if on_done is not None:
            on_done(index)

    if jobs <= 1 or len(payloads) <= 1:
        for index, payload in enumerate(payloads):
            try:
                finish(index, worker((*payload, -1)))
            except Exception as err:  # noqa: BLE001
                failures[index] = TaskFailure(index, type(err).__name__,
                                              str(err), 1)
    else:
        timeout = resolve_task_timeout()
        pending = list(range(len(payloads)))
        for attempt in range(2):
            if not pending:
                break
            pending = _pool_round(worker, payloads, pending, jobs,
                                  attempt, timeout, finish, failures)
        for index in pending:
            # Last rung: run inline, where nothing can crash the pool.
            try:
                finish(index, worker((*payloads[index], 2)))
            except Exception as err:  # noqa: BLE001
                prior = failures.get(index)
                attempts = (prior.attempts if prior else 2) + 1
                failures[index] = TaskFailure(index, type(err).__name__,
                                              str(err), attempts)
    if failures:
        raise HarnessError(sorted(failures.values(),
                                  key=lambda f: f.index))
    return results


def run_configs(tasks: list[tuple[str, OptConfig]],
                jobs: int | None = None,
                backend: str | None = None,
                memo: Memoizer | None = None,
                progress=None) -> list[RunResult]:
    """Run (workload name, config) tasks, possibly in parallel."""
    memo_dir = memo.directory if memo is not None else None
    payloads = [(name, config, backend, memo_dir)
                for name, config in tasks]
    on_done = None
    if progress is not None:
        on_done = lambda index: progress(*tasks[index])  # noqa: E731
    packed = _map_tasks(_run_config_task, payloads, jobs, on_done)
    return [_unpack(fields) for fields in packed]


def run_ablations(tasks: list[tuple[str, str]],
                  jobs: int | None = None,
                  backend: str | None = None,
                  memo: Memoizer | None = None,
                  progress=None) -> list[tuple[RunResult, bool]]:
    """Run (workload name, ablation) tasks for Table 5.

    Returns ``(result, starred)`` per task, aligned with the input.
    """
    memo_dir = memo.directory if memo is not None else None
    payloads = [(name, ablation, backend, memo_dir)
                for name, ablation in tasks]
    on_done = None
    if progress is not None:
        on_done = lambda index: progress(*tasks[index])  # noqa: E731
    packed = _map_tasks(_run_ablation_task, payloads, jobs, on_done)
    return [(_unpack(fields), starred) for fields, starred in packed]
