"""Process-pool fan-out of workload runs (``--jobs N``).

Each run of one (workload, config) pair is an independent, deterministic
computation, so the harness can farm runs out to worker processes.  The
workers are plain top-level functions taking picklable task tuples —
workloads travel by *name* (rehydrated from ``WORKLOADS_BY_NAME`` in the
worker) and results travel back with the workload field replaced by its
name, because :class:`~repro.workloads.base.Workload` carries setup and
checksum callables that may not pickle.

``jobs <= 1`` runs every task serially in-process through the exact same
worker functions, so the two paths cannot drift apart behaviourally.
Workers share the memo cache directory (if any); its atomic writes make
that safe without locking.
"""

from __future__ import annotations

import dataclasses
import os
from concurrent.futures import ProcessPoolExecutor, as_completed

from repro.config import ALL_ON, OptConfig
from repro.errors import SpecializationError
from repro.evalharness.memo import Memoizer
from repro.evalharness.runner import RunResult, run_workload
from repro.workloads import WORKLOADS_BY_NAME


def resolve_jobs(jobs: int | None) -> int:
    """Resolve a worker-count choice.

    ``None`` falls back to the ``REPRO_JOBS`` environment variable, then
    to 1 (serial).  ``0`` means "one worker per CPU".
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS")
        jobs = int(env) if env else 1
    if jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


# ----------------------------------------------------------------------
# Result transport
# ----------------------------------------------------------------------

def _pack(result: RunResult) -> dict:
    fields = {
        f.name: getattr(result, f.name)
        for f in dataclasses.fields(result)
    }
    fields["workload"] = result.workload.name
    return fields


def _unpack(fields: dict) -> RunResult:
    workload = WORKLOADS_BY_NAME[fields["workload"]]
    return RunResult(**{**fields, "workload": workload})


# ----------------------------------------------------------------------
# Worker functions (must be top-level for pickling)
# ----------------------------------------------------------------------

def _run_config_task(task) -> dict:
    """Worker: run one workload under one configuration."""
    name, config, backend, memo_dir = task
    workload = WORKLOADS_BY_NAME[name]
    memo = Memoizer(memo_dir) if memo_dir is not None else None
    return _pack(run_workload(workload, config, backend=backend,
                              memo=memo))


def _run_ablation_task(task) -> tuple[dict, bool]:
    """Worker: run one single-ablation configuration for Table 5.

    Mirrors the fallback in :func:`repro.evalharness.tables.build_table5`:
    if the ablation alone makes specialization diverge, additionally
    disable complete loop unrolling and star the result.
    """
    name, ablation, backend, memo_dir = task
    workload = WORKLOADS_BY_NAME[name]
    memo = Memoizer(memo_dir) if memo_dir is not None else None
    try:
        result = run_workload(workload, ALL_ON.without(ablation),
                              backend=backend, memo=memo)
        starred = False
    except SpecializationError:
        result = run_workload(
            workload, ALL_ON.without(ablation, "complete_loop_unrolling"),
            backend=backend, memo=memo,
        )
        starred = True
    return _pack(result), starred


# ----------------------------------------------------------------------
# Dispatcher
# ----------------------------------------------------------------------

def _map_tasks(worker, payloads, jobs: int | None, on_done=None) -> list:
    """Run ``worker`` over ``payloads``, preserving input order."""
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(payloads) <= 1:
        out = []
        for index, payload in enumerate(payloads):
            out.append(worker(payload))
            if on_done is not None:
                on_done(index)
        return out
    results: list = [None] * len(payloads)
    workers = min(jobs, len(payloads))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {
            pool.submit(worker, payload): index
            for index, payload in enumerate(payloads)
        }
        for future in as_completed(futures):
            index = futures[future]
            results[index] = future.result()
            if on_done is not None:
                on_done(index)
    return results


def run_configs(tasks: list[tuple[str, OptConfig]],
                jobs: int | None = None,
                backend: str | None = None,
                memo: Memoizer | None = None,
                progress=None) -> list[RunResult]:
    """Run (workload name, config) tasks, possibly in parallel."""
    memo_dir = memo.directory if memo is not None else None
    payloads = [(name, config, backend, memo_dir)
                for name, config in tasks]
    on_done = None
    if progress is not None:
        on_done = lambda index: progress(*tasks[index])  # noqa: E731
    packed = _map_tasks(_run_config_task, payloads, jobs, on_done)
    return [_unpack(fields) for fields in packed]


def run_ablations(tasks: list[tuple[str, str]],
                  jobs: int | None = None,
                  backend: str | None = None,
                  memo: Memoizer | None = None,
                  progress=None) -> list[tuple[RunResult, bool]]:
    """Run (workload name, ablation) tasks for Table 5.

    Returns ``(result, starred)`` per task, aligned with the input.
    """
    memo_dir = memo.directory if memo is not None else None
    payloads = [(name, ablation, backend, memo_dir)
                for name, ablation in tasks]
    on_done = None
    if progress is not None:
        on_done = lambda index: progress(*tasks[index])  # noqa: E731
    packed = _map_tasks(_run_ablation_task, payloads, jobs, on_done)
    return [(_unpack(fields), starred) for fields, starred in packed]
