"""Run one workload under one optimization configuration.

Each run executes the workload twice on fresh memories — once statically
compiled (annotations ignored, §3.3) and once dynamically compiled — and
verifies the two produce identical output before reporting any numbers.
Per-region timings use the machine's tracked-scope accounting (inclusive
cycles in the dynamically compiled functions of Table 1), divided by the
invocation count, mirroring the paper's measurement methodology (§3.3).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.config import ALL_ON, OptConfig
from repro.dyc import compile_annotated, compile_static
from repro.errors import ReproError, SpecializationError
from repro.evalharness.metrics import RegionMetrics
from repro.frontend import compile_source
from repro.ir import Memory, Module
from repro.machine import ALPHA_21164, ICacheModel, Machine
from repro.machine.costs import CostModel
from repro.runtime import persist
from repro.runtime.overhead import DEFAULT_OVERHEAD, OverheadModel
from repro.runtime.stats import RegionStats
from repro.workloads.base import Workload


class VerificationError(ReproError):
    """Static and dynamic runs produced different output."""


@dataclass
class RunResult:
    """Everything measured about one (workload, config) pair."""

    workload: Workload
    config: OptConfig
    # Whole-program cycle totals.
    static_total_cycles: float
    dynamic_total_cycles: float     # execution only (incl. dispatch)
    dc_cycles: float                # dynamic-compilation overhead
    # Inclusive cycles in the dynamically compiled functions.
    static_region_cycles: dict[str, float]
    dynamic_region_cycles: dict[str, float]
    region_entries: dict[str, int]
    # Per-region runtime statistics (keyed by region id).
    region_stats: dict[int, RegionStats]
    #: function name -> region ids
    region_functions: dict[str, list[int]]
    outputs_match: bool = True
    return_values: tuple = ()
    #: Backend-ladder degradations over both machines (static+dynamic):
    #: threaded translations that fell back to the reference
    #: interpreter, and codegen compilations that fell back to the
    #: threaded backend or the reference interpreter.
    degraded_translations: int = 0
    degraded_compilations: int = 0

    # ------------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True when any region walked down the degradation ladder
        (failed specializations, fallback executions, quarantines,
        budget truncations, or cache corruption recoveries) or any
        backend walked down the backend ladder (refused translations
        or compilations)."""
        if self.degraded_translations or self.degraded_compilations:
            return True
        return any(stats.degraded for stats in self.region_stats.values())

    @property
    def whole_program_speedup(self) -> float:
        """Including dynamic compilation overhead (Table 4)."""
        denominator = self.dynamic_total_cycles + self.dc_cycles
        if denominator == 0:
            return float("inf")
        return self.static_total_cycles / denominator

    @property
    def region_fraction_of_static(self) -> float:
        """Percent of static execution spent in dynamic regions
        (Table 4's "% of total static execution")."""
        if self.static_total_cycles == 0:
            return 0.0
        return (sum(self.static_region_cycles.values())
                / self.static_total_cycles)

    def region_metrics(self) -> list[RegionMetrics]:
        """Per-dynamic-region metrics for Table 3."""
        out: list[RegionMetrics] = []
        for name in self.workload.region_functions:
            invocations = max(1, self.region_entries.get(name, 0))
            static_cycles = self.static_region_cycles.get(name, 0.0)
            dynamic_cycles = self.dynamic_region_cycles.get(name, 0.0)
            region_ids = self.region_functions.get(name, [])
            dc = sum(
                self.region_stats[r].dc_cycles for r in region_ids
                if r in self.region_stats
            )
            generated = sum(
                self.region_stats[r].instructions_generated
                for r in region_ids if r in self.region_stats
            )
            label = (self.workload.name if
                     len(self.workload.region_functions) == 1
                     else f"{self.workload.name}: {name}")
            out.append(RegionMetrics(
                name=self.workload.name,
                region_label=label,
                static_cycles_per_invocation=static_cycles / invocations,
                dynamic_cycles_per_invocation=(
                    dynamic_cycles / invocations
                ),
                dc_overhead_cycles=dc,
                instructions_generated=generated,
                invocations=invocations,
                breakeven_unit=self.workload.breakeven_unit,
                units_per_invocation=self.workload.units_per_invocation,
            ))
        return out

    def stats_for_function(self, name: str) -> list[RegionStats]:
        return [
            self.region_stats[r]
            for r in self.region_functions.get(name, [])
            if r in self.region_stats
        ]


def _machine_kwargs(workload: Workload, cost_model: CostModel,
                    backend: str, codegen_mode: str = "counted"):
    icache = None
    if workload.icache_capacity_bytes is not None:
        icache = ICacheModel(
            capacity_bytes=workload.icache_capacity_bytes
        )
    return dict(cost_model=cost_model, icache=icache, backend=backend,
                codegen_mode=codegen_mode)


def resolve_backend(backend: str | None) -> str:
    """Resolve an execution backend choice.

    ``None`` falls back to the ``REPRO_BACKEND`` environment variable,
    then to the fast threaded backend (all backends produce
    byte-identical stats — pycodegen in counted mode — so the harness
    defaults to a fast one).
    """
    if backend is None:
        backend = os.environ.get("REPRO_BACKEND") or "threaded"
    if backend not in ("reference", "threaded", "pycodegen"):
        raise ValueError(f"unknown backend {backend!r}")
    return backend


def resolve_codegen_mode(mode: str | None) -> str:
    """Resolve the pycodegen mode choice.

    ``None``/empty falls back to the ``REPRO_CODEGEN_MODE`` environment
    variable, then to ``counted`` (stats byte-identical to the
    reference interpreter; ``fast`` drops all cycle accounting).
    """
    if not mode:
        mode = os.environ.get("REPRO_CODEGEN_MODE") or "counted"
    if mode not in ("counted", "fast"):
        raise ValueError(f"unknown codegen mode {mode!r}")
    return mode


def run_workload(workload: Workload,
                 config: OptConfig = ALL_ON,
                 cost_model: CostModel = ALPHA_21164,
                 overhead: OverheadModel = DEFAULT_OVERHEAD,
                 module: Module | None = None,
                 verify: bool = True,
                 backend: str | None = None,
                 codegen_mode: str | None = None,
                 memo=None) -> RunResult:
    """Execute ``workload`` statically and dynamically; return metrics.

    With a :class:`~repro.evalharness.memo.Memoizer` in ``memo``, the run
    (or its deterministic :class:`SpecializationError`) is served from and
    stored to the content-hash cache.  The backend is deliberately not
    part of the cache key: all backends produce byte-identical stats —
    except pycodegen in fast mode, which drops cycle accounting, so
    fast-mode runs bypass the memo entirely.
    """
    backend = resolve_backend(backend)
    codegen_mode = resolve_codegen_mode(codegen_mode
                                        or config.codegen_mode)
    if backend == "pycodegen" and codegen_mode == "fast":
        # Fast-mode stats are not the shared byte-identical stats the
        # cache is keyed for; never serve or store them.
        memo = None
    if memo is not None and module is None:
        key = memo.key_for(workload, config, cost_model, overhead, verify)
        cached = memo.get(key)   # raises cached SpecializationError
        if cached is not None:
            return cached
        try:
            result = run_workload(
                workload, config, cost_model, overhead,
                verify=verify, backend=backend,
                codegen_mode=codegen_mode,
            )
        except SpecializationError as err:
            memo.put_error(key, err)
            raise
        memo.put(key, result)
        return result
    canonical_module = module is None
    if module is None:
        module = compile_source(workload.source)
    tracked = frozenset(workload.region_functions)

    # --- static baseline ---------------------------------------------
    static_module = compile_static(module)
    static_memory = Memory()
    static_input = workload.setup(static_memory)
    static_machine = Machine(
        static_module, memory=static_memory, tracked=tracked,
        **_machine_kwargs(workload, cost_model, backend, codegen_mode),
    )
    static_result = static_machine.run(workload.entry,
                                       *static_input.args)

    # --- dynamically compiled run --------------------------------------
    compiled = compile_annotated(module, config)
    dynamic_memory = Memory()
    dynamic_input = workload.setup(dynamic_memory)
    dynamic_machine, runtime = compiled.make_machine(
        memory=dynamic_memory, tracked=tracked, overhead=overhead,
        **_machine_kwargs(workload, cost_model, backend, codegen_mode),
    )
    persist_store = persist.active_store()
    if persist_store is not None and canonical_module \
            and persist.run_eligible(config):
        # Route entry/continuation specialization through the
        # cross-process store, keyed like the memo cache keys runs (the
        # import is lazy only to keep runner import-light).
        from repro.evalharness.memo import memo_key
        persist.bind_runtime(
            runtime, persist_store,
            memo_key(workload, config, cost_model, overhead, verify),
        )
    dynamic_result = dynamic_machine.run(workload.entry,
                                         *dynamic_input.args)

    # --- verification ---------------------------------------------------
    outputs_match = True
    if verify:
        if static_input.checksum is not None:
            lhs = static_input.checksum(static_memory, static_machine)
            rhs = dynamic_input.checksum(dynamic_memory, dynamic_machine)
            outputs_match = lhs == rhs
        else:
            outputs_match = static_result == dynamic_result
        if not outputs_match:
            raise VerificationError(
                f"{workload.name}: dynamic run diverged from static run "
                f"under config {config}"
            )

    # Region entries: prefer dispatch counts (exact), falling back to
    # scope-entry counts.
    region_entries: dict[str, int] = {}
    for name in workload.region_functions:
        entries = dynamic_machine.stats.scope_entries.get(name, 0)
        region_entries[name] = entries

    return RunResult(
        workload=workload,
        config=config,
        static_total_cycles=static_machine.stats.cycles,
        dynamic_total_cycles=dynamic_machine.stats.cycles,
        dc_cycles=dynamic_machine.stats.dc_cycles,
        static_region_cycles=dict(static_machine.stats.scope_cycles),
        dynamic_region_cycles=dict(dynamic_machine.stats.scope_cycles),
        region_entries=region_entries,
        region_stats=dict(runtime.stats.regions),
        region_functions=dict(compiled.region_functions),
        outputs_match=outputs_match,
        return_values=(static_result, dynamic_result),
        degraded_translations=(
            static_machine.stats.degraded_translations
            + dynamic_machine.stats.degraded_translations
        ),
        degraded_compilations=(
            static_machine.stats.degraded_compilations
            + dynamic_machine.stats.degraded_compilations
        ),
    )
