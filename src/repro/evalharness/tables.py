"""Builders and renderers for the paper's Tables 1–5."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.config import ALL_ON, OptConfig, TABLE5_ABLATIONS
from repro.dyc import compile_annotated
from repro.evalharness.parallel import run_ablations, run_configs
from repro.evalharness.runner import RunResult
from repro.frontend import compile_source
from repro.workloads import ALL_WORKLOADS, APPLICATIONS


@dataclass
class Table:
    """A rendered-ready table: title, headers, and rows of strings."""

    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)


def render_table(table: Table) -> str:
    """Plain-text rendering with aligned columns."""
    widths = [len(h) for h in table.headers]
    for row in table.rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells) -> str:
        return "  ".join(
            cell.ljust(widths[i]) for i, cell in enumerate(cells)
        ).rstrip()

    lines = [table.title, "=" * len(table.title), fmt(table.headers),
             fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in table.rows)
    return "\n".join(lines)


def _fmt_speedup(value: float) -> str:
    if math.isinf(value):
        return "inf"
    return f"{value:.2f}" if value < 10 else f"{value:.1f}"


def _fmt_breakeven(metrics) -> str:
    value = metrics.breakeven_units
    if math.isinf(value):
        return "never"
    value = max(1.0, value)
    return f"{value:.0f} {metrics.breakeven_unit}"


# ----------------------------------------------------------------------
# Table 1: application characteristics
# ----------------------------------------------------------------------

def build_table1(workloads=ALL_WORKLOADS) -> Table:
    table = Table(
        title="Table 1: Application Characteristics",
        headers=["Program", "Kind", "Description",
                 "Annotated Static Variables", "Values",
                 "Src Lines", "#Fns", "Region IR Instrs"],
    )
    for workload in workloads:
        module = compile_source(workload.source)
        compiled = compile_annotated(module, ALL_ON)
        instrs = 0
        for name in workload.region_functions:
            for region_id in compiled.region_functions.get(name, []):
                template = compiled.regions[region_id].template
                instrs += sum(
                    len(template.blocks[label])
                    for label in compiled.regions[region_id].blocks
                )
        table.rows.append([
            workload.name,
            workload.kind,
            workload.description,
            workload.static_vars,
            workload.static_values,
            str(workload.lines_of_source()),
            str(len(workload.region_functions)),
            str(instrs),
        ])
    return table


# ----------------------------------------------------------------------
# Table 2: optimizations used by each program
# ----------------------------------------------------------------------

#: (column header, RegionStats predicate) in the paper's column order.
TABLE2_COLUMNS = [
    ("Unroll", lambda s: s.unrolling or ""),
    ("DAE", lambda s: "x" if s.used_dae else ""),
    ("ZCP", lambda s: "x" if s.used_zcp else ""),
    ("StLoads", lambda s: "x" if s.used_static_loads else ""),
    ("Unchecked", lambda s: "x" if s.used_unchecked_dispatch else ""),
    ("StCalls", lambda s: "x" if s.used_static_calls else ""),
    ("SR", lambda s: "x" if s.used_sr else ""),
    ("Promote", lambda s: "x" if s.used_internal_promotions else ""),
    ("PolyDiv", lambda s: "x" if s.used_polyvariant_division else ""),
]


def _merge_stat_cell(stats, extractor) -> str:
    values = {extractor(s) for s in stats}
    values.discard("")
    if not values:
        return ""
    return sorted(values)[-1]


def build_table2(results: dict[str, RunResult] | None = None) -> Table:
    if results is None:
        results = run_all(ALL_ON)
    table = Table(
        title="Table 2: Optimizations Used by Each Program",
        headers=["Dynamic Region"] + [h for h, _ in TABLE2_COLUMNS],
    )
    for workload in ALL_WORKLOADS:
        result = results[workload.name]
        for name in workload.region_functions:
            stats = result.stats_for_function(name)
            label = (workload.name
                     if len(workload.region_functions) == 1
                     else f"{workload.name}: {name}")
            row = [label]
            for _, extractor in TABLE2_COLUMNS:
                row.append(_merge_stat_cell(stats, extractor))
            table.rows.append(row)
    return table


# ----------------------------------------------------------------------
# Table 3: dynamic-region performance, all optimizations on
# ----------------------------------------------------------------------

def build_table3(results: dict[str, RunResult] | None = None) -> Table:
    if results is None:
        results = run_all(ALL_ON)
    table = Table(
        title="Table 3: Dynamic Region Performance (All Optimizations)",
        headers=["Dynamic Region", "Asymptotic Speedup",
                 "Break-Even Point", "DC Overhead (cyc/instr)",
                 "Instructions Generated"],
    )
    for workload in ALL_WORKLOADS:
        result = results[workload.name]
        for metrics in result.region_metrics():
            table.rows.append([
                metrics.region_label,
                _fmt_speedup(metrics.asymptotic_speedup),
                _fmt_breakeven(metrics),
                f"{metrics.overhead_per_instruction:.0f}",
                str(metrics.instructions_generated),
            ])
    return table


# ----------------------------------------------------------------------
# Table 4: whole-program performance (applications)
# ----------------------------------------------------------------------

def build_table4(results: dict[str, RunResult] | None = None) -> Table:
    if results is None:
        results = run_all(ALL_ON, workloads=APPLICATIONS)
    table = Table(
        title="Table 4: Whole-Program Performance (All Optimizations)",
        headers=["Application", "Static Cycles", "Dynamic Cycles",
                 "Region Time (% of static)", "Whole-Program Speedup"],
    )
    for workload in APPLICATIONS:
        result = results[workload.name]
        table.rows.append([
            workload.name,
            f"{result.static_total_cycles:.0f}",
            f"{result.dynamic_total_cycles + result.dc_cycles:.0f}",
            f"{result.region_fraction_of_static * 100:.1f}",
            _fmt_speedup(result.whole_program_speedup),
        ])
    return table


# ----------------------------------------------------------------------
# Table 5: ablations
# ----------------------------------------------------------------------

#: Table 5 column header per ablated switch, in the paper's order.
TABLE5_HEADERS = {
    "complete_loop_unrolling": "-Unroll",
    "static_loads": "-StLoads",
    "unchecked_dispatching": "-Unchecked",
    "static_calls": "-StCalls",
    "zero_copy_propagation": "-ZCP",
    "dead_assignment_elimination": "-DAE",
    "strength_reduction": "-SR",
    "internal_promotions": "-Promote",
    "polyvariant_division": "-PolyDiv",
}

#: Which RegionStats predicate gates each ablation's applicability.
_APPLICABILITY = {
    "complete_loop_unrolling": lambda s: s.unrolling is not None,
    "static_loads": lambda s: s.used_static_loads,
    "unchecked_dispatching": lambda s: s.used_unchecked_dispatch,
    "static_calls": lambda s: s.used_static_calls,
    "zero_copy_propagation": lambda s: s.used_zcp,
    "dead_assignment_elimination": lambda s: s.used_dae,
    "strength_reduction": lambda s: s.used_sr,
    "internal_promotions": lambda s: s.used_internal_promotions,
    "polyvariant_division": lambda s: s.used_polyvariant_division,
}


def applicable_ablations(result: RunResult, function: str) -> list[str]:
    """Ablations applicable to one dynamic region (Table 2's checks)."""
    stats = result.stats_for_function(function)
    return [
        name for name in TABLE5_ABLATIONS
        if any(_APPLICABILITY[name](s) for s in stats)
    ]


def build_table5(baseline: dict[str, RunResult] | None = None,
                 progress=None,
                 jobs: int | None = None,
                 memo=None,
                 backend: str | None = None) -> Table:
    """Run every applicable single-optimization ablation (Table 5).

    Some ablations make unbounded specialization possible (mipsi without
    static loads cannot read the program it is unrolling over); those
    fall back to additionally disabling complete loop unrolling — the
    paper's cells for these cases coincide with the no-unrolling column —
    and the cell is starred.  The fallback lives in the ablation worker
    (:func:`repro.evalharness.parallel._run_ablation_task`) so it behaves
    identically in serial and ``--jobs N`` runs.
    """
    if baseline is None:
        baseline = run_all(ALL_ON, jobs=jobs, memo=memo, backend=backend)
    table = Table(
        title="Table 5: Region Speedups without a Particular Feature",
        headers=(["Dynamic Region", "All Opts"]
                 + [TABLE5_HEADERS[name] for name in TABLE5_ABLATIONS]),
    )
    # Determine, per workload, the union of applicable ablations so each
    # configuration is compiled and run once per workload; then fan the
    # whole (workload, ablation) task list out in one batch.
    per_workload: dict[str, dict[str, list[str]]] = {}
    tasks: list[tuple[str, str]] = []
    for workload in ALL_WORKLOADS:
        base = baseline[workload.name]
        per_function = {
            name: applicable_ablations(base, name)
            for name in workload.region_functions
        }
        per_workload[workload.name] = per_function
        needed = sorted(
            {a for ablist in per_function.values() for a in ablist},
            key=TABLE5_ABLATIONS.index,
        )
        tasks.extend((workload.name, ablation) for ablation in needed)
    outcomes = run_ablations(tasks, jobs=jobs, backend=backend,
                             memo=memo, progress=progress)
    by_task = dict(zip(tasks, outcomes))

    for workload in ALL_WORKLOADS:
        base = baseline[workload.name]
        per_function = per_workload[workload.name]
        ablated: dict[str, RunResult] = {}
        starred: set[str] = set()
        for (name, ablation), (result, star) in by_task.items():
            if name != workload.name:
                continue
            ablated[ablation] = result
            if star:
                starred.add(ablation)
        base_metrics = {
            m.region_label: m for m in base.region_metrics()
        }
        for name in workload.region_functions:
            label = (workload.name
                     if len(workload.region_functions) == 1
                     else f"{workload.name}: {name}")
            row = [label, _fmt_speedup(
                base_metrics[label].asymptotic_speedup)]
            for ablation in TABLE5_ABLATIONS:
                if ablation not in per_function[name]:
                    row.append("")
                    continue
                metrics = {
                    m.region_label: m
                    for m in ablated[ablation].region_metrics()
                }[label]
                cell = _fmt_speedup(metrics.asymptotic_speedup)
                if ablation in starred:
                    cell += "*"
                row.append(cell)
            table.rows.append(row)
    return table


# ----------------------------------------------------------------------

def run_all(config: OptConfig = ALL_ON,
            workloads=ALL_WORKLOADS,
            jobs: int | None = None,
            memo=None,
            backend: str | None = None) -> dict[str, RunResult]:
    """Run every workload once under ``config``.

    ``jobs`` fans runs out over a process pool (``None`` → serial unless
    ``REPRO_JOBS`` is set); ``memo`` is an optional
    :class:`~repro.evalharness.memo.Memoizer` shared by all workers.
    """
    tasks = [(workload.name, config) for workload in workloads]
    results = run_configs(tasks, jobs=jobs, backend=backend, memo=memo)
    return {
        workload.name: result
        for workload, result in zip(workloads, results)
    }
