"""Table-4-style warm-start benchmark of the persistent artifact store.

``python -m repro.evalharness warmstart`` measures, per workload, the
wall-clock cost of *generating* specialized artifacts (entry and
continuation specializations, pycodegen compilations, fusion decisions)
on a cold persistent store versus replaying them from a warm one:

1. **Cold leg** — run the workload with a fresh, empty
   :mod:`repro.runtime.persist` store; every artifact is generated and
   written back.  The store's per-kind ``work_seconds`` timers capture
   exactly the host seconds spent producing artifacts.
2. **Snapshot** — capture the populated store into a single snapshot
   file (:func:`repro.runtime.persist.save_snapshot`), then unpack it
   into a second, previously empty store directory — the cross-process
   hand-off a warm daemon start performs.
3. **Warm leg** — rerun the same workload against the unpacked store;
   artifacts replay instead of being regenerated, so the warm
   ``work_seconds`` is the residual generation cost.

The report (``BENCH_warmstart.json``, schema 1) gives each workload a
Table-4-style column: cold vs warm artifact-generation seconds, the
warm/cold overhead ratio (must be at or under ``WARM_RATIO_LIMIT``),
and the *break-even run count* — how many warm runs amortize the
one-time snapshot save + load cost, the warm-start analog of Table 4's
break-even points.

Correctness is enforced, not assumed: the cold and warm legs must
produce byte-identical statistics and results fingerprints (replayed
artifacts re-create the exact runtime state the cold run computed), and
any mismatch or over-limit ratio makes the run — and the CLI — fail.

:func:`compare_warmstart` diffs a committed report against a fresh run:
fingerprints are machine-independent and must agree; wall-clock drift
is reported but never fails the comparison.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import platform
import shutil
import sys
import tempfile
import time

from repro.config import ALL_ON, OptConfig
from repro.evalharness.runner import resolve_backend, run_workload
from repro.runtime import persist
from repro.workloads import ALL_WORKLOADS

DEFAULT_WARMSTART_PATH = "BENCH_warmstart.json"

#: Acceptance ceiling: warm-leg artifact-generation seconds must be at
#: most this fraction of the cold leg's.
WARM_RATIO_LIMIT = 0.10

#: Noise floor for the ratio check — a warm leg this cheap passes even
#: when the cold leg was itself nearly free.
_WARM_EPSILON = 1e-4


def _canon(value):
    """Hash-order-independent rendering of nested run statistics.

    ``repr`` of a set (or a dict populated in hash order) of strings is
    not stable across processes — string hashing is randomized per
    interpreter — so every set is sorted and every dict is rendered as
    sorted item tuples before hashing.  Ints and floats pass through
    (``repr`` round-trips them exactly).
    """
    if isinstance(value, dict):
        return tuple(sorted(
            ((_canon(key), _canon(item)) for key, item in value.items()),
            key=repr))
    if isinstance(value, (set, frozenset)):
        return tuple(sorted((_canon(item) for item in value), key=repr))
    if isinstance(value, (list, tuple)):
        return tuple(_canon(item) for item in value)
    return value


def run_fingerprints(result) -> tuple[str, str]:
    """``(stats_sha256, results_sha256)`` over one run.

    The stats fingerprint covers every byte-identical-by-construction
    quantity a run measures (full per-region statistics, cycle totals,
    region cycle maps, degradations); the results fingerprint covers the
    verified program outputs.  ``repr`` round-trips ints and floats
    exactly, so these are byte-level fingerprints.
    """
    stats_part = (
        sorted((region_id, repr(_canon(dataclasses.asdict(stats))))
               for region_id, stats in result.region_stats.items()),
        result.static_total_cycles,
        result.dynamic_total_cycles,
        result.dc_cycles,
        sorted(result.static_region_cycles.items()),
        sorted(result.dynamic_region_cycles.items()),
        sorted(result.region_entries.items()),
        result.degraded_translations,
        result.degraded_compilations,
    )
    stats_fp = hashlib.sha256(
        repr(stats_part).encode("utf-8")).hexdigest()
    results_fp = hashlib.sha256(
        repr((result.outputs_match,
              result.return_values)).encode("utf-8")).hexdigest()
    return stats_fp, results_fp


def _one_leg(workload, config: OptConfig, backend: str, store_dir: str):
    """Run ``workload`` against the store at ``store_dir``.

    Returns ``(result, store_stats, work_seconds)`` where
    ``work_seconds`` is the total artifact-generation wall time the
    store observed during this leg.
    """
    persist.reset()
    persist.activate(store_dir)
    try:
        result = run_workload(workload, config, backend=backend)
        store = persist.active_store()
        store_stats = store.stats()
        work = sum(store_stats["work_seconds"].values())
    finally:
        persist.reset()
    return result, store_stats, work


def run_warmstart(workloads=ALL_WORKLOADS,
                  config: OptConfig = ALL_ON,
                  backend: str | None = None) -> dict:
    """Benchmark cold vs warm artifact generation; return the report."""
    backend = resolve_backend(backend)
    per_workload: dict[str, dict] = {}
    total_cold = total_warm = 0.0
    all_match = True
    all_within = True

    scratch = tempfile.mkdtemp(prefix="repro-warmstart-")
    try:
        for workload in workloads:
            cold_dir = os.path.join(scratch, f"{workload.name}-cold")
            warm_dir = os.path.join(scratch, f"{workload.name}-warm")
            snap_path = os.path.join(scratch, f"{workload.name}.snap")

            cold, cold_stats, cold_work = _one_leg(
                workload, config, backend, cold_dir)

            snap_start = time.perf_counter()
            saved = persist.save_snapshot(cold_dir, snap_path)
            loaded = persist.load_snapshot(snap_path, warm_dir)
            snapshot_seconds = time.perf_counter() - snap_start
            if not saved.ok or not loaded.ok:
                raise RuntimeError(
                    f"{workload.name}: snapshot round-trip failed "
                    f"(save: {saved.error}, load: {loaded.error})")

            warm, warm_stats, warm_work = _one_leg(
                workload, config, backend, warm_dir)

            cold_fp = run_fingerprints(cold)
            warm_fp = run_fingerprints(warm)
            match = cold_fp == warm_fp
            within = warm_work <= max(WARM_RATIO_LIMIT * cold_work,
                                      _WARM_EPSILON)
            all_match = all_match and match
            all_within = all_within and within
            total_cold += cold_work
            total_warm += warm_work

            saved_per_run = cold_work - warm_work
            break_even = (round(snapshot_seconds / saved_per_run, 2)
                          if saved_per_run > 0 else None)
            per_workload[workload.name] = {
                "cold_work_seconds": round(cold_work, 6),
                "warm_work_seconds": round(warm_work, 6),
                "warm_ratio": round(warm_work / cold_work, 4)
                              if cold_work > 0 else 0.0,
                "within_limit": within,
                "snapshot_seconds": round(snapshot_seconds, 6),
                "break_even_runs": break_even,
                "snapshot_records": saved.loaded,
                "replayed_entries": warm_stats["replayed_entries"],
                "replayed_continuations":
                    warm_stats["replayed_continuations"],
                "warm_hits": warm_stats["hits"],
                "stale_drops": warm_stats["stale_drops"],
                "stats_checksum": cold_fp[0],
                "results_checksum": cold_fp[1],
                "checksums_match": match,
            }
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    return {
        "schema": 1,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "backend": backend,
        "warm_ratio_limit": WARM_RATIO_LIMIT,
        "workloads": per_workload,
        "totals": {
            "cold_work_seconds": round(total_cold, 6),
            "warm_work_seconds": round(total_warm, 6),
            "warm_ratio": round(total_warm / total_cold, 4)
                          if total_cold > 0 else 0.0,
        },
        "checksums_match": all_match,
        "warm_within_limit": all_within,
        "ok": all_match and all_within,
    }


def write_warmstart(report: dict,
                    path: str = DEFAULT_WARMSTART_PATH) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")


def load_warmstart(path: str = DEFAULT_WARMSTART_PATH) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def compare_warmstart(committed: dict,
                      fresh: dict) -> tuple[list[str], bool]:
    """Diff a committed warm-start report against a fresh run.

    ``ok`` goes False only on semantic divergence: schema mismatch,
    differing workload sets, a failing fresh run, or stats/results
    fingerprints that disagree between the two reports (fingerprints are
    machine-independent).  Timing drift is listed but never fails.
    """
    lines: list[str] = []
    ok = True

    if committed.get("schema") != fresh.get("schema"):
        lines.append(
            f"schema: committed {committed.get('schema')!r} != "
            f"fresh {fresh.get('schema')!r}")
        return lines, False

    if not fresh.get("ok", False):
        lines.append("fresh run failed (checksum mismatch or warm "
                     "overhead over limit)")
        ok = False

    committed_wl = set(committed.get("workloads", {}))
    fresh_wl = set(fresh.get("workloads", {}))
    if committed_wl != fresh_wl:
        only_committed = sorted(committed_wl - fresh_wl)
        only_fresh = sorted(fresh_wl - committed_wl)
        if only_committed:
            lines.append("workloads only in committed report: "
                         + ", ".join(only_committed))
        if only_fresh:
            lines.append("workloads only in fresh report: "
                         + ", ".join(only_fresh))
        ok = False

    for name in sorted(committed_wl & fresh_wl):
        old = committed["workloads"][name]
        new = fresh["workloads"][name]
        for key in ("stats_checksum", "results_checksum"):
            if old.get(key) != new.get(key):
                lines.append(
                    f"{name}: {key} changed "
                    f"({str(old.get(key))[:12]}… -> "
                    f"{str(new.get(key))[:12]}…)")
                ok = False
        old_ratio = old.get("warm_ratio")
        new_ratio = new.get("warm_ratio")
        if old_ratio != new_ratio:
            lines.append(f"{name}: warm ratio {old_ratio} -> "
                         f"{new_ratio} (wall-clock drift, informational)")

    if not lines:
        lines.append("reports agree")
    return lines, ok
