"""Deterministic fault injection for the dynamic-compilation runtime."""

from repro.faults.registry import (
    FAULT_POINTS,
    WORKER_POINTS,
    FaultRegistry,
    FaultSpec,
    combine_specs,
    parse_spec,
    resolve_degrade,
    resolve_fault_spec,
)

__all__ = [
    "FAULT_POINTS",
    "WORKER_POINTS",
    "FaultRegistry",
    "FaultSpec",
    "combine_specs",
    "parse_spec",
    "resolve_degrade",
    "resolve_fault_spec",
]
