"""Deterministic, seedable fault injection for the runtime.

The degradation ladder (see ``DESIGN.md``) only earns trust if every rung
can be *exercised on demand*: this module provides named fault points
spread across the dynamic-compilation pipeline — the specializer, the
code caches, the instruction emitter, the threaded-translation cache, and
the eval-harness pool workers — each of which can be armed with a
deterministic trigger.  No global randomness is involved: probabilistic
triggers use a per-point xorshift64 stream seeded from the spec, so a
given spec string always injects the same faults at the same hit counts.

Spec strings
------------

A spec is a ``;``-separated list of ``point[:param[,param...]]`` entries::

    specializer.entry                fire on every hit
    specializer.entry:once           fire on the first hit only
    emit.template:at=3               fire on the 3rd hit only
    cache.corrupt:every=2            fire on every 2nd hit
    worker.error:p=0.5,seed=7        fire pseudo-randomly (deterministic)
    worker.hang:once,secs=2          point-specific extras ride along

Specs combine from ``OptConfig.faults`` and the ``REPRO_FAULTS``
environment variable (see :func:`resolve_fault_spec`); arming any fault
point also switches the runtime's graceful degradation on by default
(:func:`resolve_degrade`), since injecting faults without the ladder
would just crash.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.errors import FaultConfigError

#: Every named fault point, with the failure it simulates.
FAULT_POINTS: dict[str, str] = {
    "specializer.entry":
        "specialize_entry fails before any context is processed",
    "specializer.continuation":
        "lazy promotion continuation fails to specialize",
    "specializer.budget":
        "per-batch context budget collapses to zero (runaway unrolling)",
    "emit.template":
        "the block emitter fails while emitting a template instruction",
    "cache.corrupt":
        "a cache-all insertion stores a corrupt entry checksum",
    "cache.evict":
        "a cache-all insertion first evicts a live entry",
    "pycodegen.compile":
        "the codegen backend fails to compile a function to Python",
    "threaded.translate":
        "the threaded backend fails to translate a function",
    "serve.admit":
        "the serve daemon fails an admitted request before execution",
    "serve.worker_heartbeat":
        "a supervised worker's heartbeat goes silent (simulated hang)",
    "serve.respond":
        "a worker dies or drops the connection instead of responding",
    "persist.load":
        "a persisted artifact fails integrity verification on load",
    "persist.store":
        "a persisted artifact write is dropped before reaching disk",
    "persist.fsync":
        "the fsync barrier of a persisted artifact write fails",
    "worker.crash":
        "a pool worker dies with os._exit (BrokenProcessPool)",
    "worker.error":
        "a pool worker raises before running its task",
    "worker.hang":
        "a pool worker sleeps (bounded) before running its task",
}

#: Fault points that fire inside eval-harness pool workers rather than
#: inside the runtime proper.
WORKER_POINTS = ("worker.crash", "worker.error", "worker.hang")

_MODES = ("always", "once", "at", "every", "p")


def _fnv(text: str) -> int:
    h = 0xcbf29ce484222325
    for byte in text.encode("utf-8"):
        h = ((h ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault point with its trigger mode."""

    point: str
    mode: str = "always"
    n: int = 0          # for at= / every=
    p: float = 0.0      # for p=
    seed: int = 0       # for p=
    secs: float = 30.0  # worker.hang sleep bound

    @property
    def describe(self) -> str:
        if self.mode == "always":
            return self.point
        if self.mode in ("at", "every"):
            return f"{self.point}:{self.mode}={self.n}"
        if self.mode == "p":
            return f"{self.point}:p={self.p},seed={self.seed}"
        return f"{self.point}:{self.mode}"


def parse_spec(text: str | None) -> dict[str, FaultSpec]:
    """Parse a spec string into per-point :class:`FaultSpec` entries.

    Later entries for the same point override earlier ones, so an
    environment spec can tighten a config spec.
    """
    specs: dict[str, FaultSpec] = {}
    if not text:
        return specs
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        point, _, params = chunk.partition(":")
        point = point.strip()
        if point not in FAULT_POINTS:
            known = ", ".join(sorted(FAULT_POINTS))
            raise FaultConfigError(
                f"unknown fault point {point!r} (known: {known})"
            )
        fields: dict[str, object] = {}
        for param in params.split(","):
            param = param.strip()
            if not param:
                continue
            key, eq, value = param.partition("=")
            key = key.strip()
            value = value.strip()
            if not eq:
                if key not in ("once", "always"):
                    raise FaultConfigError(
                        f"fault point {point!r}: bare parameter {key!r} "
                        "is not a trigger mode (use once or always)"
                    )
                fields["mode"] = key
                continue
            if key in ("at", "every"):
                fields["mode"] = key
                fields["n"] = _parse_int(point, key, value)
            elif key == "p":
                fields["mode"] = "p"
                fields["p"] = _parse_float(point, key, value)
            elif key == "seed":
                fields["seed"] = _parse_int(point, key, value)
            elif key == "secs":
                fields["secs"] = _parse_float(point, key, value)
            else:
                raise FaultConfigError(
                    f"fault point {point!r}: unknown parameter {key!r}"
                )
        spec = FaultSpec(point=point, **fields)
        if spec.mode in ("at", "every") and spec.n < 1:
            raise FaultConfigError(
                f"fault point {point!r}: {spec.mode}= requires N >= 1"
            )
        if spec.mode == "p" and not 0.0 <= spec.p <= 1.0:
            raise FaultConfigError(
                f"fault point {point!r}: p= must be within [0, 1]"
            )
        specs[point] = spec
    return specs


def _parse_int(point: str, key: str, value: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise FaultConfigError(
            f"fault point {point!r}: {key}= expects an integer, "
            f"got {value!r}"
        ) from None


def _parse_float(point: str, key: str, value: str) -> float:
    try:
        return float(value)
    except ValueError:
        raise FaultConfigError(
            f"fault point {point!r}: {key}= expects a number, "
            f"got {value!r}"
        ) from None


@dataclass
class FaultRegistry:
    """Hit counting and trigger evaluation for armed fault points.

    One registry lives on each :class:`~repro.runtime.runtime.DycRuntime`
    (and one per pool-worker task attempt), so hit counts are scoped to a
    single run and results stay deterministic under ``--jobs N``.
    """

    specs: dict[str, FaultSpec] = field(default_factory=dict)
    hits: dict[str, int] = field(default_factory=dict)
    fired: dict[str, int] = field(default_factory=dict)
    _rng: dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_spec(cls, text: str | None) -> "FaultRegistry":
        return cls(specs=parse_spec(text))

    @property
    def active(self) -> bool:
        return bool(self.specs)

    def enabled(self, point: str) -> bool:
        """Is ``point`` armed at all?  (Cheap pre-check for hot paths.)"""
        return point in self.specs

    def param(self, point: str, name: str, default: float) -> float:
        spec = self.specs.get(point)
        if spec is None:
            return default
        return getattr(spec, name, default)

    def should_fire(self, point: str) -> bool:
        """Count a hit on ``point`` and decide whether the fault fires."""
        spec = self.specs.get(point)
        if spec is None:
            return False
        count = self.hits.get(point, 0) + 1
        self.hits[point] = count
        if spec.mode == "always":
            fire = True
        elif spec.mode == "once":
            fire = count == 1
        elif spec.mode == "at":
            fire = count == spec.n
        elif spec.mode == "every":
            fire = count % spec.n == 0
        else:  # p
            fire = self._next_uniform(point, spec.seed) < spec.p
        if fire:
            self.fired[point] = self.fired.get(point, 0) + 1
        return fire

    def _next_uniform(self, point: str, seed: int) -> float:
        state = self._rng.get(point)
        if state is None:
            state = (_fnv(point) ^ (seed * 0x9E3779B97F4A7C15)) \
                & 0xFFFFFFFFFFFFFFFF or 1
        # xorshift64
        state ^= (state << 13) & 0xFFFFFFFFFFFFFFFF
        state ^= state >> 7
        state ^= (state << 17) & 0xFFFFFFFFFFFFFFFF
        self._rng[point] = state
        return (state >> 11) / float(1 << 53)

    def summary(self) -> dict[str, tuple[int, int]]:
        """point -> (hits, fires) for armed points, for reporting."""
        return {
            point: (self.hits.get(point, 0), self.fired.get(point, 0))
            for point in sorted(self.specs)
        }


# ----------------------------------------------------------------------
# Resolution helpers (config + environment)
# ----------------------------------------------------------------------

def combine_specs(*parts: str | None) -> str:
    """Join spec fragments; empty/None fragments drop out."""
    return ";".join(p for p in parts if p)


def resolve_fault_spec(config=None) -> str:
    """Effective fault spec: ``OptConfig.faults`` plus ``REPRO_FAULTS``.

    The environment part comes second so it can override per-point
    triggers set in the config.
    """
    config_spec = getattr(config, "faults", "") if config is not None \
        else ""
    return combine_specs(config_spec, os.environ.get("REPRO_FAULTS"))


def resolve_degrade(config=None) -> bool:
    """Is the graceful-degradation ladder active?

    On when ``OptConfig.degrade`` is set, when ``REPRO_DEGRADE`` is a
    truthy string, or when any fault point is armed (injecting faults
    without the ladder would just crash, which defeats the exercise).
    """
    if config is not None and getattr(config, "degrade", False):
        return True
    env = os.environ.get("REPRO_DEGRADE", "").strip().lower()
    if env in ("1", "true", "yes", "on"):
        return True
    if env in ("0", "false", "no", "off"):
        return False
    return bool(resolve_fault_spec(config))
