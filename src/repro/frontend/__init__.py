"""MiniC: the small C-like annotated language used to write workloads.

MiniC plays the role of C in the paper.  It supports DyC's annotation
vocabulary directly in the syntax:

* ``make_static(x, y);`` — begin polyvariant specialization on variables
  (optionally with a cache policy: ``make_static(x) : cache_one_unchecked;``)
* ``make_dynamic(x);`` — stop specializing on a variable
* ``a@[i]`` — a *static load* (the ``@`` annotation of §2.2.6)
* ``pure func f(...)`` — a *static call* target (§2.2.6)

The pipeline is ``source → tokens → AST → IR``::

    from repro.frontend import compile_source
    module = compile_source(src_text)
"""

from repro.frontend.lexer import tokenize
from repro.frontend.parser import parse_program
from repro.frontend.lower import lower_program, compile_source

__all__ = [
    "tokenize",
    "parse_program",
    "lower_program",
    "compile_source",
]
