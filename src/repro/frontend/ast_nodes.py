"""Abstract syntax tree for MiniC."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Node:
    """Base AST node; every node records its source line for diagnostics."""

    line: int


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class NumberLit(Node):
    value: int | float


@dataclass(frozen=True)
class VarRef(Node):
    name: str


@dataclass(frozen=True)
class Unary(Node):
    op: str                 # '-', '!'
    operand: "Expr"


@dataclass(frozen=True)
class Binary(Node):
    op: str                 # '+', '-', '*', '/', '%', '&', ... '==', '<' ...
    lhs: "Expr"
    rhs: "Expr"


@dataclass(frozen=True)
class LogicalAnd(Node):
    lhs: "Expr"
    rhs: "Expr"


@dataclass(frozen=True)
class LogicalOr(Node):
    lhs: "Expr"
    rhs: "Expr"


@dataclass(frozen=True)
class Index(Node):
    """``base[index]`` — a load; ``static`` marks DyC's ``base@[index]``."""

    base: "Expr"
    index: "Expr"
    static: bool = False


@dataclass(frozen=True)
class CallExpr(Node):
    callee: str
    args: tuple["Expr", ...]


Expr = (NumberLit | VarRef | Unary | Binary | LogicalAnd | LogicalOr
        | Index | CallExpr)


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class VarDecl(Node):
    name: str
    init: Expr | None


@dataclass(frozen=True)
class Assign(Node):
    """``name = expr;``"""

    name: str
    value: Expr


@dataclass(frozen=True)
class StoreStmt(Node):
    """``base[index] = expr;``"""

    base: Expr
    index: Expr
    value: Expr


@dataclass(frozen=True)
class ExprStmt(Node):
    expr: Expr


@dataclass(frozen=True)
class If(Node):
    cond: Expr
    then_body: tuple["Stmt", ...]
    else_body: tuple["Stmt", ...] = ()


@dataclass(frozen=True)
class While(Node):
    cond: Expr
    body: tuple["Stmt", ...]


@dataclass(frozen=True)
class For(Node):
    init: "Stmt | None"
    cond: Expr | None
    step: "Stmt | None"
    body: tuple["Stmt", ...]


@dataclass(frozen=True)
class Return(Node):
    value: Expr | None


@dataclass(frozen=True)
class Break(Node):
    pass


@dataclass(frozen=True)
class Continue(Node):
    pass


@dataclass(frozen=True)
class MakeStaticStmt(Node):
    """``make_static(a, b) : policy;`` — DyC's central annotation."""

    names: tuple[str, ...]
    policy: str = "cache_all"


@dataclass(frozen=True)
class MakeDynamicStmt(Node):
    names: tuple[str, ...]


Stmt = (VarDecl | Assign | StoreStmt | ExprStmt | If | While | For
        | Return | Break | Continue | MakeStaticStmt | MakeDynamicStmt)


# ----------------------------------------------------------------------
# Top level
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FuncDef(Node):
    name: str
    params: tuple[str, ...]
    body: tuple[Stmt, ...]
    pure: bool = False


@dataclass(frozen=True)
class Program(Node):
    functions: tuple[FuncDef, ...] = field(default=())
