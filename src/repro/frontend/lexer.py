"""Hand-written lexer for MiniC."""

from __future__ import annotations

from repro.errors import LexError
from repro.frontend.tokens import KEYWORDS, Token, TokenType

_TWO_CHAR = {
    "==": TokenType.EQ,
    "!=": TokenType.NE,
    "<=": TokenType.LE,
    ">=": TokenType.GE,
    "<<": TokenType.SHL,
    ">>": TokenType.SHR,
    "&&": TokenType.ANDAND,
    "||": TokenType.OROR,
    "@[": TokenType.AT_LBRACKET,
}

_ONE_CHAR = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    ",": TokenType.COMMA,
    ";": TokenType.SEMICOLON,
    ":": TokenType.COLON,
    "=": TokenType.ASSIGN,
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "%": TokenType.PERCENT,
    "&": TokenType.AMP,
    "|": TokenType.PIPE,
    "^": TokenType.CARET,
    "<": TokenType.LT,
    ">": TokenType.GT,
    "!": TokenType.BANG,
}


def tokenize(source: str) -> list[Token]:
    """Lex MiniC source into a token list terminated by an EOF token."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    line_start = 0
    length = len(source)

    def column() -> int:
        return pos - line_start + 1

    while pos < length:
        ch = source[pos]

        # Whitespace / newlines
        if ch in " \t\r":
            pos += 1
            continue
        if ch == "\n":
            pos += 1
            line += 1
            line_start = pos
            continue

        # Comments: // to end of line, /* ... */ possibly multi-line
        if source.startswith("//", pos):
            end = source.find("\n", pos)
            pos = length if end == -1 else end
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end == -1:
                raise LexError("unterminated block comment", line, column())
            line += source.count("\n", pos, end)
            newline = source.rfind("\n", pos, end)
            if newline != -1:
                line_start = newline + 1
            pos = end + 2
            continue

        start_col = column()

        # Numbers
        if ch.isdigit() or (ch == "." and pos + 1 < length
                            and source[pos + 1].isdigit()):
            tokens.append(_lex_number(source, pos, line, start_col))
            pos += len(tokens[-1].text)
            continue

        # Identifiers / keywords
        if ch.isalpha() or ch == "_":
            end = pos
            while end < length and (source[end].isalnum()
                                    or source[end] == "_"):
                end += 1
            text = source[pos:end]
            token_type = KEYWORDS.get(text, TokenType.IDENT)
            tokens.append(Token(token_type, text, line, start_col))
            pos = end
            continue

        # Two-character operators (incl. the @[ static-load marker)
        pair = source[pos:pos + 2]
        if pair in _TWO_CHAR:
            tokens.append(Token(_TWO_CHAR[pair], pair, line, start_col))
            pos += 2
            continue

        if ch in _ONE_CHAR:
            tokens.append(Token(_ONE_CHAR[ch], ch, line, start_col))
            pos += 1
            continue

        raise LexError(f"unexpected character {ch!r}", line, start_col)

    tokens.append(Token(TokenType.EOF, "", line, column()))
    return tokens


def _lex_number(source: str, pos: int, line: int, col: int) -> Token:
    end = pos
    length = len(source)
    is_float = False
    while end < length and source[end].isdigit():
        end += 1
    if end < length and source[end] == ".":
        is_float = True
        end += 1
        while end < length and source[end].isdigit():
            end += 1
    if end < length and source[end] in "eE":
        exp_end = end + 1
        if exp_end < length and source[exp_end] in "+-":
            exp_end += 1
        if exp_end < length and source[exp_end].isdigit():
            is_float = True
            end = exp_end
            while end < length and source[end].isdigit():
                end += 1
    text = source[pos:end]
    try:
        value: int | float = float(text) if is_float else int(text)
    except ValueError:
        raise LexError(f"malformed number {text!r}", line, col) from None
    token_type = TokenType.FLOAT if is_float else TokenType.INT
    return Token(token_type, text, line, col, value=value)
