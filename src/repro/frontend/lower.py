"""AST-to-IR lowering for MiniC."""

from __future__ import annotations

from repro.errors import LowerError
from repro.frontend import ast_nodes as ast
from repro.frontend.parser import parse_program
from repro.ir import FunctionBuilder, Imm, Module, Op, Operand, verify_module
from repro.machine.intrinsics import INTRINSICS

_BINARY_OPS = {
    "+": Op.ADD, "-": Op.SUB, "*": Op.MUL, "/": Op.DIV, "%": Op.MOD,
    "&": Op.AND, "|": Op.OR, "^": Op.XOR, "<<": Op.SHL, ">>": Op.SHR,
    "==": Op.EQ, "!=": Op.NE, "<": Op.LT, "<=": Op.LE,
    ">": Op.GT, ">=": Op.GE,
}


class _FunctionLowerer:
    """Lowers one function body into a :class:`FunctionBuilder`."""

    def __init__(self, func: ast.FuncDef, pure_functions: frozenset[str]):
        self.func = func
        self.pure_functions = pure_functions
        self.builder = FunctionBuilder(func.name, func.params)
        # Stacks of (break_target, continue_target) for loop lowering.
        self.loop_targets: list[tuple[str, str]] = []

    def lower(self):
        self._lower_statements(self.func.body)
        if not self.builder.terminated:
            self.builder.ret(0)
        function = self.builder.finish()
        function.remove_unreachable_blocks()
        return function

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _lower_statements(self, statements) -> None:
        for statement in statements:
            if self.builder.terminated:
                # Unreachable code after return/break; lower it into a
                # fresh block that dead-block removal will discard.
                self.builder.label(self.builder.fresh_label("dead"))
            self._lower_statement(statement)

    def _lower_statement(self, stmt: ast.Stmt) -> None:
        b = self.builder
        if isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                self._lower_assign(stmt.name, stmt.init)
            else:
                b.move(stmt.name, Imm(0))
        elif isinstance(stmt, ast.Assign):
            self._lower_assign(stmt.name, stmt.value)
        elif isinstance(stmt, ast.StoreStmt):
            addr = self._lower_address(stmt.base, stmt.index)
            b.store(addr, self._lower_expr(stmt.value))
        elif isinstance(stmt, ast.ExprStmt):
            self._lower_expr_for_effect(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.Return):
            value = None if stmt.value is None \
                else self._lower_expr(stmt.value)
            b.ret(value)
        elif isinstance(stmt, ast.Break):
            if not self.loop_targets:
                raise LowerError("break outside a loop", stmt.line)
            b.jump(self.loop_targets[-1][0])
        elif isinstance(stmt, ast.Continue):
            if not self.loop_targets:
                raise LowerError("continue outside a loop", stmt.line)
            b.jump(self.loop_targets[-1][1])
        elif isinstance(stmt, ast.MakeStaticStmt):
            b.make_static(*stmt.names, policy=stmt.policy)
        elif isinstance(stmt, ast.MakeDynamicStmt):
            b.make_dynamic(*stmt.names)
        else:  # pragma: no cover - exhaustive
            raise LowerError(
                f"cannot lower {type(stmt).__name__}", stmt.line
            )

    def _lower_assign(self, name: str, value: ast.Expr) -> None:
        """Lower ``name = value`` computing directly into ``name`` where
        possible (avoids a temp-plus-move that a register allocator would
        otherwise coalesce)."""
        b = self.builder
        if isinstance(value, ast.Binary):
            lhs = self._lower_expr(value.lhs)
            rhs = self._lower_expr(value.rhs)
            b.binop(name, _BINARY_OPS[value.op], lhs, rhs)
            return
        if isinstance(value, ast.Unary):
            operand = self._lower_expr(value.operand)
            op = Op.NEG if value.op == "-" else Op.NOT
            b.unop(name, op, operand)
            return
        if isinstance(value, ast.Index):
            addr = self._lower_address(value.base, value.index,
                                       static=value.static)
            b.load(name, addr, static=value.static)
            return
        if isinstance(value, ast.CallExpr):
            self._lower_call(value, name)
            return
        b.move(name, self._lower_expr(value))

    def _lower_if(self, stmt: ast.If) -> None:
        b = self.builder
        then_label = b.fresh_label("then")
        join_label = b.fresh_label("endif")
        else_label = b.fresh_label("else") if stmt.else_body else join_label
        cond = self._lower_expr(stmt.cond)
        b.branch(cond, then_label, else_label)

        b.label(then_label)
        self._lower_statements(stmt.then_body)
        if not b.terminated:
            b.jump(join_label)

        if stmt.else_body:
            b.label(else_label)
            self._lower_statements(stmt.else_body)
            if not b.terminated:
                b.jump(join_label)

        b.label(join_label)

    def _lower_while(self, stmt: ast.While) -> None:
        b = self.builder
        head = b.fresh_label("while_head")
        body = b.fresh_label("while_body")
        done = b.fresh_label("while_done")
        b.jump(head)
        b.label(head)
        cond = self._lower_expr(stmt.cond)
        b.branch(cond, body, done)
        b.label(body)
        self.loop_targets.append((done, head))
        self._lower_statements(stmt.body)
        self.loop_targets.pop()
        if not b.terminated:
            b.jump(head)
        b.label(done)

    def _lower_for(self, stmt: ast.For) -> None:
        b = self.builder
        head = b.fresh_label("for_head")
        body = b.fresh_label("for_body")
        step = b.fresh_label("for_step")
        done = b.fresh_label("for_done")
        if stmt.init is not None:
            self._lower_statement(stmt.init)
        b.jump(head)
        b.label(head)
        if stmt.cond is not None:
            cond = self._lower_expr(stmt.cond)
            b.branch(cond, body, done)
        else:
            b.jump(body)
        b.label(body)
        self.loop_targets.append((done, step))
        self._lower_statements(stmt.body)
        self.loop_targets.pop()
        if not b.terminated:
            b.jump(step)
        b.label(step)
        if stmt.step is not None:
            self._lower_statement(stmt.step)
        b.jump(head)
        b.label(done)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _lower_expr(self, expr: ast.Expr) -> Operand:
        b = self.builder
        if isinstance(expr, ast.NumberLit):
            return Imm(expr.value)
        if isinstance(expr, ast.VarRef):
            from repro.ir import Reg
            return Reg(expr.name)
        if isinstance(expr, ast.Unary):
            operand = self._lower_expr(expr.operand)
            dest = b.fresh_temp()
            op = Op.NEG if expr.op == "-" else Op.NOT
            b.unop(dest, op, operand)
            from repro.ir import Reg
            return Reg(dest)
        if isinstance(expr, ast.Binary):
            lhs = self._lower_expr(expr.lhs)
            rhs = self._lower_expr(expr.rhs)
            dest = b.fresh_temp()
            b.binop(dest, _BINARY_OPS[expr.op], lhs, rhs)
            from repro.ir import Reg
            return Reg(dest)
        if isinstance(expr, ast.LogicalAnd):
            return self._lower_short_circuit(expr, is_and=True)
        if isinstance(expr, ast.LogicalOr):
            return self._lower_short_circuit(expr, is_and=False)
        if isinstance(expr, ast.Index):
            addr = self._lower_address(expr.base, expr.index,
                                       static=expr.static)
            dest = b.fresh_temp()
            b.load(dest, addr, static=expr.static)
            from repro.ir import Reg
            return Reg(dest)
        if isinstance(expr, ast.CallExpr):
            dest = b.fresh_temp()
            self._lower_call(expr, dest)
            from repro.ir import Reg
            return Reg(dest)
        raise LowerError(
            f"cannot lower expression {type(expr).__name__}", expr.line
        )

    def _lower_expr_for_effect(self, expr: ast.Expr) -> None:
        """Lower an expression statement (result discarded)."""
        if isinstance(expr, ast.CallExpr):
            self._lower_call(expr, dest=None)
        else:
            self._lower_expr(expr)

    def _lower_call(self, expr: ast.CallExpr, dest: str | None) -> None:
        args = [self._lower_expr(a) for a in expr.args]
        callee = expr.callee
        intrinsic = INTRINSICS.get(callee)
        is_pure = callee in self.pure_functions or (
            intrinsic is not None and intrinsic.pure
        )
        self.builder.call(dest, callee, args, static=is_pure)

    def _lower_short_circuit(self, expr, is_and: bool) -> Operand:
        """Lower ``a && b`` / ``a || b`` with C short-circuit semantics."""
        b = self.builder
        from repro.ir import Reg
        dest = b.fresh_temp("bool")
        rhs_label = b.fresh_label("sc_rhs")
        short_label = b.fresh_label("sc_short")
        join_label = b.fresh_label("sc_join")

        lhs = self._lower_expr(expr.lhs)
        if is_and:
            b.branch(lhs, rhs_label, short_label)
        else:
            b.branch(lhs, short_label, rhs_label)

        b.label(rhs_label)
        rhs = self._lower_expr(expr.rhs)
        b.binop(dest, Op.NE, rhs, Imm(0))
        b.jump(join_label)

        b.label(short_label)
        b.move(dest, Imm(0) if is_and else Imm(1))
        b.jump(join_label)

        b.label(join_label)
        return Reg(dest)

    def _lower_address(self, base: ast.Expr, index: ast.Expr,
                       static: bool = False) -> Operand:
        """Compute ``base + index`` as the flat-memory address."""
        b = self.builder
        base_operand = self._lower_expr(base)
        index_operand = self._lower_expr(index)
        if isinstance(index_operand, Imm) and index_operand.value == 0:
            return base_operand
        dest = b.fresh_temp("addr")
        b.binop(dest, Op.ADD, base_operand, index_operand)
        from repro.ir import Reg
        return Reg(dest)


def lower_program(program: ast.Program, verify: bool = True) -> Module:
    """Lower a parsed program into an IR module.

    ``verify=False`` skips the module verifier; the lint driver uses it
    so that verifier findings (unresolved calls, malformed CFGs) surface
    as diagnostics instead of exceptions.
    """
    pure_functions = frozenset(
        f.name for f in program.functions if f.pure
    )
    module = Module()
    for func in program.functions:
        lowered = _FunctionLowerer(func, pure_functions).lower()
        module.add_function(lowered)
    if verify:
        verify_module(module)
    return module


def compile_source(source: str, verify: bool = True) -> Module:
    """Compile MiniC source text to an (unoptimized) IR module."""
    return lower_program(parse_program(source), verify=verify)
