"""Recursive-descent parser for MiniC.

Expression grammar (loosest to tightest, all left-associative):

    logical_or:    a || b
    logical_and:   a && b
    bit_or:        a | b
    bit_xor:       a ^ b
    bit_and:       a & b
    equality:      a == b, a != b
    relational:    a < b, a <= b, a > b, a >= b
    shift:         a << b, a >> b
    additive:      a + b, a - b
    multiplicative a * b, a / b, a % b
    unary:         -a, !a
    postfix:       a[i], a@[i], f(args)
    primary:       number, identifier, (expr)
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.frontend import ast_nodes as ast
from repro.frontend.lexer import tokenize
from repro.frontend.tokens import Token, TokenType

_EQUALITY = {TokenType.EQ: "==", TokenType.NE: "!="}
_RELATIONAL = {
    TokenType.LT: "<", TokenType.LE: "<=",
    TokenType.GT: ">", TokenType.GE: ">=",
}
_SHIFT = {TokenType.SHL: "<<", TokenType.SHR: ">>"}
_ADDITIVE = {TokenType.PLUS: "+", TokenType.MINUS: "-"}
_MULTIPLICATIVE = {
    TokenType.STAR: "*", TokenType.SLASH: "/", TokenType.PERCENT: "%",
}

#: Cache policies accepted after ``make_static(...) :``  (§2.2.3).
CACHE_POLICIES = frozenset({
    "cache_all", "cache_one_unchecked", "cache_indexed",
})


class Parser:
    """A single-pass recursive-descent parser over a token list."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def check(self, token_type: TokenType) -> bool:
        return self.current.type is token_type

    def accept(self, token_type: TokenType) -> Token | None:
        if self.check(token_type):
            token = self.current
            self.pos += 1
            return token
        return None

    def expect(self, token_type: TokenType, context: str = "") -> Token:
        token = self.accept(token_type)
        if token is None:
            where = f" in {context}" if context else ""
            raise ParseError(
                f"expected {token_type.value!r}{where}, "
                f"found {self.current.text!r}",
                self.current.line, self.current.column,
            )
        return token

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        functions: list[ast.FuncDef] = []
        while not self.check(TokenType.EOF):
            functions.append(self.parse_function())
        return ast.Program(line=1, functions=tuple(functions))

    def parse_function(self) -> ast.FuncDef:
        pure = self.accept(TokenType.PURE) is not None
        start = self.expect(TokenType.FUNC, "function definition")
        name = self.expect(TokenType.IDENT, "function name").text
        self.expect(TokenType.LPAREN, "parameter list")
        params: list[str] = []
        if not self.check(TokenType.RPAREN):
            params.append(self.expect(TokenType.IDENT, "parameter").text)
            while self.accept(TokenType.COMMA):
                params.append(
                    self.expect(TokenType.IDENT, "parameter").text
                )
        self.expect(TokenType.RPAREN, "parameter list")
        body = self.parse_block()
        return ast.FuncDef(line=start.line, name=name,
                           params=tuple(params), body=body, pure=pure)

    def parse_block(self) -> tuple[ast.Stmt, ...]:
        self.expect(TokenType.LBRACE, "block")
        statements: list[ast.Stmt] = []
        while not self.check(TokenType.RBRACE):
            if self.check(TokenType.EOF):
                raise ParseError("unterminated block",
                                 self.current.line, self.current.column)
            statements.append(self.parse_statement())
        self.expect(TokenType.RBRACE, "block")
        return tuple(statements)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def parse_statement(self) -> ast.Stmt:
        token = self.current
        if token.type is TokenType.VAR:
            return self._parse_var_decl()
        if token.type is TokenType.IF:
            return self._parse_if()
        if token.type is TokenType.WHILE:
            return self._parse_while()
        if token.type is TokenType.FOR:
            return self._parse_for()
        if token.type is TokenType.RETURN:
            return self._parse_return()
        if token.type is TokenType.BREAK:
            self.pos += 1
            self.expect(TokenType.SEMICOLON, "break")
            return ast.Break(line=token.line)
        if token.type is TokenType.CONTINUE:
            self.pos += 1
            self.expect(TokenType.SEMICOLON, "continue")
            return ast.Continue(line=token.line)
        if token.type is TokenType.MAKE_STATIC:
            return self._parse_make_static()
        if token.type is TokenType.MAKE_DYNAMIC:
            return self._parse_make_dynamic()
        return self._parse_simple_statement()

    def _parse_var_decl(self) -> ast.VarDecl:
        start = self.expect(TokenType.VAR)
        name = self.expect(TokenType.IDENT, "var declaration").text
        init = None
        if self.accept(TokenType.ASSIGN):
            init = self.parse_expression()
        self.expect(TokenType.SEMICOLON, "var declaration")
        return ast.VarDecl(line=start.line, name=name, init=init)

    def _parse_if(self) -> ast.If:
        start = self.expect(TokenType.IF)
        self.expect(TokenType.LPAREN, "if condition")
        cond = self.parse_expression()
        self.expect(TokenType.RPAREN, "if condition")
        then_body = self.parse_block()
        else_body: tuple[ast.Stmt, ...] = ()
        if self.accept(TokenType.ELSE):
            if self.check(TokenType.IF):
                else_body = (self._parse_if(),)
            else:
                else_body = self.parse_block()
        return ast.If(line=start.line, cond=cond,
                      then_body=then_body, else_body=else_body)

    def _parse_while(self) -> ast.While:
        start = self.expect(TokenType.WHILE)
        self.expect(TokenType.LPAREN, "while condition")
        cond = self.parse_expression()
        self.expect(TokenType.RPAREN, "while condition")
        body = self.parse_block()
        return ast.While(line=start.line, cond=cond, body=body)

    def _parse_for(self) -> ast.For:
        start = self.expect(TokenType.FOR)
        self.expect(TokenType.LPAREN, "for header")
        init: ast.Stmt | None = None
        if not self.check(TokenType.SEMICOLON):
            init = self._parse_simple_clause()
        self.expect(TokenType.SEMICOLON, "for header")
        cond: ast.Expr | None = None
        if not self.check(TokenType.SEMICOLON):
            cond = self.parse_expression()
        self.expect(TokenType.SEMICOLON, "for header")
        step: ast.Stmt | None = None
        if not self.check(TokenType.RPAREN):
            step = self._parse_simple_clause()
        self.expect(TokenType.RPAREN, "for header")
        body = self.parse_block()
        return ast.For(line=start.line, init=init, cond=cond,
                       step=step, body=body)

    def _parse_return(self) -> ast.Return:
        start = self.expect(TokenType.RETURN)
        value = None
        if not self.check(TokenType.SEMICOLON):
            value = self.parse_expression()
        self.expect(TokenType.SEMICOLON, "return")
        return ast.Return(line=start.line, value=value)

    def _parse_make_static(self) -> ast.MakeStaticStmt:
        start = self.expect(TokenType.MAKE_STATIC)
        self.expect(TokenType.LPAREN, "make_static")
        names = [self.expect(TokenType.IDENT, "make_static").text]
        while self.accept(TokenType.COMMA):
            names.append(self.expect(TokenType.IDENT, "make_static").text)
        self.expect(TokenType.RPAREN, "make_static")
        policy = "cache_all"
        if self.accept(TokenType.COLON):
            policy_token = self.expect(TokenType.IDENT, "cache policy")
            if policy_token.text not in CACHE_POLICIES:
                raise ParseError(
                    f"unknown cache policy {policy_token.text!r} "
                    f"(expected one of {sorted(CACHE_POLICIES)})",
                    policy_token.line, policy_token.column,
                )
            policy = policy_token.text
        self.expect(TokenType.SEMICOLON, "make_static")
        return ast.MakeStaticStmt(line=start.line, names=tuple(names),
                                  policy=policy)

    def _parse_make_dynamic(self) -> ast.MakeDynamicStmt:
        start = self.expect(TokenType.MAKE_DYNAMIC)
        self.expect(TokenType.LPAREN, "make_dynamic")
        names = [self.expect(TokenType.IDENT, "make_dynamic").text]
        while self.accept(TokenType.COMMA):
            names.append(self.expect(TokenType.IDENT, "make_dynamic").text)
        self.expect(TokenType.RPAREN, "make_dynamic")
        self.expect(TokenType.SEMICOLON, "make_dynamic")
        return ast.MakeDynamicStmt(line=start.line, names=tuple(names))

    def _parse_simple_statement(self) -> ast.Stmt:
        statement = self._parse_simple_clause()
        self.expect(TokenType.SEMICOLON, "statement")
        return statement

    def _parse_simple_clause(self) -> ast.Stmt:
        """An assignment, store, or expression (no trailing semicolon).

        Used directly for ``for`` init/step clauses.
        """
        line = self.current.line
        expr = self.parse_expression()
        if self.accept(TokenType.ASSIGN):
            value = self.parse_expression()
            if isinstance(expr, ast.VarRef):
                return ast.Assign(line=line, name=expr.name, value=value)
            if isinstance(expr, ast.Index):
                if expr.static:
                    raise ParseError(
                        "cannot assign through a static (@) load",
                        line,
                    )
                return ast.StoreStmt(line=line, base=expr.base,
                                     index=expr.index, value=value)
            raise ParseError("invalid assignment target", line)
        return ast.ExprStmt(line=line, expr=expr)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self._parse_logical_or()

    def _parse_logical_or(self) -> ast.Expr:
        expr = self._parse_logical_and()
        while self.accept(TokenType.OROR):
            rhs = self._parse_logical_and()
            expr = ast.LogicalOr(line=expr.line, lhs=expr, rhs=rhs)
        return expr

    def _parse_logical_and(self) -> ast.Expr:
        expr = self._parse_bit_or()
        while self.accept(TokenType.ANDAND):
            rhs = self._parse_bit_or()
            expr = ast.LogicalAnd(line=expr.line, lhs=expr, rhs=rhs)
        return expr

    def _parse_bit_or(self) -> ast.Expr:
        expr = self._parse_bit_xor()
        while self.accept(TokenType.PIPE):
            rhs = self._parse_bit_xor()
            expr = ast.Binary(line=expr.line, op="|", lhs=expr, rhs=rhs)
        return expr

    def _parse_bit_xor(self) -> ast.Expr:
        expr = self._parse_bit_and()
        while self.accept(TokenType.CARET):
            rhs = self._parse_bit_and()
            expr = ast.Binary(line=expr.line, op="^", lhs=expr, rhs=rhs)
        return expr

    def _parse_bit_and(self) -> ast.Expr:
        expr = self._parse_equality()
        while self.accept(TokenType.AMP):
            rhs = self._parse_equality()
            expr = ast.Binary(line=expr.line, op="&", lhs=expr, rhs=rhs)
        return expr

    def _parse_equality(self) -> ast.Expr:
        expr = self._parse_relational()
        while self.current.type in _EQUALITY:
            op = _EQUALITY[self.current.type]
            self.pos += 1
            rhs = self._parse_relational()
            expr = ast.Binary(line=expr.line, op=op, lhs=expr, rhs=rhs)
        return expr

    def _parse_relational(self) -> ast.Expr:
        expr = self._parse_shift()
        while self.current.type in _RELATIONAL:
            op = _RELATIONAL[self.current.type]
            self.pos += 1
            rhs = self._parse_shift()
            expr = ast.Binary(line=expr.line, op=op, lhs=expr, rhs=rhs)
        return expr

    def _parse_shift(self) -> ast.Expr:
        expr = self._parse_additive()
        while self.current.type in _SHIFT:
            op = _SHIFT[self.current.type]
            self.pos += 1
            rhs = self._parse_additive()
            expr = ast.Binary(line=expr.line, op=op, lhs=expr, rhs=rhs)
        return expr

    def _parse_additive(self) -> ast.Expr:
        expr = self._parse_multiplicative()
        while self.current.type in _ADDITIVE:
            op = _ADDITIVE[self.current.type]
            self.pos += 1
            rhs = self._parse_multiplicative()
            expr = ast.Binary(line=expr.line, op=op, lhs=expr, rhs=rhs)
        return expr

    def _parse_multiplicative(self) -> ast.Expr:
        expr = self._parse_unary()
        while self.current.type in _MULTIPLICATIVE:
            op = _MULTIPLICATIVE[self.current.type]
            self.pos += 1
            rhs = self._parse_unary()
            expr = ast.Binary(line=expr.line, op=op, lhs=expr, rhs=rhs)
        return expr

    def _parse_unary(self) -> ast.Expr:
        token = self.current
        if token.type is TokenType.MINUS:
            self.pos += 1
            operand = self._parse_unary()
            return ast.Unary(line=token.line, op="-", operand=operand)
        if token.type is TokenType.BANG:
            self.pos += 1
            operand = self._parse_unary()
            return ast.Unary(line=token.line, op="!", operand=operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self.accept(TokenType.LBRACKET):
                index = self.parse_expression()
                self.expect(TokenType.RBRACKET, "index")
                expr = ast.Index(line=expr.line, base=expr, index=index)
            elif self.accept(TokenType.AT_LBRACKET):
                index = self.parse_expression()
                self.expect(TokenType.RBRACKET, "static index")
                expr = ast.Index(line=expr.line, base=expr, index=index,
                                 static=True)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self.current
        if token.type in (TokenType.INT, TokenType.FLOAT):
            self.pos += 1
            return ast.NumberLit(line=token.line, value=token.value)
        if token.type is TokenType.IDENT:
            self.pos += 1
            if self.accept(TokenType.LPAREN):
                args: list[ast.Expr] = []
                if not self.check(TokenType.RPAREN):
                    args.append(self.parse_expression())
                    while self.accept(TokenType.COMMA):
                        args.append(self.parse_expression())
                self.expect(TokenType.RPAREN, "call")
                return ast.CallExpr(line=token.line, callee=token.text,
                                    args=tuple(args))
            return ast.VarRef(line=token.line, name=token.text)
        if self.accept(TokenType.LPAREN):
            expr = self.parse_expression()
            self.expect(TokenType.RPAREN, "parenthesized expression")
            return expr
        raise ParseError(
            f"unexpected token {token.text!r}", token.line, token.column
        )


def parse_program(source: str) -> ast.Program:
    """Parse MiniC source text into an AST."""
    return Parser(tokenize(source)).parse_program()
