"""Token definitions for the MiniC lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    # Literals and names
    INT = "int"
    FLOAT = "float"
    IDENT = "ident"

    # Keywords
    FUNC = "func"
    PURE = "pure"
    VAR = "var"
    IF = "if"
    ELSE = "else"
    WHILE = "while"
    FOR = "for"
    RETURN = "return"
    BREAK = "break"
    CONTINUE = "continue"
    MAKE_STATIC = "make_static"
    MAKE_DYNAMIC = "make_dynamic"

    # Punctuation
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    AT_LBRACKET = "@["
    COMMA = ","
    SEMICOLON = ";"
    COLON = ":"

    # Operators
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    AMP = "&"
    PIPE = "|"
    CARET = "^"
    SHL = "<<"
    SHR = ">>"
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    ANDAND = "&&"
    OROR = "||"
    BANG = "!"

    EOF = "eof"


KEYWORDS = {
    "func": TokenType.FUNC,
    "pure": TokenType.PURE,
    "var": TokenType.VAR,
    "if": TokenType.IF,
    "else": TokenType.ELSE,
    "while": TokenType.WHILE,
    "for": TokenType.FOR,
    "return": TokenType.RETURN,
    "break": TokenType.BREAK,
    "continue": TokenType.CONTINUE,
    "make_static": TokenType.MAKE_STATIC,
    "make_dynamic": TokenType.MAKE_DYNAMIC,
}


@dataclass(frozen=True)
class Token:
    """A lexed token with its source position (1-based line/column)."""

    type: TokenType
    text: str
    line: int
    column: int
    value: int | float | None = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.type.name}({self.text!r})@{self.line}:{self.column}"
