"""Three-address intermediate representation used throughout the system.

The IR models a mid-level compiler representation comparable to the point in
the Multiflow pipeline where DyC operates: after traditional optimization,
before register allocation.  Programs are :class:`Module` objects containing
:class:`Function` objects, each a control-flow graph of :class:`BasicBlock`
objects holding three-address :class:`Instr` instructions.

Data memory is a flat, word-addressed :class:`Memory`; pointers are integer
addresses, so address arithmetic is ordinary integer arithmetic and
DyC-style static loads fold naturally once addresses become run-time
constants.
"""

from repro.ir.instructions import (
    Op,
    Operand,
    Reg,
    Imm,
    Hole,
    Instr,
    Move,
    UnOp,
    BinOp,
    Load,
    Store,
    Call,
    Jump,
    Branch,
    Return,
    MakeStatic,
    MakeDynamic,
    Promote,
    EnterRegion,
    ExitRegion,
    TERMINATORS,
)
from repro.ir.function import BasicBlock, Function, Module
from repro.ir.memory import Memory
from repro.ir.builder import FunctionBuilder
from repro.ir.printer import format_function, format_instr, format_module
from repro.ir.validate import verify_function, verify_module

__all__ = [
    "Op",
    "Operand",
    "Reg",
    "Imm",
    "Hole",
    "Instr",
    "Move",
    "UnOp",
    "BinOp",
    "Load",
    "Store",
    "Call",
    "Jump",
    "Branch",
    "Return",
    "MakeStatic",
    "MakeDynamic",
    "Promote",
    "EnterRegion",
    "ExitRegion",
    "TERMINATORS",
    "BasicBlock",
    "Function",
    "Module",
    "Memory",
    "FunctionBuilder",
    "format_function",
    "format_instr",
    "format_module",
    "verify_function",
    "verify_module",
]
