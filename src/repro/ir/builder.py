"""Convenience builder for constructing IR functions programmatically.

The MiniC front end lowers through this builder, and tests use it to write
small CFGs without the ceremony of instantiating blocks and instruction
dataclasses by hand.
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    Imm,
    Instr,
    Jump,
    Load,
    MakeDynamic,
    MakeStatic,
    Move,
    Op,
    Operand,
    Reg,
    Return,
    Store,
    UnOp,
)


def as_operand(value: Operand | str | int | float) -> Operand:
    """Coerce a convenience value into an operand.

    Strings become registers, numbers become immediates, and operands pass
    through unchanged.
    """
    if isinstance(value, (Reg, Imm)):
        return value
    if isinstance(value, str):
        return Reg(value)
    if isinstance(value, bool):
        return Imm(int(value))
    if isinstance(value, (int, float)):
        return Imm(value)
    raise IRError(f"cannot convert {value!r} to an operand")


class FunctionBuilder:
    """Incrementally builds a :class:`Function`.

    Typical use::

        b = FunctionBuilder("f", ("n",))
        b.binop("m", Op.MUL, "n", 2)
        b.ret("m")
        func = b.finish()
    """

    def __init__(self, name: str, params: tuple[str, ...] = ()):
        self.function = Function(name=name, params=tuple(params))
        self._current: BasicBlock | None = None
        self._temp_counter = 0
        self.label("entry")

    # ------------------------------------------------------------------
    # Block management
    # ------------------------------------------------------------------

    def label(self, name: str) -> str:
        """Start (and switch to) a new block named ``name``."""
        block = self.function.new_block(name)
        self._current = block
        return name

    def switch_to(self, name: str) -> None:
        """Resume appending to an existing block."""
        self._current = self.function.block(name)

    @property
    def current_label(self) -> str:
        return self._require_block().label

    def fresh_label(self, hint: str = "L") -> str:
        """Reserve a unique label without creating the block yet."""
        self._temp_counter += 1
        return f"{hint}{self._temp_counter}"

    def fresh_temp(self, hint: str = "t") -> str:
        self._temp_counter += 1
        return f"%{hint}{self._temp_counter}"

    def _require_block(self) -> BasicBlock:
        if self._current is None:
            raise IRError("no current block (call label() first)")
        return self._current

    def emit(self, instr: Instr) -> Instr:
        block = self._require_block()
        if block.instrs and block.instrs[-1].is_terminator:
            raise IRError(
                f"block {block.label!r} already terminated; "
                f"cannot append {type(instr).__name__}"
            )
        block.instrs.append(instr)
        if instr.is_terminator:
            self._current = None
        return instr

    @property
    def terminated(self) -> bool:
        """True when the current block is closed (or none is open)."""
        if self._current is None:
            return True
        instrs = self._current.instrs
        return bool(instrs) and instrs[-1].is_terminator

    # ------------------------------------------------------------------
    # Instruction helpers
    # ------------------------------------------------------------------

    def move(self, dest: str, src) -> Instr:
        return self.emit(Move(dest, as_operand(src)))

    def unop(self, dest: str, op: Op, src) -> Instr:
        return self.emit(UnOp(dest, op, as_operand(src)))

    def binop(self, dest: str, op: Op, lhs, rhs) -> Instr:
        return self.emit(BinOp(dest, op, as_operand(lhs), as_operand(rhs)))

    def load(self, dest: str, addr, static: bool = False) -> Instr:
        return self.emit(Load(dest, as_operand(addr), static=static))

    def store(self, addr, value) -> Instr:
        return self.emit(Store(as_operand(addr), as_operand(value)))

    def call(self, dest: str | None, callee: str, args=(),
             static: bool = False) -> Instr:
        operands = tuple(as_operand(a) for a in args)
        return self.emit(Call(dest, callee, operands, static=static))

    def jump(self, target: str) -> Instr:
        return self.emit(Jump(target))

    def branch(self, cond, if_true: str, if_false: str) -> Instr:
        return self.emit(Branch(as_operand(cond), if_true, if_false))

    def ret(self, value=None) -> Instr:
        operand = None if value is None else as_operand(value)
        return self.emit(Return(operand))

    def make_static(self, *names: str, policy: str = "cache_all") -> Instr:
        return self.emit(MakeStatic(tuple(names), policy=policy))

    def make_dynamic(self, *names: str) -> Instr:
        return self.emit(MakeDynamic(tuple(names)))

    # ------------------------------------------------------------------

    def finish(self) -> Function:
        """Finalize and return the function (verifying termination)."""
        if self._current is not None and not self.terminated:
            raise IRError(
                f"block {self._current.label!r} lacks a terminator"
            )
        return self.function
