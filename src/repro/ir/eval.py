"""Operator semantics shared by every evaluator in the system.

The static optimizer's constant folder, the BTA's set-up computations, the
runtime specializer, and the abstract-machine interpreter must all agree
exactly on arithmetic, so the semantics live here, next to the IR.

Semantics are C-flavoured:

* mixed int/float arithmetic promotes to float;
* integer division and modulus truncate toward zero (C99);
* shifts and bitwise operators require integer operands;
* comparisons yield the ints 0 or 1;
* ``NOT`` is logical not (C ``!``), yielding 0 or 1.

Division by zero raises :class:`TrapError`, mirroring a hardware trap.
"""

from __future__ import annotations

import math

from repro.errors import TrapError
from repro.ir.instructions import Op

Number = int | float


def _require_ints(op: Op, lhs: Number, rhs: Number) -> tuple[int, int]:
    if isinstance(lhs, float) or isinstance(rhs, float):
        raise TrapError(f"{op} requires integer operands, got "
                        f"{lhs!r} and {rhs!r}")
    return lhs, rhs


def _c_div(lhs: int, rhs: int) -> int:
    """C99 integer division: truncation toward zero."""
    quotient = abs(lhs) // abs(rhs)
    if (lhs < 0) != (rhs < 0):
        quotient = -quotient
    return quotient


def _c_mod(lhs: int, rhs: int) -> int:
    """C99 integer remainder: sign follows the dividend."""
    return lhs - _c_div(lhs, rhs) * rhs


def eval_binop(op: Op, lhs: Number, rhs: Number) -> Number:
    """Evaluate ``lhs op rhs`` with C-flavoured semantics."""
    if op is Op.ADD:
        return lhs + rhs
    if op is Op.SUB:
        return lhs - rhs
    if op is Op.MUL:
        return lhs * rhs
    if op is Op.DIV:
        if rhs == 0:
            raise TrapError("division by zero")
        if isinstance(lhs, int) and isinstance(rhs, int):
            return _c_div(lhs, rhs)
        return lhs / rhs
    if op is Op.MOD:
        if rhs == 0:
            raise TrapError("modulo by zero")
        if isinstance(lhs, int) and isinstance(rhs, int):
            return _c_mod(lhs, rhs)
        return math.fmod(lhs, rhs)
    if op is Op.AND:
        lhs, rhs = _require_ints(op, lhs, rhs)
        return lhs & rhs
    if op is Op.OR:
        lhs, rhs = _require_ints(op, lhs, rhs)
        return lhs | rhs
    if op is Op.XOR:
        lhs, rhs = _require_ints(op, lhs, rhs)
        return lhs ^ rhs
    if op is Op.SHL:
        lhs, rhs = _require_ints(op, lhs, rhs)
        if rhs < 0:
            raise TrapError("negative shift count")
        return lhs << rhs
    if op is Op.SHR:
        lhs, rhs = _require_ints(op, lhs, rhs)
        if rhs < 0:
            raise TrapError("negative shift count")
        return lhs >> rhs
    if op is Op.EQ:
        return int(lhs == rhs)
    if op is Op.NE:
        return int(lhs != rhs)
    if op is Op.LT:
        return int(lhs < rhs)
    if op is Op.LE:
        return int(lhs <= rhs)
    if op is Op.GT:
        return int(lhs > rhs)
    if op is Op.GE:
        return int(lhs >= rhs)
    raise TrapError(f"{op} is not a binary operator")


def eval_unop(op: Op, src: Number) -> Number:
    """Evaluate ``op src``."""
    if op is Op.NEG:
        return -src
    if op is Op.NOT:
        return int(not src)
    raise TrapError(f"{op} is not a unary operator")


def is_power_of_two(value: Number) -> bool:
    """True for positive integer powers of two (strength-reduction test)."""
    return isinstance(value, int) and value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Exponent of an exact power of two."""
    return value.bit_length() - 1


#: Largest magnitude an integer may have and still be encoded in an Alpha
#: operate-format literal field (8-bit zero-extended literal).  Used by the
#: strength-reduction/immediate-fitting stage (§2.2.7: "attempt to fit
#: integer static operands into instruction immediate fields").
IMMEDIATE_LIMIT = 255


def fits_immediate(value: Number) -> bool:
    """True when a static operand fits an instruction immediate field."""
    return isinstance(value, int) and 0 <= value <= IMMEDIATE_LIMIT
