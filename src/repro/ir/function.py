"""Basic blocks, functions, and modules."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IRError
from repro.ir.instructions import Instr, TERMINATORS


@dataclass
class BasicBlock:
    """A labelled straight-line sequence of instructions.

    The final instruction must be a terminator (``Jump``, ``Branch``,
    ``Return``, ``Promote``, or ``EnterRegion``); everything before it must
    not be.  Blocks are mutable so optimization passes can rewrite them in
    place.
    """

    label: str
    instrs: list[Instr] = field(default_factory=list)

    @property
    def terminator(self) -> Instr:
        if not self.instrs:
            raise IRError(f"block {self.label!r} is empty")
        last = self.instrs[-1]
        if not isinstance(last, TERMINATORS):
            raise IRError(
                f"block {self.label!r} does not end in a terminator "
                f"(ends with {type(last).__name__})"
            )
        return last

    @property
    def body(self) -> list[Instr]:
        """Instructions excluding the terminator."""
        return self.instrs[:-1]

    def successors(self) -> tuple[str, ...]:
        return self.terminator.successors()

    def __iter__(self):
        return iter(self.instrs)

    def __len__(self) -> int:
        return len(self.instrs)


@dataclass
class Function:
    """A function: parameters plus a CFG of basic blocks.

    ``blocks`` preserves insertion order; the entry block is ``entry``
    (defaulting to the first inserted block).  Variables are dynamically
    typed at run time; ``params`` are bound positionally at call time.
    """

    name: str
    params: tuple[str, ...]
    blocks: dict[str, BasicBlock] = field(default_factory=dict)
    entry: str | None = None
    #: Code-buffer version, bumped whenever already-executed code is
    #: patched in place (the specializer threading jumps or adding lazily
    #: specialized blocks).  Translation caches — e.g. the direct-threaded
    #: backend in :mod:`repro.machine.threaded` — key on it to know when
    #: their compiled closures are stale.
    version: int = 0

    def bump_version(self) -> None:
        """Invalidate any cached translations of this function's code."""
        self.version += 1

    def add_block(self, block: BasicBlock) -> BasicBlock:
        if block.label in self.blocks:
            raise IRError(
                f"duplicate block label {block.label!r} in {self.name!r}"
            )
        self.blocks[block.label] = block
        if self.entry is None:
            self.entry = block.label
        return block

    def new_block(self, label: str) -> BasicBlock:
        return self.add_block(BasicBlock(label))

    def block(self, label: str) -> BasicBlock:
        try:
            return self.blocks[label]
        except KeyError:
            raise IRError(
                f"no block {label!r} in function {self.name!r}"
            ) from None

    @property
    def entry_block(self) -> BasicBlock:
        if self.entry is None:
            raise IRError(f"function {self.name!r} has no blocks")
        return self.blocks[self.entry]

    def predecessors(self) -> dict[str, list[str]]:
        """Map each block label to the labels of its CFG predecessors."""
        preds: dict[str, list[str]] = {label: [] for label in self.blocks}
        for label, block in self.blocks.items():
            for succ in block.successors():
                if succ in preds:
                    preds[succ].append(label)
        return preds

    def instructions(self):
        """Iterate over (block, index, instruction) triples."""
        for block in self.blocks.values():
            for index, instr in enumerate(block.instrs):
                yield block, index, instr

    def instruction_count(self) -> int:
        return sum(len(block) for block in self.blocks.values())

    def remove_unreachable_blocks(self) -> int:
        """Drop blocks not reachable from the entry; return count removed."""
        reachable: set[str] = set()
        worklist = [self.entry] if self.entry else []
        while worklist:
            label = worklist.pop()
            if label in reachable or label not in self.blocks:
                continue
            reachable.add(label)
            worklist.extend(self.blocks[label].successors())
        dead = [label for label in self.blocks if label not in reachable]
        for label in dead:
            del self.blocks[label]
        return len(dead)


@dataclass
class Module:
    """A whole program: an ordered collection of functions.

    ``main`` names the program entry point used by the whole-program
    drivers; library modules (e.g. a lone kernel function) may leave it
    unset.
    """

    functions: dict[str, Function] = field(default_factory=dict)
    main: str | None = None

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise IRError(f"duplicate function {function.name!r}")
        self.functions[function.name] = function
        if self.main is None and function.name == "main":
            self.main = function.name
        return function

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"no function named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.functions

    def instruction_count(self) -> int:
        return sum(f.instruction_count() for f in self.functions.values())
