"""IR instruction set.

Instructions are small immutable dataclasses.  Operands are either
:class:`Reg` (a named virtual register / variable), :class:`Imm` (an
immediate constant), or — only inside dynamic-compilation templates —
:class:`Hole` (a placeholder for a value that becomes known at dynamic
compile time, per DyC's template/set-up split).

The instruction set is deliberately small and C-flavoured:

======================  =====================================================
``Move d, s``           copy (register or immediate source)
``UnOp d, op, s``       unary arithmetic/logic
``BinOp d, op, a, b``   binary arithmetic/logic/comparison
``Load d, [a]``         load from flat memory; ``static=True`` marks DyC's
                        ``@`` annotation (load from invariant data)
``Store [a], v``        store to flat memory
``Call d, f(args)``     call; ``static=True`` marks a ``pure``-annotated call
``Jump L``              unconditional terminator
``Branch c, Lt, Lf``    conditional terminator
``Return v``            function return terminator
``MakeStatic``          DyC annotation: begin specializing on variables
``MakeDynamic``         DyC annotation: stop specializing on variables
``Promote``             terminator in *specialized* code only: internal
                        dynamic-to-static promotion point (lazy dispatch)
``EnterRegion``         terminator in *dynamically compiled host* code only:
                        dispatch into a dynamic region's code cache
======================  =====================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Op(enum.Enum):
    """Operators for ``UnOp`` and ``BinOp``.

    Comparison operators yield the integers 0 or 1, as in C.  Arithmetic is
    polymorphic over ints and floats; ``DIV``/``MOD`` follow C semantics
    (truncation toward zero) when both operands are integers.
    """

    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    NEG = "neg"
    NOT = "not"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Binary operators (usable with ``BinOp``).
BINARY_OPS = frozenset({
    Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.AND, Op.OR, Op.XOR,
    Op.SHL, Op.SHR, Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE,
})

#: Unary operators (usable with ``UnOp``).
UNARY_OPS = frozenset({Op.NEG, Op.NOT})

#: Commutative binary operators (used by CSE and the ZCP planner).
COMMUTATIVE_OPS = frozenset({
    Op.ADD, Op.MUL, Op.AND, Op.OR, Op.XOR, Op.EQ, Op.NE,
})

#: Comparison operators (always produce an int 0/1).
COMPARISON_OPS = frozenset({Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE})


@dataclass(frozen=True)
class Reg:
    """A named virtual register (a source variable or compiler temporary)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Imm:
    """An immediate constant operand (int or float)."""

    value: int | float

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Hole:
    """A template placeholder filled at dynamic compile time.

    ``name`` identifies the static variable whose run-time-constant value
    fills the hole.  Holes never appear in executable code; the runtime
    specializer replaces each with an :class:`Imm` (or a register when the
    value cannot be encoded as an immediate).
    """

    name: str

    def __str__(self) -> str:
        return f"<{self.name}>"


Operand = Reg | Imm | Hole


def operand_regs(operand: Operand) -> tuple[str, ...]:
    """Names of registers read by ``operand`` (empty for Imm/Hole)."""
    if isinstance(operand, Reg):
        return (operand.name,)
    return ()


class Instr:
    """Base class for IR instructions.

    Subclasses provide ``uses()`` (register names read) and ``defs()``
    (register names written) so that dataflow analyses can treat all
    instructions uniformly.
    """

    def uses(self) -> tuple[str, ...]:
        return ()

    def defs(self) -> tuple[str, ...]:
        return ()

    def operands(self) -> tuple[Operand, ...]:
        return ()

    @property
    def is_terminator(self) -> bool:
        return isinstance(self, TERMINATORS)

    def successors(self) -> tuple[str, ...]:
        """Labels of successor blocks (terminators only)."""
        return ()


@dataclass(frozen=True)
class Move(Instr):
    """``dest = src`` — register-to-register copy or constant materialize."""

    dest: str
    src: Operand

    def uses(self) -> tuple[str, ...]:
        return operand_regs(self.src)

    def defs(self) -> tuple[str, ...]:
        return (self.dest,)

    def operands(self) -> tuple[Operand, ...]:
        return (self.src,)


@dataclass(frozen=True)
class UnOp(Instr):
    """``dest = op src``."""

    dest: str
    op: Op
    src: Operand

    def uses(self) -> tuple[str, ...]:
        return operand_regs(self.src)

    def defs(self) -> tuple[str, ...]:
        return (self.dest,)

    def operands(self) -> tuple[Operand, ...]:
        return (self.src,)


@dataclass(frozen=True)
class BinOp(Instr):
    """``dest = lhs op rhs``."""

    dest: str
    op: Op
    lhs: Operand
    rhs: Operand

    def uses(self) -> tuple[str, ...]:
        return operand_regs(self.lhs) + operand_regs(self.rhs)

    def defs(self) -> tuple[str, ...]:
        return (self.dest,)

    def operands(self) -> tuple[Operand, ...]:
        return (self.lhs, self.rhs)


@dataclass(frozen=True)
class Load(Instr):
    """``dest = memory[addr]``.

    ``static=True`` corresponds to DyC's ``@`` annotation: the programmer
    asserts the loaded location is invariant, so when ``addr`` is a run-time
    constant the load may be performed once at dynamic compile time.
    """

    dest: str
    addr: Operand
    static: bool = False

    def uses(self) -> tuple[str, ...]:
        return operand_regs(self.addr)

    def defs(self) -> tuple[str, ...]:
        return (self.dest,)

    def operands(self) -> tuple[Operand, ...]:
        return (self.addr,)


@dataclass(frozen=True)
class Store(Instr):
    """``memory[addr] = value``."""

    addr: Operand
    value: Operand

    def uses(self) -> tuple[str, ...]:
        return operand_regs(self.addr) + operand_regs(self.value)

    def operands(self) -> tuple[Operand, ...]:
        return (self.addr, self.value)


@dataclass(frozen=True)
class Call(Instr):
    """``dest = callee(args...)``; ``dest`` may be ``None`` for void calls.

    ``static=True`` corresponds to DyC's ``pure``-function annotation: the
    programmer asserts the callee is side-effect free, so a call with all
    run-time-constant arguments may be evaluated once at dynamic compile
    time (memoized through dynamic compilation, per §2.2.6).
    """

    dest: str | None
    callee: str
    args: tuple[Operand, ...]
    static: bool = False

    def uses(self) -> tuple[str, ...]:
        names: list[str] = []
        for arg in self.args:
            names.extend(operand_regs(arg))
        return tuple(names)

    def defs(self) -> tuple[str, ...]:
        return (self.dest,) if self.dest is not None else ()

    def operands(self) -> tuple[Operand, ...]:
        return self.args


@dataclass(frozen=True)
class Jump(Instr):
    """Unconditional jump to ``target``."""

    target: str

    def successors(self) -> tuple[str, ...]:
        return (self.target,)


@dataclass(frozen=True)
class Branch(Instr):
    """Conditional branch: nonzero ``cond`` goes to ``if_true``."""

    cond: Operand
    if_true: str
    if_false: str

    def uses(self) -> tuple[str, ...]:
        return operand_regs(self.cond)

    def operands(self) -> tuple[Operand, ...]:
        return (self.cond,)

    def successors(self) -> tuple[str, ...]:
        return (self.if_true, self.if_false)


@dataclass(frozen=True)
class Return(Instr):
    """Return from the current function, optionally with a value."""

    value: Operand | None = None

    def uses(self) -> tuple[str, ...]:
        if self.value is None:
            return ()
        return operand_regs(self.value)

    def operands(self) -> tuple[Operand, ...]:
        return (self.value,) if self.value is not None else ()


@dataclass(frozen=True)
class MakeStatic(Instr):
    """DyC annotation: start specializing downstream code on ``names``.

    ``policy`` selects the dispatch/caching policy for promotions of these
    variables (see :mod:`repro.bta.annotations`).  The annotation is a
    no-op when executed by the plain interpreter (the statically compiled
    configuration ignores annotations, per §3.3 of the paper).
    """

    names: tuple[str, ...]
    policy: str = "cache_all"

    # Note: annotations deliberately report no uses.  A variable listed in
    # ``make_static`` before its first assignment (the paper's Figure 2
    # annotates the loop indices crow/ccol this way) is not live at the
    # annotation; the BTA keys the region-entry promotion on the annotated
    # variables that *are* live there.


@dataclass(frozen=True)
class MakeDynamic(Instr):
    """DyC annotation: stop specializing on ``names`` downstream."""

    names: tuple[str, ...]


@dataclass(frozen=True)
class Promote(Instr):
    """Terminator in specialized code: internal dynamic-to-static promotion.

    Executing it dispatches on the current values of ``keys`` through the
    promotion point's code cache, lazily specializing the continuation the
    first time each key tuple is seen (multi-stage specialization, §2.2.2).
    """

    region_id: int
    point_id: int
    keys: tuple[str, ...]
    policy: str = "cache_all"
    #: Unique id of this *emitted instance* (distinct specializations of
    #: the same promotion point get distinct ids); the runtime uses it to
    #: find the pending continuation and its per-instance code cache.
    emission_id: int = -1

    def uses(self) -> tuple[str, ...]:
        return self.keys


@dataclass(frozen=True)
class EnterRegion(Instr):
    """Terminator in host code: dispatch into a dynamic region.

    ``keys`` are the variables promoted at region entry; their current
    values select (or create) a specialized version in the region's code
    cache.  ``exits`` lists the host-function labels at which the region
    may resume, so the host CFG remains well formed.
    """

    region_id: int
    keys: tuple[str, ...]
    exits: tuple[str, ...] = field(default=())
    policy: str = "cache_all"

    def uses(self) -> tuple[str, ...]:
        return self.keys

    def successors(self) -> tuple[str, ...]:
        return self.exits


@dataclass(frozen=True)
class ExitRegion(Instr):
    """Terminator in *specialized* code only: leave the dynamic region.

    ``index`` selects which host-function exit label (of the owning
    ``EnterRegion``'s ``exits``) execution resumes at.
    """

    index: int


#: Instruction classes that terminate a basic block.
TERMINATORS = (Jump, Branch, Return, Promote, EnterRegion, ExitRegion)
