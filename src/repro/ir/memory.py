"""Flat, word-addressed data memory for the abstract machine.

Pointers are plain integer addresses, so MiniC pointer arithmetic is
ordinary integer arithmetic on the IR level.  Address 0 is reserved as the
null pointer: allocations start at word 1 and loads/stores of address 0
fault, catching C-style null dereferences.

The memory also supports *write logging* (used by the optional annotation
checker to verify that ``@``-annotated loads really read invariant data).
"""

from __future__ import annotations

from repro.errors import MemoryFault

Word = int | float


class Memory:
    """A growable array of words (Python ints/floats)."""

    def __init__(self) -> None:
        # Slot 0 is the never-valid null word.
        self._words: list[Word] = [0]
        self._watch: set[int] | None = None
        self._watch_hits: list[int] = []

    def __len__(self) -> int:
        return len(self._words)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def alloc(self, count: int, fill: Word = 0) -> int:
        """Allocate ``count`` words initialized to ``fill``; return base."""
        if count < 0:
            raise MemoryFault(f"cannot allocate {count} words")
        base = len(self._words)
        self._words.extend([fill] * count)
        return base

    def alloc_array(self, values) -> int:
        """Allocate and initialize consecutive words; return base address."""
        values = list(values)
        base = len(self._words)
        self._words.extend(values)
        return base

    def alloc_matrix(self, rows) -> int:
        """Allocate a row-major 2-D array from an iterable of rows."""
        flat: list[Word] = []
        width: int | None = None
        for row in rows:
            row = list(row)
            if width is None:
                width = len(row)
            elif len(row) != width:
                raise MemoryFault("ragged matrix rows")
            flat.extend(row)
        return self.alloc_array(flat)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def _check(self, addr: Word) -> int:
        if isinstance(addr, float):
            if not addr.is_integer():
                raise MemoryFault(f"non-integer address {addr!r}")
            addr = int(addr)
        if addr <= 0:
            raise MemoryFault(f"null/negative address {addr}")
        if addr >= len(self._words):
            raise MemoryFault(
                f"address {addr} out of bounds (size {len(self._words)})"
            )
        return addr

    def words(self) -> tuple[Word, ...]:
        """Immutable snapshot of the entire memory contents.

        Used by the eval-harness memoizer to fingerprint a workload's
        prepared inputs.
        """
        return tuple(self._words)

    def load(self, addr: Word) -> Word:
        return self._words[self._check(addr)]

    def store(self, addr: Word, value: Word) -> None:
        addr = self._check(addr)
        if self._watch is not None and addr in self._watch:
            self._watch_hits.append(addr)
        self._words[addr] = value

    def read_array(self, base: int, count: int) -> list[Word]:
        """Read ``count`` consecutive words starting at ``base``."""
        if count == 0:
            return []
        self._check(base)
        self._check(base + count - 1)
        return self._words[base:base + count]

    def write_array(self, base: int, values) -> None:
        """Write consecutive words starting at ``base``."""
        for offset, value in enumerate(values):
            self.store(base + offset, value)

    # ------------------------------------------------------------------
    # Invariance watching (annotation checker support)
    # ------------------------------------------------------------------

    def watch(self, addr: int) -> None:
        """Record ``addr`` as asserted-invariant; stores to it are logged."""
        if self._watch is None:
            self._watch = set()
        self._watch.add(self._check(addr))

    @property
    def watch_violations(self) -> list[int]:
        """Addresses asserted invariant that were subsequently stored to."""
        return list(self._watch_hits)
