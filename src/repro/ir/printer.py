"""Textual rendering of IR for debugging, examples, and golden tests."""

from __future__ import annotations

from repro.ir.function import Function, Module
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    EnterRegion,
    ExitRegion,
    Instr,
    Jump,
    Load,
    MakeDynamic,
    MakeStatic,
    Move,
    Promote,
    Return,
    Store,
    UnOp,
)


def format_instr(instr: Instr) -> str:
    """Render a single instruction as one line of assembly-like text."""
    if isinstance(instr, Move):
        return f"{instr.dest} = {instr.src}"
    if isinstance(instr, UnOp):
        return f"{instr.dest} = {instr.op} {instr.src}"
    if isinstance(instr, BinOp):
        return f"{instr.dest} = {instr.lhs} {instr.op} {instr.rhs}"
    if isinstance(instr, Load):
        marker = "@" if instr.static else ""
        return f"{instr.dest} = load{marker} [{instr.addr}]"
    if isinstance(instr, Store):
        return f"store [{instr.addr}], {instr.value}"
    if isinstance(instr, Call):
        marker = "@" if instr.static else ""
        args = ", ".join(str(a) for a in instr.args)
        prefix = f"{instr.dest} = " if instr.dest is not None else ""
        return f"{prefix}call{marker} {instr.callee}({args})"
    if isinstance(instr, Jump):
        return f"jump {instr.target}"
    if isinstance(instr, Branch):
        return f"branch {instr.cond} ? {instr.if_true} : {instr.if_false}"
    if isinstance(instr, Return):
        if instr.value is None:
            return "return"
        return f"return {instr.value}"
    if isinstance(instr, MakeStatic):
        names = ", ".join(instr.names)
        return f"make_static({names}) [{instr.policy}]"
    if isinstance(instr, MakeDynamic):
        names = ", ".join(instr.names)
        return f"make_dynamic({names})"
    if isinstance(instr, Promote):
        keys = ", ".join(instr.keys)
        return (
            f"promote region={instr.region_id} point={instr.point_id} "
            f"({keys}) [{instr.policy}]"
        )
    if isinstance(instr, ExitRegion):
        return f"exit_region {instr.index}"
    if isinstance(instr, EnterRegion):
        keys = ", ".join(instr.keys)
        exits = ", ".join(instr.exits)
        return (
            f"enter_region {instr.region_id} ({keys}) "
            f"[{instr.policy}] exits: {exits}"
        )
    return repr(instr)


def format_function(function: Function) -> str:
    """Render a function as labelled blocks of instructions."""
    lines = [f"func {function.name}({', '.join(function.params)}):"]
    for label, block in function.blocks.items():
        suffix = "  ; entry" if label == function.entry else ""
        lines.append(f"{label}:{suffix}")
        for instr in block.instrs:
            lines.append(f"    {format_instr(instr)}")
    return "\n".join(lines)


def format_module(module: Module) -> str:
    """Render every function in a module."""
    parts = [format_function(f) for f in module.functions.values()]
    return "\n\n".join(parts)
