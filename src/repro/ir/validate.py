"""Structural verifier for IR functions and modules.

The verifier enforces the invariants the rest of the system relies on:
every block ends in exactly one terminator, branch targets exist, the entry
block exists, operands are well formed (no ``Hole`` outside templates), and
annotation pseudo-instructions are not terminators.
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.function import Function, Module
from repro.ir.instructions import Call, Hole, Instr, TERMINATORS


def verify_function(function: Function, allow_holes: bool = False) -> None:
    """Raise :class:`IRError` if ``function`` is structurally invalid."""
    if not function.blocks:
        raise IRError(f"function {function.name!r} has no blocks")
    if function.entry not in function.blocks:
        raise IRError(
            f"function {function.name!r}: entry {function.entry!r} "
            "is not a block"
        )
    seen_params = set(function.params)
    if len(seen_params) != len(function.params):
        raise IRError(
            f"function {function.name!r} has duplicate parameters"
        )
    for label, block in function.blocks.items():
        if block.label != label:
            raise IRError(
                f"function {function.name!r}: block keyed {label!r} "
                f"is labelled {block.label!r}"
            )
        _verify_block(function, block, allow_holes)


def _verify_block(function: Function, block, allow_holes: bool) -> None:
    name = f"{function.name}.{block.label}"
    if not block.instrs:
        raise IRError(f"block {name} is empty")
    for index, instr in enumerate(block.instrs):
        is_last = index == len(block.instrs) - 1
        if isinstance(instr, TERMINATORS) and not is_last:
            raise IRError(
                f"block {name}: terminator "
                f"{type(instr).__name__} at position {index} "
                "is not the final instruction"
            )
        if is_last and not isinstance(instr, TERMINATORS):
            raise IRError(
                f"block {name} does not end in a terminator "
                f"(ends with {type(instr).__name__})"
            )
        _verify_operands(name, instr, allow_holes)
    for succ in block.successors():
        if succ not in function.blocks:
            raise IRError(
                f"block {name}: successor {succ!r} does not exist"
            )


def _verify_operands(where: str, instr: Instr, allow_holes: bool) -> None:
    for operand in instr.operands():
        if isinstance(operand, Hole) and not allow_holes:
            raise IRError(
                f"{where}: hole operand {operand} outside a template"
            )


def unresolved_calls(module: Module) -> list[tuple[str, str, int, str]]:
    """All calls whose callee is neither a module function nor an
    intrinsic.

    Returns ``(function, block, index, callee)`` tuples.  The machine's
    intrinsic table is imported lazily to avoid a circular import
    (``repro.machine`` executes IR, which lives below it).
    """
    from repro.machine.intrinsics import INTRINSICS

    problems: list[tuple[str, str, int, str]] = []
    for function in module.functions.values():
        for block, index, instr in function.instructions():
            if not isinstance(instr, Call):
                continue
            callee = instr.callee
            if callee in module.functions or callee in INTRINSICS:
                continue
            problems.append((function.name, block.label, index, callee))
    return problems


def verify_module(module: Module, check_calls: bool = True) -> None:
    """Verify every function and check that calls resolve.

    Every call must name a module function or a known intrinsic; pass
    ``check_calls=False`` to skip that (the lint driver reports the same
    condition as a diagnostic instead of an exception).
    """
    for function in module.functions.values():
        verify_function(function)
    if module.main is not None and module.main not in module.functions:
        raise IRError(f"module main {module.main!r} is not defined")
    if check_calls:
        for fn_name, label, index, callee in unresolved_calls(module):
            raise IRError(
                f"{fn_name}.{label}[{index}]: call to {callee!r} does "
                "not resolve to a module function or intrinsic"
            )


def verify_dataflow(function: Function) -> None:
    """Raise :class:`IRError` if any use is not definitely assigned.

    This is the dataflow half of the verifier: every ``Reg`` use in a
    reachable block must be dominated by a definition or covered by a
    definite assignment on all paths (parameters count as assigned).
    Unreachable blocks are skipped — optimization passes legitimately
    leave them behind mid-pipeline; :func:`repro.analysis.defuse.
    unreachable_blocks` reports them separately for the linter.
    """
    from repro.analysis.defuse import use_before_def

    problems = use_before_def(function)
    if problems:
        detail = "; ".join(p.describe() for p in problems)
        raise IRError(
            f"function {function.name!r} fails def-before-use: {detail}"
        )
