"""Static analyzer for staged specialization (``python -m repro.lint``).

Three layers of compile-time checking before the runtime specializer
ever sees a program:

* a **dataflow IR verifier** (DYC000-003): structural invariants,
  definite assignment of every use, reachability, call resolution;
* an **annotation safety linter** (DYC101-105): the hazard patterns the
  paper warns about in its unsafe annotations — stale
  ``cache_one_unchecked`` slots, dead annotations, ``@``-loads aliasing
  region stores, unbounded multi-way unrolling, conflicting policies;
* a **staged-plan consistency checker** (DYC201): ZCP/DAE plans
  cross-validated against liveness, so a planner bug fails at static
  compile time instead of miscompiling at dynamic compile time.
"""

from repro.lint.diagnostics import CODES, Diagnostic, Severity, has_errors
from repro.lint.engine import lint_module, lint_source, select_codes

__all__ = [
    "CODES",
    "Diagnostic",
    "Severity",
    "has_errors",
    "lint_module",
    "lint_source",
    "select_codes",
]
