"""Command-line linter: ``python -m repro.lint [options] files...``.

Accepts MiniC files directly and Python files with embedded MiniC
programs (top-level string constants, as the examples and workloads
use).  Exit status: 0 clean, 1 diagnostics reported (errors, or any
finding under ``--strict``), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import dataclasses

from repro.config import ALL_ON
from repro.lint.diagnostics import (
    CODES,
    JSON_SCHEMA_VERSION,
    Severity,
    has_errors,
)
from repro.lint.engine import lint_source
from repro.lint.extract import embedded_sources_from_file


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Staged-specialization static analyzer "
                    "(dataflow verifier + annotation safety linter + "
                    "plan consistency checker).",
    )
    parser.add_argument(
        "files", nargs="*",
        help="MiniC files (.minic), or Python files with embedded "
             "MiniC string constants",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="treat warnings as errors (nonzero exit on any finding)",
    )
    parser.add_argument(
        "--select", metavar="CODES", default=None,
        help="comma-separated code prefixes or inclusive ranges to "
             "report (e.g. DYC001,DYC1 or DYC100-DYC199)",
    )
    parser.add_argument(
        "--interprocedural", action="store_true",
        help="also run the DYC3xx specialization-safety prover "
             "(whole-module call-graph effect summaries)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit diagnostics as JSON on stdout "
             f"(schema_version {JSON_SCHEMA_VERSION})",
    )
    parser.add_argument(
        "--codes", action="store_true",
        help="print the diagnostic code table and exit",
    )
    parser.add_argument(
        "--inject-plan-fault", action="store_true",
        help="self-test: corrupt every staged ZCP/DAE plan before the "
             "consistency check, proving DYC201 catches planner bugs",
    )
    parser.add_argument(
        "--codegen-budget", type=int, default=0, metavar="CHARS",
        help="arm the DYC210 emitted-source size estimate with this "
             "character budget (0 disables it)",
    )
    return parser


def _valid_selector(selector: str) -> bool:
    """A selector is a known-code prefix or an inclusive ``LOW-HIGH``
    range whose endpoints parse as codes and that covers at least one
    known code."""
    if "-" in selector:
        low, _, high = selector.partition("-")
        if not (low.startswith("DYC") and high.startswith("DYC")):
            return False
        return any(low <= code <= high for code in CODES)
    return any(code.startswith(selector) for code in CODES)


def _sources_for(path: str) -> list[tuple[str, str]]:
    """``(source_id, minic_text)`` pairs for one input file."""
    if path.endswith(".py"):
        return [
            (f"{path}::{name}", text)
            for name, text in embedded_sources_from_file(path)
        ]
    with open(path, "r", encoding="utf-8") as handle:
        return [(path, handle.read())]


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.codes:
        width = max(len(code) for code in CODES)
        for code, description in sorted(CODES.items()):
            print(f"{code:<{width}}  {description}")
        return 0

    if not args.files:
        parser.print_usage(sys.stderr)
        print("error: no input files", file=sys.stderr)
        return 2

    select = None
    if args.select:
        select = tuple(
            part.strip() for part in args.select.split(",") if part.strip()
        )
        unknown = [
            part for part in select if not _valid_selector(part)
        ]
        if unknown:
            print(f"error: unknown code selector(s): "
                  f"{', '.join(unknown)}", file=sys.stderr)
            return 2

    config = ALL_ON
    if args.codegen_budget:
        config = dataclasses.replace(
            config, codegen_source_budget=args.codegen_budget
        )

    all_diags = []
    checked = 0
    started = time.perf_counter()
    for path in args.files:
        try:
            sources = _sources_for(path)
        except (OSError, SyntaxError) as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return 2
        for source_id, text in sources:
            checked += 1
            diags = lint_source(
                text, config=config, select=select,
                inject_plan_fault=args.inject_plan_fault,
                interprocedural=args.interprocedural,
            )
            all_diags.extend(d.with_source(source_id) for d in diags)
    elapsed = time.perf_counter() - started

    if args.as_json:
        print(json.dumps({
            "schema_version": JSON_SCHEMA_VERSION,
            "strict": args.strict,
            "interprocedural": args.interprocedural,
            "programs_checked": checked,
            "wall_time_seconds": round(elapsed, 4),
            "diagnostics": [d.to_json() for d in all_diags],
        }, indent=2))
    else:
        for diag in all_diags:
            print(diag.format())
        errors = sum(
            1 for d in all_diags if d.severity is Severity.ERROR
        )
        warnings = len(all_diags) - errors
        print(f"{checked} program(s) checked: "
              f"{errors} error(s), {warnings} warning(s) "
              f"in {elapsed:.2f}s")

    return 1 if has_errors(all_diags, strict=args.strict) else 0


if __name__ == "__main__":
    sys.exit(main())
