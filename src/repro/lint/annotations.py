"""DYC1xx: annotation safety lints.

DyC's annotations are unsafe programmer assertions (paper §2): ``@``
loads assert invariant memory, ``cache_one_unchecked`` asserts the
promoted values never change, and ``make_static`` on loop induction
variables requests complete multi-way unrolling.  These checks walk the
BTA's results and flag the hazard patterns the paper itself warns about
(stale unchecked dispatch, §2.2.3; unbounded specialization through
dynamic loop exits, §2.2.2; invariance violated by region stores,
§2.2.6).
"""

from __future__ import annotations

from repro.analysis.cfg import natural_loops
from repro.analysis.defuse import unreachable_blocks
from repro.analysis.effects import (
    address_root as _address_root,
    def_index as _def_index,
)
from repro.bta.facts import InstrClass, RegionInfo
from repro.config import OptConfig
from repro.ir.function import Function
from repro.ir.instructions import (
    Branch,
    Load,
    MakeStatic,
    Store,
)
from repro.lint.diagnostics import Diagnostic, Severity


# ----------------------------------------------------------------------
# Function-level annotation checks (DYC102, DYC105)
# ----------------------------------------------------------------------

def _annotation_sites(function: Function
                      ) -> list[tuple[str, int, MakeStatic]]:
    dead = unreachable_blocks(function)
    sites = []
    for block in function.blocks.values():
        if block.label in dead:
            continue
        for index, instr in enumerate(block.instrs):
            if isinstance(instr, MakeStatic):
                sites.append((block.label, index, instr))
    return sites


def check_unchecked_sources(function: Function) -> list[Diagnostic]:
    """DYC102: ``cache_one_unchecked`` with >1 reachable value source.

    The unchecked policy dispatches through a single unguarded slot
    (§2.2.3); when two different ``make_static`` sites can fill it, the
    second reaching site silently reuses code specialized for the
    first site's values.
    """
    sites = _annotation_sites(function)
    by_var: dict[str, list[tuple[str, int, MakeStatic]]] = {}
    for site in sites:
        for name in site[2].names:
            by_var.setdefault(name, []).append(site)
    diags: list[Diagnostic] = []
    for name, var_sites in by_var.items():
        if len(var_sites) < 2:
            continue
        if not any(s[2].policy == "cache_one_unchecked"
                   for s in var_sites):
            continue
        label, index, _ = var_sites[1]
        others = ", ".join(s[0] for s in var_sites)
        diags.append(Diagnostic(
            code="DYC102",
            severity=Severity.WARNING,
            message=f"variable {name!r} uses cache_one_unchecked but has "
                    f"{len(var_sites)} reachable make_static value "
                    f"sources ({others}); the unchecked slot will "
                    "silently reuse stale code",
            function=function.name,
            block=label,
            index=index,
        ))
    return diags


def check_policy_conflicts(function: Function) -> list[Diagnostic]:
    """DYC105: one variable re-annotated under a different policy."""
    sites = _annotation_sites(function)
    policies: dict[str, dict[str, tuple[str, int]]] = {}
    for label, index, instr in sites:
        for name in instr.names:
            policies.setdefault(name, {}).setdefault(
                instr.policy, (label, index)
            )
    diags: list[Diagnostic] = []
    for name, by_policy in policies.items():
        if len(by_policy) < 2:
            continue
        label, index = sorted(by_policy.values())[-1]
        listing = ", ".join(sorted(by_policy))
        diags.append(Diagnostic(
            code="DYC105",
            severity=Severity.WARNING,
            message=f"variable {name!r} is annotated under conflicting "
                    f"cache policies ({listing}); the binding-time "
                    "analysis keeps only the last one seen",
            function=function.name,
            block=label,
            index=index,
        ))
    return diags


# ----------------------------------------------------------------------
# Region-level annotation checks (DYC101, DYC103, DYC104)
# ----------------------------------------------------------------------

def check_dead_annotations(function: Function,
                           regions: list[RegionInfo]) -> list[Diagnostic]:
    """DYC101: annotated variables the specialized code never reads.

    Every annotated variable should be used by at least one real
    instruction (annotations themselves report no uses); an unused one
    still costs a promotion key slot at every dispatch and widens the
    specialization cache for nothing.
    """
    used: set[str] = set()
    for _, _, instr in function.instructions():
        used.update(instr.uses())
    diags: list[Diagnostic] = []
    for region in regions:
        for name in sorted(region.policies):
            if name in used:
                continue
            diags.append(Diagnostic(
                code="DYC101",
                severity=Severity.WARNING,
                message=f"make_static({name}) is dead: the variable is "
                        "never used inside (or after) its dynamic "
                        "region",
                function=function.name,
                block=region.entry_block,
            ))
    return diags


def check_static_load_stores(function: Function,
                             regions: list[RegionInfo]
                             ) -> list[Diagnostic]:
    """DYC103: ``@``-loads from arrays the same region stores into.

    The ``@`` annotation asserts the loaded location is invariant, so
    the specializer folds it once at dynamic compile time (§2.2.6).  A
    store in the same region whose address derives from the same base
    variable makes that assertion suspect: the cached value can go
    stale within a single region execution.
    """
    defs = _def_index(function)
    diags: list[Diagnostic] = []
    for region in regions:
        store_roots: dict[str, tuple[str, int]] = {}
        loads: list[tuple[str, int, str]] = []  # (label, index, root)
        for label in sorted(region.blocks):
            block = function.blocks.get(label)
            if block is None:
                continue
            for index, instr in enumerate(block.instrs):
                if isinstance(instr, Store):
                    root = _address_root(function, instr.addr, defs)
                    if root is not None:
                        store_roots.setdefault(root, (label, index))
                elif isinstance(instr, Load) and instr.static:
                    root = _address_root(function, instr.addr, defs)
                    if root is not None:
                        loads.append((label, index, root))
        for label, index, root in loads:
            hit = store_roots.get(root)
            if hit is None:
                continue
            diags.append(Diagnostic(
                code="DYC103",
                severity=Severity.WARNING,
                message=f"@-load from {root!r}, but the same region "
                        f"stores through {root!r} (at {hit[0]}[{hit[1]}])"
                        "; the invariance assertion of '@' may not hold",
                function=function.name,
                block=label,
                index=index,
            ))
    return diags


def _dynamic_exit_loops(function: Function,
                        region: RegionInfo) -> dict[str, frozenset[str]]:
    """Headers of loops with a dynamic exit branch -> their body labels.

    A loop exits dynamically when some member block ends in a branch
    that (a) the BTA classifies dynamic in at least one context and
    (b) has a successor outside the loop.  Complete unrolling of such
    a loop is *unbounded*: the specializer cannot fold the exit test,
    so every promoted iteration value spawns another specialization.
    """
    dynamic_branch_blocks: set[str] = set()
    for (label, _), facts in region.contexts.items():
        if facts.classes and facts.classes[-1] is InstrClass.DYNAMIC_BRANCH:
            dynamic_branch_blocks.add(label)
    result: dict[str, frozenset[str]] = {}
    for loop in natural_loops(function):
        for label in loop.body:
            if label not in dynamic_branch_blocks:
                continue
            block = function.blocks[label]
            if not isinstance(block.instrs[-1], Branch):
                continue
            if any(succ not in loop.body
                   for succ in block.instrs[-1].successors()):
                result[loop.header] = frozenset(loop.body)
                break
    return result


def check_unbounded_unrolling(function: Function,
                              regions: list[RegionInfo],
                              config: OptConfig) -> list[Diagnostic]:
    """DYC104: promotions of loop-variant variables in dynamic loops.

    An internal promotion point inside a loop whose exit test stays
    dynamic re-dispatches on every iteration with a fresh value: the
    promotion cache grows without bound and specialization never
    converges (the cache-blowup risk of multi-way unrolling, §2.2.2).
    Disabled when complete loop unrolling is off — the BTA then demotes
    loop-variant variables at loop headers, removing the hazard.
    """
    if not config.complete_loop_unrolling:
        return []
    loop_defs: dict[str, set[str]] = {}
    diags: list[Diagnostic] = []
    for region in regions:
        risky = _dynamic_exit_loops(function, region)
        for header, body in risky.items():
            if header not in loop_defs:
                defined: set[str] = set()
                for label in body:
                    for instr in function.blocks[label].instrs:
                        defined.update(instr.defs())
                loop_defs[header] = defined
        for point in region.promotions.values():
            if point.kind == "entry":
                continue
            for header, body in risky.items():
                if point.block not in body:
                    continue
                variant = [n for n in point.names
                           if n in loop_defs[header]]
                if not variant:
                    continue
                names = ", ".join(variant)
                diags.append(Diagnostic(
                    code="DYC104",
                    severity=Severity.WARNING,
                    message=f"promotion of loop-variant variable(s) "
                            f"{names} inside loop {header!r}, whose exit "
                            "test is dynamic: multi-way unrolling is "
                            "unbounded and the promotion cache can grow "
                            "without limit",
                    function=function.name,
                    block=point.block,
                    index=point.index,
                ))
                break
    return diags
