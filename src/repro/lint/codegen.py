"""DYC210: emitted-source size budget for the codegen backend.

The Python-codegen backend (:mod:`repro.machine.pycodegen`) refuses to
compile a function whose emitted source exceeds its size limit and falls
back to the threaded backend — but by then the specializer has already
paid for the runaway unrolling that produced the oversize region.  This
lint estimates the emitted size *statically*, before any specialization
runs: the region template's instruction count, multiplied by the
worst-case number of specialization contexts a completely unrolled loop
can produce (``OptConfig.specialize_budget``, or the module-wide
per-batch ceiling when unbounded), priced with the shared
:mod:`repro.opt.regionshape` character estimates so the lint's notion of
"how big does this get" cannot drift from the backend's actual layout.

Armed via ``OptConfig.codegen_source_budget`` (or the linter CLI's
``--codegen-budget``); the default of 0 disables the check.
"""

from __future__ import annotations

from repro.analysis.cfg import natural_loops
from repro.bta.facts import RegionInfo
from repro.config import OptConfig
from repro.ir.function import Function
from repro.lint.diagnostics import Diagnostic, Severity
from repro.opt.regionshape import estimate_emitted_chars
from repro.runtime.specializer import MAX_CONTEXTS_PER_BATCH


def _unroll_multiplier(function: Function, region: RegionInfo,
                       config: OptConfig) -> int:
    """Worst-case context count for the region's emitted code.

    A loop contained entirely in the region is a complete-unrolling
    candidate: every iteration becomes another specialized copy of the
    body, bounded only by the per-batch context budget.  Without such a
    loop (or with unrolling disabled) the emitted code is one copy of
    the template.
    """
    if not config.complete_loop_unrolling:
        return 1
    for loop in natural_loops(function):
        if (loop.header in region.blocks
                and all(label in region.blocks for label in loop.body)):
            return config.specialize_budget or MAX_CONTEXTS_PER_BATCH
    return 1


def check_codegen_size(function: Function,
                       regions: list[RegionInfo],
                       config: OptConfig) -> list[Diagnostic]:
    """DYC210: emitted Python source would blow the size budget.

    Estimated size is template instructions (and blocks) times the
    worst-case unrolling multiplier, at the per-instruction/per-block
    character prices the codegen layout module publishes.  Exceeding
    ``config.codegen_source_budget`` means the pycodegen backend would
    refuse the region at run time and silently degrade to the threaded
    backend — better to bound the unrolling (``specialize_budget``) or
    shrink the region up front.
    """
    budget = config.codegen_source_budget
    if budget <= 0:
        return []
    diags: list[Diagnostic] = []
    for region in regions:
        instrs = 0
        blocks = 0
        for label in region.blocks:
            block = function.blocks.get(label)
            if block is None:
                continue
            instrs += len(block.instrs)
            blocks += 1
        multiplier = _unroll_multiplier(function, region, config)
        estimate = estimate_emitted_chars(instrs * multiplier,
                                          blocks * multiplier)
        if estimate <= budget:
            continue
        if multiplier > 1:
            shape = (f"{instrs} template instructions x {multiplier} "
                     "worst-case unrolled contexts")
        else:
            shape = f"{instrs} template instructions"
        diags.append(Diagnostic(
            code="DYC210",
            severity=Severity.WARNING,
            message=f"estimated emitted Python source for region "
                    f"{region.region_id} is ~{estimate} chars ({shape}), "
                    f"over the {budget}-char codegen budget; the "
                    "pycodegen backend would refuse it at run time and "
                    "degrade to the threaded backend — bound the "
                    "unrolling (specialize_budget) or shrink the region",
            function=function.name,
            block=region.entry_block,
        ))
    return diags
