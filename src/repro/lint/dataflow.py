"""DYC0xx: IR well-formedness checks (structure, dataflow, calls)."""

from __future__ import annotations

from repro.analysis.defuse import unreachable_blocks, use_before_def
from repro.errors import IRError
from repro.ir.function import Function, Module
from repro.ir.validate import unresolved_calls, verify_function
from repro.lint.diagnostics import Diagnostic, Severity


def check_structure(module: Module) -> list[Diagnostic]:
    """DYC000: the structural verifier, reported per function."""
    diags: list[Diagnostic] = []
    for function in module.functions.values():
        try:
            verify_function(function)
        except IRError as exc:
            diags.append(Diagnostic(
                code="DYC000",
                severity=Severity.ERROR,
                message=str(exc),
                function=function.name,
            ))
    if module.main is not None and module.main not in module.functions:
        diags.append(Diagnostic(
            code="DYC000",
            severity=Severity.ERROR,
            message=f"module main {module.main!r} is not defined",
        ))
    return diags


def check_def_before_use(function: Function) -> list[Diagnostic]:
    """DYC001: every use definitely assigned on all paths."""
    return [
        Diagnostic(
            code="DYC001",
            severity=Severity.ERROR,
            message=f"variable {p.name!r} may be used before assignment "
                    f"(in {p.instr})",
            function=function.name,
            block=p.block,
            index=p.index,
        )
        for p in use_before_def(function)
    ]


def check_reachability(function: Function) -> list[Diagnostic]:
    """DYC002: blocks the entry cannot reach."""
    return [
        Diagnostic(
            code="DYC002",
            severity=Severity.WARNING,
            message=f"block {label!r} is unreachable from the entry",
            function=function.name,
            block=label,
        )
        for label in sorted(unreachable_blocks(function))
    ]


def check_calls(module: Module) -> list[Diagnostic]:
    """DYC003: every call resolves to a module function or intrinsic."""
    return [
        Diagnostic(
            code="DYC003",
            severity=Severity.ERROR,
            message=f"call to {callee!r} does not resolve to a module "
                    "function or intrinsic",
            function=fn_name,
            block=label,
            index=index,
        )
        for fn_name, label, index, callee in unresolved_calls(module)
    ]
