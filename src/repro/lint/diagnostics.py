"""Diagnostic records emitted by the staged-specialization linter.

Every finding carries a stable ``DYCnnn`` code so that suppression,
``--select`` filtering, and CI baselines key on codes rather than on
message text.  Code ranges group the checks:

* ``DYC0xx`` — IR well-formedness (structure, dataflow, call
  resolution).  Violations are errors: the specializer's behaviour on
  such IR is undefined.
* ``DYC1xx`` — annotation safety.  DyC's annotations are unchecked
  programmer assertions (paper §2); these lints flag the assertion
  patterns the paper warns about.  They are warnings (the program may
  still be correct), promoted to errors under ``--strict``.
* ``DYC2xx`` — staged-plan and codegen consistency.  A ZCP/DAE plan
  contradicting liveness is a planner bug, always an error; the DYC210
  emitted-source size estimate is a warning (armed only when a
  ``codegen_source_budget`` is configured).
* ``DYC3xx`` — specialization-safety prover (interprocedural).  These
  run only under ``--interprocedural``: they consume whole-module
  call-graph effect summaries (:mod:`repro.analysis.effects`) to prove
  or refute the safety of annotations whose hazard crosses a function
  boundary.  Warnings, promoted to errors under ``--strict``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Stable code -> one-line description (rendered by ``--codes`` and the
#: README table).
CODES: dict[str, str] = {
    "DYC000": "malformed IR (structural verifier failure or parse error)",
    "DYC001": "use of a variable that is not definitely assigned",
    "DYC002": "block unreachable from the function entry",
    "DYC003": "call does not resolve to a module function or intrinsic",
    "DYC101": "dead annotation: static variable never used in its region",
    "DYC102": "cache_one_unchecked variable has multiple reachable "
              "make_static value sources",
    "DYC103": "@-load from memory the same dynamic region may store to",
    "DYC104": "promotion of a loop-variant variable under a dynamic loop "
              "exit (unbounded multi-way unrolling)",
    "DYC105": "conflicting cache policies for one variable across "
              "annotations",
    "DYC201": "staged ZCP/DAE plan contradicts liveness (planner bug)",
    "DYC210": "region's estimated emitted Python source exceeds the "
              "configured codegen size budget",
    "DYC301": "static pointer escapes into a callee that writes the "
              "memory an @-load in the same region asserts invariant",
    "DYC302": "cache_all promotion whose key is derived from a dynamic "
              "value inside a loop (provably unbounded cache key set)",
    "DYC303": "annotation promotion inside a loop does not dominate the "
              "loop latch (iterations bypass it and merge with "
              "mismatched binding times)",
    "DYC304": "pure-annotated static call to a callee whose effect "
              "summary is impure (folding it would drop side effects)",
}

#: JSON payload version emitted by ``--json``.  Bump only when a field
#: changes meaning; adding fields is backward compatible within a
#: version.
JSON_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding, locatable down to the instruction."""

    code: str
    severity: Severity
    message: str
    function: str | None = None
    block: str | None = None
    index: int | None = None
    #: Exclusive end of the instruction span the finding covers (the
    #: IR analogue of an end column).  ``None`` means a single
    #: instruction: the span is ``[index, index + 1)``.
    end_index: int | None = None
    #: Source identifier (file path, or ``file.py::VAR`` for embedded
    #: MiniC programs).
    source: str | None = None

    def span(self) -> tuple[int, int] | None:
        """``(start, end)`` instruction span, end exclusive."""
        if self.index is None:
            return None
        end = self.end_index if self.end_index is not None \
            else self.index + 1
        return (self.index, end)

    def location(self) -> str:
        parts = []
        if self.source:
            parts.append(self.source)
        if self.function:
            parts.append(self.function)
        if self.block:
            where = self.block
            span = self.span()
            if span is not None:
                start, end = span
                where += (f"[{start}]" if end == start + 1
                          else f"[{start}:{end}]")
            parts.append(where)
        return ":".join(parts) if parts else "<module>"

    def format(self) -> str:
        return f"{self.location()}: {self.severity} {self.code}: " \
               f"{self.message}"

    def to_json(self) -> dict:
        span = self.span()
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "function": self.function,
            "block": self.block,
            "index": self.index,
            "end_index": None if span is None else span[1],
            "source": self.source,
        }

    def with_source(self, source: str) -> "Diagnostic":
        import dataclasses

        return dataclasses.replace(self, source=source)


def sort_key(diag: Diagnostic):
    return (
        diag.source or "",
        diag.function or "",
        diag.block or "",
        -1 if diag.index is None else diag.index,
        diag.code,
    )


def has_errors(diags: list[Diagnostic], strict: bool = False) -> bool:
    if strict:
        return bool(diags)
    return any(d.severity is Severity.ERROR for d in diags)
