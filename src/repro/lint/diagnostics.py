"""Diagnostic records emitted by the staged-specialization linter.

Every finding carries a stable ``DYCnnn`` code so that suppression,
``--select`` filtering, and CI baselines key on codes rather than on
message text.  Code ranges group the checks:

* ``DYC0xx`` — IR well-formedness (structure, dataflow, call
  resolution).  Violations are errors: the specializer's behaviour on
  such IR is undefined.
* ``DYC1xx`` — annotation safety.  DyC's annotations are unchecked
  programmer assertions (paper §2); these lints flag the assertion
  patterns the paper warns about.  They are warnings (the program may
  still be correct), promoted to errors under ``--strict``.
* ``DYC2xx`` — staged-plan consistency.  A ZCP/DAE plan contradicting
  liveness is a planner bug, always an error.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Stable code -> one-line description (rendered by ``--codes`` and the
#: README table).
CODES: dict[str, str] = {
    "DYC000": "malformed IR (structural verifier failure or parse error)",
    "DYC001": "use of a variable that is not definitely assigned",
    "DYC002": "block unreachable from the function entry",
    "DYC003": "call does not resolve to a module function or intrinsic",
    "DYC101": "dead annotation: static variable never used in its region",
    "DYC102": "cache_one_unchecked variable has multiple reachable "
              "make_static value sources",
    "DYC103": "@-load from memory the same dynamic region may store to",
    "DYC104": "promotion of a loop-variant variable under a dynamic loop "
              "exit (unbounded multi-way unrolling)",
    "DYC105": "conflicting cache policies for one variable across "
              "annotations",
    "DYC201": "staged ZCP/DAE plan contradicts liveness (planner bug)",
}


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding, locatable down to the instruction."""

    code: str
    severity: Severity
    message: str
    function: str | None = None
    block: str | None = None
    index: int | None = None
    #: Source identifier (file path, or ``file.py::VAR`` for embedded
    #: MiniC programs).
    source: str | None = None

    def location(self) -> str:
        parts = []
        if self.source:
            parts.append(self.source)
        if self.function:
            parts.append(self.function)
        if self.block:
            where = self.block
            if self.index is not None:
                where += f"[{self.index}]"
            parts.append(where)
        return ":".join(parts) if parts else "<module>"

    def format(self) -> str:
        return f"{self.location()}: {self.severity} {self.code}: " \
               f"{self.message}"

    def to_json(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "function": self.function,
            "block": self.block,
            "index": self.index,
            "source": self.source,
        }

    def with_source(self, source: str) -> "Diagnostic":
        import dataclasses

        return dataclasses.replace(self, source=source)


def sort_key(diag: Diagnostic):
    return (
        diag.source or "",
        diag.function or "",
        diag.block or "",
        -1 if diag.index is None else diag.index,
        diag.code,
    )


def has_errors(diags: list[Diagnostic], strict: bool = False) -> bool:
    if strict:
        return bool(diags)
    return any(d.severity is Severity.ERROR for d in diags)
