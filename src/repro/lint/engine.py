"""Linter driver: run every check over a module and collect diagnostics.

The engine never mutates its input: annotation and plan checks run on a
deep copy (the BTA's block splitting rewrites the CFG in place).  Checks
are staged — structural validity gates the dataflow checks, which gate
the BTA-dependent checks — so a broken module produces its root-cause
diagnostic instead of a cascade of downstream noise.
"""

from __future__ import annotations

import copy

from repro.bta.analysis import analyze_function
from repro.bta.annotations import has_annotations
from repro.config import ALL_ON, OptConfig
from repro.dyc.genext import build_generating_extension
from repro.errors import ReproError
from repro.ir.function import Module
from repro.lint.annotations import (
    check_dead_annotations,
    check_policy_conflicts,
    check_static_load_stores,
    check_unbounded_unrolling,
    check_unchecked_sources,
)
from repro.lint.codegen import check_codegen_size
from repro.lint.dataflow import (
    check_calls,
    check_def_before_use,
    check_reachability,
    check_structure,
)
from repro.lint.diagnostics import Diagnostic, Severity, sort_key
from repro.lint.plans import check_genext_plans, corrupt_plans_for_selftest


def _matches(code: str, selector: str) -> bool:
    if "-" in selector:
        low, _, high = selector.partition("-")
        return low <= code <= high
    return code.startswith(selector)


def select_codes(diags: list[Diagnostic],
                 select: tuple[str, ...] | None) -> list[Diagnostic]:
    """Keep diagnostics whose code matches a selector.

    A selector is a code prefix (``"DYC1"`` selects the whole
    annotation-safety group) or an inclusive range
    (``"DYC100-DYC199"``).  ``None`` keeps everything.
    """
    if not select:
        return diags
    return [
        d for d in diags
        if any(_matches(d.code, selector) for selector in select)
    ]


def lint_module(module: Module,
                config: OptConfig = ALL_ON,
                select: tuple[str, ...] | None = None,
                inject_plan_fault: bool = False,
                interprocedural: bool = False) -> list[Diagnostic]:
    """All diagnostics for ``module``, sorted by location.

    ``inject_plan_fault`` corrupts every staged plan before the
    consistency check runs — a self-test proving the DYC201 checker can
    catch a planner miscompile (used by ``--inject-plan-fault`` and CI).

    ``interprocedural`` additionally runs the DYC3xx specialization-
    safety prover over whole-module call-graph effect summaries (the
    CLI's ``--interprocedural``); off by default so the base lint's
    behaviour and cost are unchanged.
    """
    diags = check_structure(module)
    if any(d.severity is Severity.ERROR for d in diags):
        return sorted(select_codes(diags, select), key=sort_key)

    diags += check_calls(module)
    for function in module.functions.values():
        diags += check_def_before_use(function)
        diags += check_reachability(function)

    # BTA-dependent checks run on a copy: block splitting mutates.
    working = copy.deepcopy(module)
    regions_by_function: dict[str, list] = {}
    for function in working.functions.values():
        if not has_annotations(function):
            continue
        diags += check_unchecked_sources(function)
        diags += check_policy_conflicts(function)
        try:
            regions = analyze_function(function, config, module=working)
        except ReproError as exc:
            diags.append(Diagnostic(
                code="DYC000",
                severity=Severity.ERROR,
                message=f"binding-time analysis failed: {exc}",
                function=function.name,
            ))
            continue
        regions_by_function[function.name] = regions
        diags += check_dead_annotations(function, regions)
        diags += check_static_load_stores(function, regions)
        diags += check_unbounded_unrolling(function, regions, config)
        diags += check_codegen_size(function, regions, config)
        for region in regions:
            try:
                genext = build_generating_extension(region, config)
            except ReproError as exc:
                diags.append(Diagnostic(
                    code="DYC000",
                    severity=Severity.ERROR,
                    message=f"generating-extension construction failed "
                            f"for region {region.region_id}: {exc}",
                    function=function.name,
                    block=region.entry_block,
                ))
                continue
            if inject_plan_fault:
                corrupt_plans_for_selftest(genext)
            diags += check_genext_plans(genext)

    if interprocedural:
        from repro.lint.interproc import check_module_interprocedural

        diags += check_module_interprocedural(
            working, regions_by_function
        )

    return sorted(select_codes(diags, select), key=sort_key)


def lint_source(source: str,
                config: OptConfig = ALL_ON,
                select: tuple[str, ...] | None = None,
                inject_plan_fault: bool = False,
                interprocedural: bool = False) -> list[Diagnostic]:
    """Lint MiniC source text; front-end failures become DYC000."""
    from repro.errors import SourceError
    from repro.frontend import compile_source

    try:
        module = compile_source(source, verify=False)
    except SourceError as exc:
        return select_codes([Diagnostic(
            code="DYC000",
            severity=Severity.ERROR,
            message=str(exc),
        )], select)
    return lint_module(module, config=config, select=select,
                       inject_plan_fault=inject_plan_fault,
                       interprocedural=interprocedural)
