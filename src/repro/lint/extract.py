"""Locate MiniC programs embedded in Python files.

The examples and workloads keep their MiniC programs in top-level string
constants (``SOURCE = \"\"\" ... \"\"\"``).  The CI lint step sweeps
``examples/*.py`` and the workload modules; this extractor finds every
top-level string assignment that looks like a MiniC program (contains a
``func`` definition) without importing the file.
"""

from __future__ import annotations

import ast


def embedded_sources(text: str) -> list[tuple[str, str]]:
    """``(variable_name, minic_source)`` pairs from Python source text."""
    tree = ast.parse(text)
    found: list[tuple[str, str]] = []
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = [t for t in node.targets if isinstance(t, ast.Name)]
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                targets = [node.target]
            value = node.value
        else:
            continue
        if not targets:
            continue
        if not (isinstance(value, ast.Constant)
                and isinstance(value.value, str)):
            continue
        if "func " not in value.value:
            continue
        for target in targets:
            found.append((target.id, value.value))
    return found


def embedded_sources_from_file(path: str) -> list[tuple[str, str]]:
    with open(path, "r", encoding="utf-8") as handle:
        return embedded_sources(handle.read())
