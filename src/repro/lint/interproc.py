"""DYC3xx: the interprocedural specialization-safety prover.

These checks consume whole-module facts — the call graph and bottom-up
effect summaries from :mod:`repro.analysis.effects` — to prove or
refute annotation safety properties that no single-function check can
see.  They run only when the engine is invoked with
``interprocedural=True`` (the CLI's ``--interprocedural``), keeping
the default lint behaviour and its cost unchanged.

* **DYC301** — a dynamic region ``@``-loads through some base pointer
  while also passing that pointer to a callee whose summary writes the
  matching parameter's memory: the invariance assertion of ``@`` is
  refuted across the call boundary (the intraprocedural DYC103 only
  sees stores written out in the region itself).
* **DYC302** — a ``cache_all`` variable is re-promoted inside a loop
  with a value derived (transitively, through the loop's definitions)
  from a dynamic load or call: every iteration can produce a fresh
  key, so the specialization cache provably grows without bound.
  Static derivations (``pc = pc + 4``, values folded from ``@``-loads)
  stay clean — their key sets are bounded by the static input.
* **DYC303** — a ``make_static`` annotation inside a natural loop that
  does not dominate the loop's latch: iterations that bypass it merge
  back at the header with mismatched binding times, so the promotion
  re-dispatches on stale context (the paper's polyvariant-division
  examples always place such annotations outside the loop).
* **DYC304** — a ``pure``-annotated (static) call whose callee's
  transitive effect summary writes memory or has observable effects:
  folding the call at dynamic compile time would execute those effects
  once instead of per iteration, silently changing behaviour.
"""

from __future__ import annotations

from repro.analysis.callgraph import CallGraph
from repro.analysis.cfg import natural_loops
from repro.analysis.defuse import unreachable_blocks
from repro.analysis.dominators import DominatorTree
from repro.analysis.effects import (
    EffectSummary,
    address_root,
    def_index,
    effect_summaries,
)
from repro.bta.facts import RegionInfo
from repro.ir.function import Function, Module
from repro.ir.instructions import (
    BinOp,
    Call,
    Instr,
    Load,
    MakeStatic,
    Move,
    Reg,
    UnOp,
)
from repro.lint.diagnostics import Diagnostic, Severity

_DERIVATION_DEPTH = 16


# ----------------------------------------------------------------------
# DYC301: static pointer escapes into a memory-writing callee
# ----------------------------------------------------------------------

def check_escaping_static_pointers(
        function: Function, regions: list[RegionInfo], module: Module,
        summaries: dict[str, EffectSummary]) -> list[Diagnostic]:
    defs = def_index(function)
    diags: list[Diagnostic] = []
    for region in regions:
        loaded_roots: dict[str, tuple[str, int]] = {}
        calls: list[tuple[str, int, Call]] = []
        for label in sorted(region.blocks):
            block = function.blocks.get(label)
            if block is None:
                continue
            for index, instr in enumerate(block.instrs):
                if isinstance(instr, Load) and instr.static:
                    root = address_root(function, instr.addr, defs)
                    if root is not None:
                        loaded_roots.setdefault(root, (label, index))
                elif isinstance(instr, Call):
                    calls.append((label, index, instr))
        if not loaded_roots:
            continue
        for label, index, call in calls:
            callee = module.functions.get(call.callee)
            summary = summaries.get(call.callee)
            if callee is None or summary is None:
                continue
            for position, arg in enumerate(call.args):
                if position >= len(callee.params):
                    break
                root = address_root(function, arg, defs)
                if root is None or root not in loaded_roots:
                    continue
                formal = callee.params[position]
                if formal not in summary.writes_params:
                    continue
                at = loaded_roots[root]
                diags.append(Diagnostic(
                    code="DYC301",
                    severity=Severity.WARNING,
                    message=f"static pointer {root!r} (@-loaded at "
                            f"{at[0]}[{at[1]}]) is passed to "
                            f"{call.callee!r}, which may write "
                            f"{formal!r}'s memory; the @-invariance "
                            "assertion is refuted across the call",
                    function=function.name,
                    block=label,
                    index=index,
                ))
    return diags


# ----------------------------------------------------------------------
# DYC302: provably unbounded cache_all key set
# ----------------------------------------------------------------------

def _located_defs(function: Function
                  ) -> dict[str, list[tuple[str, int, Instr]]]:
    located: dict[str, list[tuple[str, int, Instr]]] = {}
    for block, index, instr in function.instructions():
        for name in instr.defs():
            located.setdefault(name, []).append(
                (block.label, index, instr)
            )
    return located


def _derives_dynamic(function: Function, name: str,
                     located: dict[str, list[tuple[str, int, Instr]]],
                     loop_body: frozenset[str],
                     stack: frozenset[str] = frozenset(),
                     depth: int = 0) -> bool:
    """True when some in-loop definition of ``name`` transitively
    derives from a dynamic load or a dynamic call result."""
    if depth > _DERIVATION_DEPTH or name in stack:
        return False
    stack = stack | {name}
    for label, _, instr in located.get(name, ()):
        if label not in loop_body:
            continue
        if isinstance(instr, Load) and not instr.static:
            return True
        if isinstance(instr, Call) and not instr.static:
            return True
        if isinstance(instr, (Move, BinOp, UnOp)):
            for operand in instr.operands():
                if isinstance(operand, Reg) and _derives_dynamic(
                        function, operand.name, located, loop_body,
                        stack, depth + 1):
                    return True
    return False


def check_unbounded_cache_keys(
        function: Function,
        regions: list[RegionInfo]) -> list[Diagnostic]:
    located = _located_defs(function)
    loops = natural_loops(function)
    diags: list[Diagnostic] = []
    for region in regions:
        for point in region.promotions.values():
            if point.kind != "assignment":
                continue
            containing = [
                frozenset(loop.body) for loop in loops
                if point.block in loop.body
            ]
            if not containing:
                continue  # promoted once per region entry: bounded
            for name in point.names:
                policy = region.policies.get(name, point.policy)
                if policy != "cache_all":
                    continue
                if not any(
                        _derives_dynamic(function, name, located, body)
                        for body in containing):
                    continue
                diags.append(Diagnostic(
                    code="DYC302",
                    severity=Severity.WARNING,
                    message=f"cache_all variable {name!r} is promoted "
                            "inside a loop with a value derived from a "
                            "dynamic load or call; each iteration can "
                            "mint a fresh key, so the specialization "
                            "cache grows without bound (use "
                            "cache_one/cache_one_unchecked, or bound "
                            "the key set)",
                    function=function.name,
                    block=point.block,
                    index=point.index,
                ))
                break
    return diags


# ----------------------------------------------------------------------
# DYC303: in-loop annotation that does not dominate the loop latch
# ----------------------------------------------------------------------

def check_promotion_dominance(function: Function) -> list[Diagnostic]:
    loops = natural_loops(function)
    if not loops:
        return []
    tree = DominatorTree.build(function)
    preds = function.predecessors()
    dead = unreachable_blocks(function)
    diags: list[Diagnostic] = []
    for block in function.blocks.values():
        if block.label in dead:
            continue
        for index, instr in enumerate(block.instrs):
            if not isinstance(instr, MakeStatic):
                continue
            for loop in loops:
                if block.label not in loop.body:
                    continue
                latches = [
                    p for p in preds[loop.header] if p in loop.body
                ]
                bypassed = [
                    latch for latch in latches
                    if not tree.dominates(block.label, latch)
                ]
                if not bypassed:
                    continue
                names = ", ".join(instr.names)
                diags.append(Diagnostic(
                    code="DYC303",
                    severity=Severity.WARNING,
                    message=f"make_static({names}) inside loop "
                            f"{loop.header!r} does not dominate latch "
                            f"{bypassed[0]!r}: iterations bypassing the "
                            "annotation merge at the header with "
                            "mismatched binding times (hoist the "
                            "annotation out of the loop or cover every "
                            "path)",
                    function=function.name,
                    block=block.label,
                    index=index,
                ))
                break
    return diags


# ----------------------------------------------------------------------
# DYC304: pure-annotated call to a provably impure callee
# ----------------------------------------------------------------------

def check_impure_static_calls(
        module: Module,
        summaries: dict[str, EffectSummary]) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    for function in module.functions.values():
        for block, index, instr in function.instructions():
            if not isinstance(instr, Call) or not instr.static:
                continue
            summary = summaries.get(instr.callee)
            if summary is None or summary.pure:
                continue
            effects = []
            if summary.writes_memory:
                effects.append("writes memory")
            if summary.observable_effects:
                effects.append("has observable effects")
            diags.append(Diagnostic(
                code="DYC304",
                severity=Severity.WARNING,
                message=f"call to {instr.callee!r} is annotated pure, "
                        f"but its effect summary {' and '.join(effects)}"
                        "; folding it at dynamic compile time would "
                        "drop those effects",
                function=function.name,
                block=block.label,
                index=index,
            ))
    return diags


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------

def check_module_interprocedural(
        module: Module,
        regions_by_function: dict[str, list[RegionInfo]]
        ) -> list[Diagnostic]:
    """All DYC3xx diagnostics for an already-BTA-analyzed module.

    ``regions_by_function`` holds the per-function region info the
    engine computed (annotated functions whose BTA succeeded); module-
    wide checks (DYC304) run over every function regardless.
    """
    graph = CallGraph.build(module)
    summaries = effect_summaries(module, graph)
    diags = check_impure_static_calls(module, summaries)
    for name, regions in regions_by_function.items():
        function = module.functions[name]
        diags += check_escaping_static_pointers(
            function, regions, module, summaries
        )
        diags += check_unbounded_cache_keys(function, regions)
        diags += check_promotion_dominance(function)
    return diags
