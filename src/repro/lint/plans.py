"""DYC2xx: cross-validation of staged ZCP/DAE plans against liveness.

The planner (:mod:`repro.dyc.plans`) runs at static compile time and the
completion stage trusts it blindly at dynamic compile time — no run-time
IR analysis happens (§2.2.7).  A plan that marks an emitted result
locally dead (``remote=False`` with no local uses) while liveness says
the value flows out of the block would let dead-assignment elimination
delete an instruction whose result is still read downstream: a
miscompile.  This checker recomputes liveness on the region template and
fails loudly on any such contradiction.
"""

from __future__ import annotations

from repro.analysis.liveness import liveness
from repro.dyc.genext import (
    ActionBlock,
    EmitAction,
    GeneratingExtension,
    PromoteAction,
    TermDynamic,
    TermReturn,
)
from repro.dyc.plans import EMITTED_CLASSES
from repro.ir.instructions import BinOp, Jump, Load, Move, UnOp
from repro.lint.diagnostics import Diagnostic, Severity


def _planned_actions(block: ActionBlock) -> list[EmitAction]:
    """All emit actions of a compiled context, in template order."""
    actions: list[EmitAction] = []
    for action in block.actions:
        if isinstance(action, EmitAction):
            actions.append(action)
        elif isinstance(action, PromoteAction) and action.emit is not None:
            actions.append(action.emit)
    term = block.terminator
    if isinstance(term, (TermDynamic, TermReturn)):
        actions.append(term.action)
    return actions


def check_genext_plans(genext: GeneratingExtension) -> list[Diagnostic]:
    """Validate every context's plans against template liveness."""
    template = genext.region.template
    if template is None:
        return []
    live = liveness(template)
    function_name = genext.region.function_name
    diags: list[Diagnostic] = []

    for (label, _division), action_block in genext.blocks.items():
        instrs = template.blocks[label].instrs
        facts = genext.region.contexts.get((label, action_block.division))
        if facts is None:
            continue
        emitted_indexes = [
            i for i, klass in enumerate(facts.classes)
            if klass in EMITTED_CLASSES and not isinstance(instrs[i], Jump)
        ]
        actions = _planned_actions(action_block)
        if len(actions) != len(emitted_indexes):
            diags.append(Diagnostic(
                code="DYC201",
                severity=Severity.ERROR,
                message=f"context {label!r}: {len(actions)} planned emit "
                        f"actions but {len(emitted_indexes)} emitted "
                        "instructions in the BTA facts",
                function=function_name,
                block=label,
            ))
            continue
        live_out = live.live_out[label]
        for index, action in zip(emitted_indexes, actions):
            plan = action.plan
            if plan is None:
                continue
            instr = instrs[index]
            dests = instr.defs()
            if not dests:
                if plan.removable:
                    diags.append(Diagnostic(
                        code="DYC201",
                        severity=Severity.ERROR,
                        message=f"plan marks a result-less "
                                f"{type(instr).__name__} removable",
                        function=function_name,
                        block=label,
                        index=index,
                    ))
                continue
            dest = dests[0]
            if plan.removable and not isinstance(
                    instr, (Move, UnOp, BinOp, Load)):
                diags.append(Diagnostic(
                    code="DYC201",
                    severity=Severity.ERROR,
                    message=f"plan marks effectful "
                            f"{type(instr).__name__} (dest {dest!r}) "
                            "removable; dead-assignment elimination "
                            "could delete its side effect",
                    function=function_name,
                    block=label,
                    index=index,
                ))
            redefined = any(
                dest in instrs[j].defs()
                for j in range(index + 1, len(instrs))
            )
            if plan.remote or redefined:
                continue
            if dest in live_out:
                diags.append(Diagnostic(
                    code="DYC201",
                    severity=Severity.ERROR,
                    message=f"plan marks {dest!r} locally dead "
                            "(remote=False, no later redefinition) but "
                            f"liveness says it is live out of {label!r}; "
                            "dead-assignment elimination would delete a "
                            "live value",
                    function=function_name,
                    block=label,
                    index=index,
                ))
    return diags


def corrupt_plans_for_selftest(genext: GeneratingExtension) -> int:
    """Deliberately clear every plan's ``remote``/``local_uses`` flags.

    Used by ``python -m repro.lint --inject-plan-fault`` (and the test
    suite) to prove the consistency checker actually fires: after this,
    any emitted result that is live out of its block contradicts its
    plan.  Returns the number of plans corrupted.
    """
    import dataclasses

    count = 0
    for action_block in genext.blocks.values():
        new_actions = []
        for action in action_block.actions:
            emit = None
            if isinstance(action, EmitAction):
                emit = action
            elif (isinstance(action, PromoteAction)
                    and action.emit is not None):
                emit = action.emit
            if emit is not None and emit.plan is not None:
                bad = dataclasses.replace(
                    emit.plan, remote=False, local_uses=0
                )
                new_emit = EmitAction(emit.instr, emit.holes, bad)
                count += 1
                if isinstance(action, PromoteAction):
                    new_actions.append(
                        PromoteAction(action.point, new_emit)
                    )
                else:
                    new_actions.append(new_emit)
            else:
                new_actions.append(action)
        action_block.actions = new_actions
        term = action_block.terminator
        if isinstance(term, (TermDynamic, TermReturn)) \
                and term.action.plan is not None:
            bad = dataclasses.replace(
                term.action.plan, remote=False, local_uses=0
            )
            new_action = EmitAction(
                term.action.instr, term.action.holes, bad
            )
            action_block.terminator = type(term)(new_action)
            count += 1
    return count
