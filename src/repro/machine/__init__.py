"""Deterministic abstract machine with an Alpha-21164-flavoured cost model.

The paper measures cycles on a DEC Alpha 21164 with hardware counters; we
substitute a deterministic interpreter that charges a per-instruction cycle
cost (:mod:`repro.machine.costs`) plus an instruction-cache footprint
penalty (:mod:`repro.machine.icache`).  All reported performance numbers in
this reproduction are ratios of these cycle counts, mirroring the paper's
asymptotic-speedup / break-even / overhead-per-instruction metrics.
"""

from repro.machine.costs import CostModel, ALPHA_21164
from repro.machine.fusionprofile import FusionProfile
from repro.machine.icache import ICacheModel
from repro.machine.intrinsics import INTRINSICS, Intrinsic
from repro.machine.interp import BACKENDS, Machine, ExecutionStats
from repro.machine.pycodegen import CODEGEN_MODES, PyCodegenBackend
from repro.machine.threaded import ThreadedBackend

__all__ = [
    "CostModel",
    "ALPHA_21164",
    "FusionProfile",
    "ICacheModel",
    "INTRINSICS",
    "Intrinsic",
    "BACKENDS",
    "CODEGEN_MODES",
    "Machine",
    "ExecutionStats",
    "PyCodegenBackend",
    "ThreadedBackend",
]
