"""Per-instruction cycle costs, flavoured after the DEC Alpha 21164.

The numbers are effective (throughput-ish) costs for a dual-issue in-order
machine, not exact latencies; what matters for the reproduction is the
*relationships* the paper leans on:

* a floating-point move costs the same as a floating-point multiply
  (§2.2.7 — this is why strength-reducing ``x*1.0`` into a move alone buys
  nothing, and copy propagation + dead-assignment elimination are needed);
* integer multiply is much slower than shift (strength reduction pays);
* integer divide/modulus are very slow (dinero's set-index math);
* loads cost more than register ALU ops (static loads pay);
* branches cost more than straight-line ALU ops (complete loop unrolling
  pays even before it enables other optimizations).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CostModel:
    """Cycle costs charged by the interpreter per executed instruction."""

    int_alu: int = 1
    int_mul: int = 8
    int_div: int = 40
    int_mod: int = 44
    fp_alu: int = 3
    fp_mul: int = 3
    fp_div: int = 18
    move_int: int = 1
    move_fp: int = 3          # == fp_mul, per §2.2.7 (register moves)
    const_int: int = 1        # materialize an integer constant
    const_fp: int = 2         # materialize an FP constant (pool load)
    load: int = 3
    store: int = 3
    jump: int = 1
    branch: int = 2
    call_overhead: int = 10   # save/restore, argument marshalling
    return_cost: int = 2
    #: Per-intrinsic cycle costs (library routines).
    intrinsic: dict[str, int] = field(default_factory=lambda: dict(
        cos=80,
        sin=80,
        sqrt=35,
        exp=90,
        log=90,
        fabs=2,
        floor=4,
        pow2=6,
        print_val=0,       # measurement harness I/O is free
        clock=0,
    ))
    intrinsic_default: int = 20

    #: Cycle scaling for *statically compiled* code, modelling the static
    #: compiler's instruction scheduling on the dual-issue 21164.
    #: Dynamically generated code runs unscaled: "DyC and similar systems
    #: currently do no run-time instruction scheduling" (§2.2.4), and the
    #: paper names issue width and dynamic-scheduling support as major
    #: determinants of dynamic-compilation performance (§4.2).
    static_schedule_factor: float = 0.6

    def intrinsic_cost(self, name: str) -> int:
        return self.intrinsic.get(name, self.intrinsic_default)

    def with_overrides(self, **kwargs) -> "CostModel":
        """A copy of this model with selected fields replaced."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # Classified helpers used by the interpreter
    # ------------------------------------------------------------------

    def binop_cost(self, op_name: str, is_float: bool) -> int:
        if op_name == "mul":
            return self.fp_mul if is_float else self.int_mul
        if op_name == "div":
            return self.fp_div if is_float else self.int_div
        if op_name == "mod":
            return self.fp_div if is_float else self.int_mod
        if is_float:
            return self.fp_alu
        return self.int_alu

    def move_cost(self, is_float: bool) -> int:
        return self.move_fp if is_float else self.move_int

    def materialize_cost(self, is_float: bool) -> int:
        return self.const_fp if is_float else self.const_int


#: The default cost model used throughout the evaluation.
ALPHA_21164 = CostModel()


# ----------------------------------------------------------------------
# Shared charge terms
# ----------------------------------------------------------------------
#
# Both execution backends (the reference interpreter and the direct-
# threaded translator) charge each instruction as a *base term* — the
# integer-typed cost, scheduling-scaled, plus the I-cache penalty — and,
# for value-dependent instructions, an *fp extra* added only when the
# operands turn out to be floats at run time.  The reference evaluates
# these expressions per executed instruction; the threaded backend
# evaluates them once at translation time.  Routing both through the same
# functions guarantees the floats are bit-identical, which is what makes
# the backends' ExecutionStats byte-equal.

def flat_term(cost: int, scale: float, penalty: float) -> float:
    """Charge term for an instruction whose cost is type-independent."""
    return cost * scale + penalty


def binop_terms(costs: CostModel, op_name: str, scale: float,
                penalty: float) -> tuple[float, float]:
    """(base term, fp extra) for a ``BinOp`` (or, with ``"alu"``, a
    ``UnOp``)."""
    int_cost = costs.binop_cost(op_name, False)
    base = int_cost * scale + penalty
    extra = (costs.binop_cost(op_name, True) - int_cost) * scale
    return base, extra


def move_terms(costs: CostModel, scale: float,
               penalty: float) -> tuple[float, float]:
    """(base term, fp extra) for a register-to-register ``Move``."""
    base = costs.move_int * scale + penalty
    extra = (costs.move_fp - costs.move_int) * scale
    return base, extra
