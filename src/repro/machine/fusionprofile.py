"""Superinstruction fusion profiles, fed back into codegen trace layout.

The threaded backend's quickening tier (``DESIGN.md`` §9) discovers which
code is hot *dynamically*: translations that re-enter often are
retranslated with superinstruction fusion.  The block transfers those hot
translations perform are exactly the pairs the Python-codegen backend
would like to know about *statically*, before it lays out its traces —
a transfer that codegen places as fallthrough costs nothing, while one
that crosses chains pays a dispatch through the label loop.

This module closes that loop:

1. **Collect** — while a collector is armed
   (:func:`start_collecting`), the threaded drivers record every
   block-to-block transfer as an ``(function, src_label, dst_label)``
   edge count.  Collection is off by default and costs nothing when off
   (the drivers check a module-level reference once per entry).
2. **Persist** — :meth:`FusionProfile.save` /
   :meth:`FusionProfile.load` round-trip the counts through a sorted,
   versioned JSON file (``--fusion-profile-out`` on the eval-harness
   CLI).
3. **Feed back** — an installed profile (:func:`install`, or lazily
   from the ``REPRO_FUSION_PROFILE_IN`` environment variable, which
   ``--fusion-profile-in`` exports so ``--jobs`` pool workers inherit
   it) is consulted by :func:`repro.opt.regionshape.region_shape` via
   :func:`successors_for`: trace growth prefers the *observed hottest*
   successor over the static fallthrough heuristic, and whole chains
   are ordered hottest-first so hot transfers get dense low ids.

Layout never affects semantics or cycle accounting — the counted
backends charge per instruction, not per emitted line — so a profile
can only change how much of the generated dispatch is fallthrough.
A stale or mismatched profile degrades to the static heuristic
edge-by-edge.
"""

from __future__ import annotations

import json
import os

#: Bump when the JSON layout changes; loaders reject other schemas.
_SCHEMA = 1

#: Environment variable naming a profile JSON to install lazily (set by
#: the eval-harness CLI's ``--fusion-profile-in`` so pool workers see
#: the same profile as the parent).
ENV_PROFILE_IN = "REPRO_FUSION_PROFILE_IN"


class FusionProfile:
    """Observed block-transfer counts, keyed per function name.

    Region code buffers get distinct specialization-derived names, so
    keying on ``Function.name`` keeps host functions and each region
    buffer separate without holding references to IR objects.
    """

    def __init__(self) -> None:
        #: function name -> (src label, dst label) -> count
        self.edges: dict[str, dict[tuple[str, str], int]] = {}

    def record(self, function: str, src: str, dst: str,
               count: int = 1) -> None:
        edges = self.edges.get(function)
        if edges is None:
            edges = self.edges[function] = {}
        key = (src, dst)
        edges[key] = edges.get(key, 0) + count

    def merge(self, other: "FusionProfile") -> None:
        for function, edges in other.edges.items():
            for (src, dst), count in edges.items():
                self.record(function, src, dst, count)

    def successors(self, function: str) -> dict[str, dict[str, int]]:
        """``src label -> {dst label -> count}`` for one function."""
        out: dict[str, dict[str, int]] = {}
        for (src, dst), count in self.edges.get(function, {}).items():
            out.setdefault(src, {})[dst] = count
        return out

    @property
    def total_edges(self) -> int:
        return sum(len(edges) for edges in self.edges.values())

    # -- persistence -----------------------------------------------------

    def to_json(self) -> dict:
        """A sorted, deterministic JSON-ready form."""
        return {
            "schema": _SCHEMA,
            "functions": {
                function: [
                    [src, dst, count]
                    for (src, dst), count in sorted(edges.items())
                ]
                for function, edges in sorted(self.edges.items())
            },
        }

    @classmethod
    def from_json(cls, payload: dict) -> "FusionProfile":
        if not isinstance(payload, dict) \
                or payload.get("schema") != _SCHEMA:
            raise ValueError(
                f"unsupported fusion-profile schema "
                f"{payload.get('schema') if isinstance(payload, dict) else payload!r}"
            )
        profile = cls()
        for function, edges in payload.get("functions", {}).items():
            for src, dst, count in edges:
                profile.record(function, src, dst, int(count))
        return profile

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json(), fh, indent=2)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "FusionProfile":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(json.load(fh))


# ----------------------------------------------------------------------
# Module-level collection and installation
# ----------------------------------------------------------------------
# One collector and one installed profile per process keeps the plumbing
# out of every Machine/backend constructor; the threaded drivers check
# the collector once per function entry, and the codegen emitter asks
# for the installed profile once per compilation.

_collector: FusionProfile | None = None
_installed: FusionProfile | None = None
_env_checked = False


def start_collecting() -> FusionProfile:
    """Arm edge collection; returns the (shared) collecting profile."""
    global _collector
    if _collector is None:
        _collector = FusionProfile()
    return _collector


def stop_collecting() -> FusionProfile | None:
    """Disarm collection; returns the collected profile, if any."""
    global _collector
    profile, _collector = _collector, None
    return profile


def collector() -> FusionProfile | None:
    """The armed collecting profile, or None (the common, free case)."""
    return _collector


def install(profile: FusionProfile | None) -> None:
    """Install ``profile`` as the process-wide feedback profile."""
    global _installed, _env_checked
    _installed = profile
    _env_checked = True


def installed() -> FusionProfile | None:
    """The installed profile, lazily resolving ``REPRO_FUSION_PROFILE_IN``.

    An unreadable or malformed file degrades to "no profile" — feedback
    is an optimization hint, never a correctness dependency.
    """
    global _installed, _env_checked
    if not _env_checked:
        _env_checked = True
        path = os.environ.get(ENV_PROFILE_IN, "").strip()
        if path:
            try:
                _installed = FusionProfile.load(path)
            except (OSError, ValueError):
                _installed = None
    return _installed


def reset(clear_env_cache: bool = True) -> None:
    """Drop collector and installed profile (tests)."""
    global _collector, _installed, _env_checked
    _collector = None
    _installed = None
    if clear_env_cache:
        _env_checked = False


def successors_for(function: str) -> dict[str, dict[str, int]] | None:
    """Observed successor counts for ``function`` from the installed
    profile, or None when no profile (or no data for it) exists."""
    profile = installed()
    if profile is None:
        return None
    successors = profile.successors(function)
    return successors or None
