"""First-order instruction-cache footprint model.

The 21164 has an 8 KB L1 instruction cache.  Complete loop unrolling can
expand a dynamic region's code past that capacity, at which point a loop
streaming through the body misses on every line refetch — the effect that
makes pnmconvol *slower* than static code when dead-assignment elimination
is disabled ("the amount of generated code exceeded the size of the L1
cache by a factor of 2.7, causing slowdowns", §4.4.4).

Rather than simulate the cache line-by-line, we charge a graded
per-instruction fetch penalty based on how far a code object's footprint
exceeds capacity:

    overflow  = max(0, footprint - capacity) / capacity     (clamped to 1)
    penalty   = overflow * miss_penalty / instructions_per_line

A footprint at or under capacity costs nothing; a footprint ≥ 2× capacity
pays the full steady-state streaming-miss cost.  This reproduces both the
cliff the paper observes and its graded onset, deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ICacheModel:
    """Instruction-cache parameters and the footprint penalty function."""

    capacity_bytes: int = 8 * 1024     # 21164 L1 I-cache
    instruction_bytes: int = 4          # Alpha fixed-width instructions
    line_bytes: int = 32                # 21164 I-cache line
    miss_penalty: float = 12.0          # cycles to refill a line from L2

    @property
    def capacity_instructions(self) -> int:
        return self.capacity_bytes // self.instruction_bytes

    @property
    def instructions_per_line(self) -> int:
        return self.line_bytes // self.instruction_bytes

    def footprint_bytes(self, instruction_count: int) -> int:
        return instruction_count * self.instruction_bytes

    def overflow_ratio(self, instruction_count: int) -> float:
        """How far (0..1) a code object's loop footprint exceeds capacity."""
        capacity = self.capacity_instructions
        if instruction_count <= capacity:
            return 0.0
        return min(1.0, (instruction_count - capacity) / capacity)

    def per_instruction_penalty(self, instruction_count: int) -> float:
        """Extra fetch cycles charged for each instruction executed."""
        overflow = self.overflow_ratio(instruction_count)
        if overflow == 0.0:
            return 0.0
        return overflow * self.miss_penalty / self.instructions_per_line
