"""The cycle-counting IR interpreter.

This is the measurement substrate standing in for the paper's Alpha 21164:
it executes IR functions (and dynamically generated region code) while
charging deterministic cycle costs from a :class:`CostModel` plus
I-cache-footprint penalties from an :class:`ICacheModel`.

Cycle accounts
--------------

``stats.cycles``
    everything executed, including dispatch costs charged by the runtime.
``stats.dc_cycles``
    dynamic-compilation (specialization) overhead, charged by the runtime;
    *excluded* from ``cycles`` so asymptotic speedups can be computed the
    way the paper defines them (§4.2).
``stats.scope_cycles[name]``
    inclusive cycles attributed to tracked scopes (the dynamically
    compiled functions of Table 1), used for dynamic-region timings and
    Table 4's percent-of-execution measurements.

Execution backends
------------------

Two backends execute the same IR with **bit-identical** accounting:

``backend="reference"``
    the per-instruction interpreter below — the executable specification.
``backend="threaded"``
    :mod:`repro.machine.threaded` — a direct-threaded translation to
    chained Python closures with cost-model lookups and operand decoding
    folded in at translation time.  Several times faster; used by the
    evaluation harness for large sweeps.

Both backends charge cycles with the same *segment* discipline: costs of a
straight-line run of instructions (a block, or a block prefix up to a
``Call``) are summed locally and committed to ``stats.cycles`` in one
addition at the segment boundary.  Keeping the float-addition order
identical is what makes the two backends' ``ExecutionStats`` byte-equal.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

from repro.errors import MachineError, TrapError
from repro.ir.eval import eval_binop, eval_unop
from repro.ir.function import Function, Module
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    EnterRegion,
    ExitRegion,
    Imm,
    Jump,
    Load,
    MakeDynamic,
    MakeStatic,
    Move,
    Operand,
    Promote,
    Reg,
    Return,
    Store,
    UnOp,
)
from repro.ir.memory import Memory
from repro.machine.costs import (
    ALPHA_21164,
    CostModel,
    binop_terms,
    flat_term,
    move_terms,
)
from repro.machine.icache import ICacheModel
from repro.machine.intrinsics import INTRINSICS

#: Recursion headroom for nested IR calls: each IR-level call nests several
#: Python frames, so the machine's own depth guard must fire before
#: CPython's recursion limit does.
_RECURSION_HEADROOM = 20_000

_recursion_guard_done = False


def _ensure_recursion_headroom() -> None:
    """Raise the process recursion limit once, the first time a machine is
    built.  A module-level one-shot guard: constructing machines is a hot
    path for the harness (two per workload run plus compile-time machines)
    and ``sys.setrecursionlimit`` mutates global interpreter state."""
    global _recursion_guard_done
    if _recursion_guard_done:
        return
    if sys.getrecursionlimit() < _RECURSION_HEADROOM:
        sys.setrecursionlimit(_RECURSION_HEADROOM)
    _recursion_guard_done = True


#: Execution backends accepted by :class:`Machine`.
BACKENDS = ("reference", "threaded", "pycodegen")


@dataclass
class ExecutionStats:
    """Cycle and instruction accounting for one machine."""

    cycles: float = 0.0
    instructions: int = 0
    dc_cycles: float = 0.0
    dispatch_cycles: float = 0.0
    dispatches: int = 0
    scope_cycles: dict[str, float] = field(default_factory=dict)
    scope_entries: dict[str, int] = field(default_factory=dict)
    #: Threaded-backend translations that fell back to the reference
    #: interpreter (injected ``threaded.translate`` faults).  Zero on a
    #: clean run; the fallback is cycle-identical by construction.
    degraded_translations: int = 0
    #: Codegen-backend compilations that fell back down the backend
    #: ladder (injected ``pycodegen.compile`` faults, oversize sources).
    #: Zero on a clean run; the fallback is cycle-identical in counted
    #: mode by construction.
    degraded_compilations: int = 0

    def snapshot(self) -> "ExecutionStats":
        return ExecutionStats(
            cycles=self.cycles,
            instructions=self.instructions,
            dc_cycles=self.dc_cycles,
            dispatch_cycles=self.dispatch_cycles,
            dispatches=self.dispatches,
            scope_cycles=dict(self.scope_cycles),
            scope_entries=dict(self.scope_entries),
            degraded_translations=self.degraded_translations,
            degraded_compilations=self.degraded_compilations,
        )


class Machine:
    """Executes IR with cycle accounting.

    Parameters
    ----------
    module:
        The program to execute.
    memory:
        Data memory (shared with the host harness, which preallocates
        workload inputs).
    runtime:
        The dynamic-compilation runtime, consulted for ``EnterRegion`` and
        ``Promote`` terminators.  ``None`` for purely static programs.
    tracked:
        Names of functions whose inclusive cycles should be attributed in
        ``stats.scope_cycles`` (the paper's dynamic-region timings).
    backend:
        ``"reference"`` (per-instruction interpreter), ``"threaded"``
        (direct-threaded closure translation; same stats, much faster),
        or ``"pycodegen"`` (functions compiled to Python code objects;
        same stats in counted mode, faster still).
    codegen_mode:
        Only meaningful with ``backend="pycodegen"``: ``"counted"``
        (stats byte-identical to the reference interpreter) or
        ``"fast"`` (no cycle accounting, pure wall-clock speed).
    """

    def __init__(
        self,
        module: Module,
        memory: Memory | None = None,
        cost_model: CostModel = ALPHA_21164,
        icache: ICacheModel | None = None,
        runtime=None,
        tracked: frozenset[str] | set[str] = frozenset(),
        step_limit: int = 500_000_000,
        backend: str = "reference",
        codegen_mode: str = "counted",
    ) -> None:
        self.module = module
        self.memory = memory if memory is not None else Memory()
        self.costs = cost_model
        self.icache = icache if icache is not None else ICacheModel()
        self.runtime = runtime
        self.tracked = frozenset(tracked)
        self.step_limit = step_limit
        #: Optional value profiler (see repro.autoannotate): an object
        #: with enter(name, args, cycles) / leave(name, cycles) hooks.
        self.profiler = None
        self.stats = ExecutionStats()
        self.output: list = []
        self._steps = 0
        self._active_scopes: dict[str, int] = {}
        #: tracked scope name -> stats.cycles at outermost entry.
        self._scope_entry_cycles: dict[str, float] = {}
        self._call_depth = 0
        self._max_call_depth = 200
        if backend not in BACKENDS:
            raise MachineError(
                f"unknown backend {backend!r} (expected one of {BACKENDS})"
            )
        self.backend = backend
        self.codegen_mode = codegen_mode
        if backend == "threaded":
            # Imported here so the reference interpreter has no load-time
            # dependency on its replacement.
            from repro.machine.threaded import ThreadedBackend

            self._backend = ThreadedBackend(self)
        elif backend == "pycodegen":
            from repro.machine.pycodegen import PyCodegenBackend

            self._backend = PyCodegenBackend(self, mode=codegen_mode)
        else:
            self._backend = None
        _ensure_recursion_headroom()

    # ------------------------------------------------------------------
    # Cycle accounting
    # ------------------------------------------------------------------

    def charge(self, cycles: float) -> None:
        """Add execution cycles.

        Attribution to tracked scopes happens by cycle-counter snapshot
        deltas at scope exit (see :meth:`_call_function`), so this hot
        path is a single addition.
        """
        self.stats.cycles += cycles

    def charge_dispatch(self, cycles: float) -> None:
        """Dispatch overhead counts as execution time (it recurs)."""
        self.stats.dispatch_cycles += cycles
        self.stats.dispatches += 1
        self.stats.cycles += cycles

    def charge_dc(self, cycles: float) -> None:
        """Dynamic-compilation overhead: a separate account (§4.2)."""
        self.stats.dc_cycles += cycles

    def _commit(self, cycles: float, instructions: int) -> None:
        """Commit one straight-line segment's accumulated charges.

        Both backends call this (or inline exactly this sequence) at
        segment boundaries; the step limit is enforced with segment
        granularity, which is sufficient because any loop crosses a
        segment boundary on every iteration.
        """
        self.stats.cycles += cycles
        self.stats.instructions += instructions
        self._steps += instructions
        if self._steps > self.step_limit:
            raise MachineError(
                f"step limit {self.step_limit} exceeded (infinite loop?)"
            )

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def run(self, name: str, *args):
        """Call a module function from the harness and return its result."""
        return self.call(name, list(args))

    def call(self, name: str, args: list):
        if name in self.module.functions:
            return self._call_function(self.module.functions[name], args)
        intrinsic = INTRINSICS.get(name)
        if intrinsic is None:
            raise MachineError(f"call to unknown function {name!r}")
        self.charge(self.costs.intrinsic_cost(name))
        return intrinsic.fn(self, args)

    def _call_function(self, function: Function, args: list):
        if len(args) != len(function.params):
            raise MachineError(
                f"{function.name}() takes {len(function.params)} args, "
                f"got {len(args)}"
            )
        self._call_depth += 1
        if self._call_depth > self._max_call_depth:
            raise MachineError("call depth exceeded")
        tracked_here = function.name in self.tracked
        if tracked_here:
            name = function.name
            depth = self._active_scopes.get(name, 0)
            if depth == 0:
                # Outermost entry: snapshot the cycle counter; the whole
                # delta is attributed once, at the matching exit.
                self._scope_entry_cycles[name] = self.stats.cycles
            self._active_scopes[name] = depth + 1
            self.stats.scope_entries[name] = (
                self.stats.scope_entries.get(name, 0) + 1
            )
        self.charge(self.costs.call_overhead)
        profiler = self.profiler
        if profiler is not None:
            profiler.enter(function.name, args, self.stats.cycles)
        env = dict(zip(function.params, args))
        try:
            result = self._exec_function(function, env)
        finally:
            if profiler is not None:
                profiler.leave(function.name, self.stats.cycles)
            if tracked_here:
                name = function.name
                depth = self._active_scopes[name] - 1
                if depth:
                    self._active_scopes[name] = depth
                else:
                    del self._active_scopes[name]
                    delta = (self.stats.cycles
                             - self._scope_entry_cycles.pop(name))
                    self.stats.scope_cycles[name] = (
                        self.stats.scope_cycles.get(name, 0.0) + delta
                    )
            self._call_depth -= 1
        return result

    # ------------------------------------------------------------------
    # Execution core
    # ------------------------------------------------------------------

    def _exec_function(self, function: Function, env: dict):
        """Execute a host function until Return; handles EnterRegion.

        Host functions are statically compiled, so their instruction
        costs are scaled by the static scheduling factor; dynamically
        generated region code (see :meth:`exec_region_code`) is not.
        """
        backend = self._backend
        if backend is not None:
            return backend.exec_function(function, env)
        return self._exec_function_interp(function, env)

    def _exec_function_interp(self, function: Function, env: dict):
        """Reference-interpreter host loop (also the threaded backend's
        degradation target when translation is faulted)."""
        penalty = self.icache.per_instruction_penalty(
            function.instruction_count()
        )
        scale = self.costs.static_schedule_factor
        label = function.entry
        while True:
            outcome = self._exec_block(
                function.blocks[label], env, penalty, scale
            )
            kind, payload = outcome
            if kind == "jump":
                label = payload
            elif kind == "return":
                return payload
            elif kind == "enter_region":
                instr = payload
                if self.runtime is None:
                    raise MachineError(
                        "EnterRegion executed without a runtime attached"
                    )
                outcome, value = self.runtime.enter_region(
                    self, instr, env
                )
                if outcome == "return":
                    # A Return inside the region returns from the host.
                    return value
                label = value
            else:  # pragma: no cover - defensive
                raise MachineError(f"unexpected block outcome {kind!r}")

    def exec_region_code(self, code: Function, env: dict,
                         footprint: int) -> tuple[str, object]:
        """Execute dynamically generated region code in the host env.

        Region code shares the host frame's environment (DyC allocates
        registers seamlessly across region boundaries, §2.1).  Returns
        ``("exit", index)`` when the region resumes host code at exit
        ``index``, or ``("return", value)`` when the region executed a
        host-level ``Return``.  ``Promote`` terminators re-enter the
        runtime for lazy multi-stage specialization.
        """
        backend = self._backend
        if backend is not None:
            return backend.exec_region_code(code, env, footprint)
        return self._exec_region_interp(code, env, footprint, code.entry)

    def _exec_region_interp(self, code: Function, env: dict,
                            footprint: int,
                            label: str) -> tuple[str, object]:
        """Reference-interpreter region loop, resumable at ``label`` (the
        threaded backend degrades into it mid-region when a retranslation
        after a version bump is faulted)."""
        penalty = self.icache.per_instruction_penalty(footprint)
        while True:
            kind, payload = self._exec_block(
                code.blocks[label], env, penalty, 1.0
            )
            if kind == "jump":
                label = payload
            elif kind in ("exit", "return"):
                return (kind, payload)
            elif kind == "promote":
                label = self.runtime.promote(self, payload, env, code)
            else:  # pragma: no cover - defensive
                raise MachineError(
                    f"unexpected outcome {kind!r} in region code"
                )

    def _exec_block(self, block, env: dict, penalty: float,
                    scale: float):
        """Execute one block; return ('jump', label) / ('return', v) / ...

        Charges follow the shared base/extra discipline (see
        :mod:`repro.machine.costs`): per segment, the type-independent
        base terms are summed in instruction order into ``acc``, the
        float-operand extras in occurrence order into ``extra``, and the
        segment commits ``acc + extra`` in one addition — the exact float
        computation the threaded backend performs with ``acc`` folded at
        translation time.
        """
        costs = self.costs
        memory = self.memory
        acc = 0.0
        extra = 0.0
        count = 0
        for instr in block.instrs:
            cls = type(instr)
            if cls is BinOp:
                lhs = self._value(instr.lhs, env)
                rhs = self._value(instr.rhs, env)
                base, fp_extra = binop_terms(
                    costs, instr.op.value, scale, penalty
                )
                acc += base
                if type(lhs) is float or type(rhs) is float:
                    extra += fp_extra
                count += 1
                env[instr.dest] = eval_binop(instr.op, lhs, rhs)
            elif cls is Move:
                value = self._value(instr.src, env)
                if type(instr.src) is Imm:
                    acc += flat_term(
                        costs.materialize_cost(type(value) is float),
                        scale, penalty,
                    )
                else:
                    base, fp_extra = move_terms(costs, scale, penalty)
                    acc += base
                    if type(value) is float:
                        extra += fp_extra
                count += 1
                env[instr.dest] = value
            elif cls is Load:
                addr = self._value(instr.addr, env)
                acc += flat_term(costs.load, scale, penalty)
                count += 1
                env[instr.dest] = memory.load(addr)
            elif cls is Store:
                addr = self._value(instr.addr, env)
                value = self._value(instr.value, env)
                acc += flat_term(costs.store, scale, penalty)
                count += 1
                memory.store(addr, value)
            elif cls is UnOp:
                src = self._value(instr.src, env)
                base, fp_extra = binop_terms(costs, "alu", scale, penalty)
                acc += base
                if type(src) is float:
                    extra += fp_extra
                count += 1
                env[instr.dest] = eval_unop(instr.op, src)
            elif cls is Call:
                count += 1
                self._commit(acc + extra, count)
                acc = 0.0
                extra = 0.0
                count = 0
                args = [self._value(a, env) for a in instr.args]
                result = self.call(instr.callee, args)
                if instr.dest is not None:
                    env[instr.dest] = result
            elif cls is Jump:
                acc += flat_term(costs.jump, scale, penalty)
                count += 1
                self._commit(acc + extra, count)
                return ("jump", instr.target)
            elif cls is Branch:
                cond = self._value(instr.cond, env)
                acc += flat_term(costs.branch, scale, penalty)
                count += 1
                self._commit(acc + extra, count)
                return ("jump", instr.if_true if cond else instr.if_false)
            elif cls is Return:
                acc += flat_term(costs.return_cost, scale, penalty)
                count += 1
                self._commit(acc + extra, count)
                if instr.value is None:
                    return ("return", None)
                return ("return", self._value(instr.value, env))
            elif cls is MakeStatic or cls is MakeDynamic:
                # Annotations cost nothing and do nothing when executed;
                # the statically compiled configuration ignores them.
                pass
            elif cls is EnterRegion:
                count += 1
                self._commit(acc + extra, count)
                return ("enter_region", instr)
            elif cls is Promote:
                count += 1
                self._commit(acc + extra, count)
                return ("promote", instr)
            elif cls is ExitRegion:
                acc += flat_term(costs.jump, scale, penalty)
                count += 1
                self._commit(acc + extra, count)
                return ("exit", instr.index)
            else:  # pragma: no cover - defensive
                raise MachineError(
                    f"cannot execute {type(instr).__name__}"
                )
        self._commit(acc + extra, count)
        raise MachineError(
            f"block {block.label!r} fell through without a terminator"
        )

    @staticmethod
    def _value(operand: Operand, env: dict):
        if type(operand) is Reg:
            try:
                return env[operand.name]
            except KeyError:
                raise TrapError(
                    f"use of undefined variable {operand.name!r}"
                ) from None
        if type(operand) is Imm:
            return operand.value
        raise TrapError(f"cannot evaluate operand {operand!r}")
