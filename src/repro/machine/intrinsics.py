"""Built-in library routines callable from IR.

Intrinsics model C library functions (``cos`` for chebyshev, etc.) plus a
couple of harness hooks (``print_val`` collects program output so tests
can assert functional correctness of specialized code).

An intrinsic receives ``(machine, args)`` so that harness hooks can reach
the machine's output buffer; pure math intrinsics ignore the machine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class Intrinsic:
    """A built-in routine: its implementation and purity flag.

    Pure intrinsics may be evaluated at dynamic compile time when called
    through a ``pure``-annotated call with all-static arguments (§2.2.6);
    impure ones (I/O hooks) never are.
    """

    name: str
    fn: Callable
    pure: bool = True


def _print_val(machine, args):
    machine.output.append(args[0])
    return 0


INTRINSICS: dict[str, Intrinsic] = {
    "cos": Intrinsic("cos", lambda m, a: math.cos(a[0])),
    "sin": Intrinsic("sin", lambda m, a: math.sin(a[0])),
    "sqrt": Intrinsic("sqrt", lambda m, a: math.sqrt(a[0])),
    "exp": Intrinsic("exp", lambda m, a: math.exp(a[0])),
    "log": Intrinsic("log", lambda m, a: math.log(a[0])),
    "fabs": Intrinsic("fabs", lambda m, a: abs(float(a[0]))),
    "floor": Intrinsic("floor", lambda m, a: math.floor(a[0])),
    "pow2": Intrinsic("pow2", lambda m, a: 2 ** a[0]),
    "print_val": Intrinsic("print_val", _print_val, pure=False),
}


def is_intrinsic(name: str) -> bool:
    return name in INTRINSICS
