"""Python-codegen backend: specialized regions as real code objects.

The direct-threaded backend (:mod:`repro.machine.threaded`) already folds
operand decoding and cost lookups into translation time, but it still
pays one Python call per instruction *step* and one per block.  This
backend goes one emission tier further: each function — host functions
and runtime-emitted region code alike — is lowered to Python *source*,
compiled with :func:`compile`, and executed as a single generated
function, so a straight-line run of IR instructions becomes a
straight-line run of Python statements with zero interpretive overhead.

Lowering rules (see ``DESIGN.md`` §9)
-------------------------------------

* Virtual registers stay in the shared ``env`` dict (``E``) — region code
  shares the host frame's environment across region boundaries (§2.1),
  so locals cannot be used for registers; immediates are folded into
  literals at translation time (the specializer already folded
  runtime-constant operands into ``Imm`` at specialization time).
* Control flow is rebuilt from the layout computed by
  :func:`repro.opt.regionshape.region_shape`: blocks are placed in
  greedy traces so most transfers become plain fallthrough, guarded by a
  monotone chain of ``if L <= k:`` tests that also admits *entry at any
  label* (promotion continuations and region-exit resumes re-enter the
  dispatch loop with an arbitrary label id).  Single-block loops become
  native ``while True:`` statements.
* Two modes: ``counted`` inlines the exact commit sequence of
  :meth:`repro.machine.interp.Machine._commit` with the cost terms of
  :mod:`repro.machine.costs` folded to literals, producing
  ``ExecutionStats`` byte-identical to the reference interpreter (the
  bench checksums enforce this); ``fast`` drops all cycle/step
  accounting and keeps only the semantics — pure wall-clock speed, with
  a dispatch counter standing in for the step limit.

Patch visibility and fallback
-----------------------------

Lazy promotions patch region code buffers *while they execute*; the
specializer bumps ``Function.version`` after each batch.  Generated
region code checks the version at every block transfer and returns
``('stale', label)`` so the driver can retranslate and resume at the
same label — the same protocol the threaded backend implements with its
per-block version re-check.

Compiled code objects are cached in a **bounded, checksummed**
:class:`~repro.runtime.cache.CodeCache` (the PR 3 cache machinery), with
a most-recent-translation fast path per function.  A refused or failed
compilation — the ``pycodegen.compile`` fault point, an oversize source,
or a genuine ``SyntaxError`` — degrades one rung down the backend
ladder: the threaded backend at entry (which itself may degrade to the
reference interpreter), or the reference interpreter directly when the
failure strikes mid-region (resumable at the current label).  See
``repro.runtime.fallback.BACKEND_LADDER``.
"""

from __future__ import annotations

import importlib.util
import marshal
import math
import os
import time

from repro.errors import MachineError, TrapError
from repro.ir.function import Function
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    EnterRegion,
    ExitRegion,
    Imm,
    Jump,
    Load,
    MakeDynamic,
    MakeStatic,
    Move,
    Op,
    Promote,
    Reg,
    Return,
    Store,
    UnOp,
)
from repro.machine import fusionprofile
from repro.machine.costs import binop_terms, flat_term, move_terms
from repro.machine.threaded import (
    BINOP_FUNCS,
    UNOP_FUNCS,
    ThreadedBackend,
    _div,
    _mod,
)
from repro.opt.regionshape import region_shape
from repro.runtime import persist
from repro.runtime.cache import CodeCache, entry_checksum

#: Codegen modes accepted by ``--codegen-mode`` / ``OptConfig``.
CODEGEN_MODES = ("counted", "fast")

#: Refuse to compile generated sources larger than this many characters
#: (runaway unrolling at the codegen tier); the refusal degrades down
#: the backend ladder instead of failing the run.  Overridable via
#: ``REPRO_PYCODEGEN_SOURCE_LIMIT``.
DEFAULT_SOURCE_LIMIT = 2_000_000

#: Bound on retained translations in the backing code cache.
DEFAULT_CACHE_CAPACITY = 256

#: Tiered-compilation policy for region code.  ``compile()`` cost
#: scales with the emitted source, i.e. with the region's instruction
#: footprint, so the decision splits on size: a region at or below
#: ``EAGER_FOOTPRINT`` instructions compiles on first entry (the
#: compile is a couple of milliseconds at most, and looping regions —
#: which may be entered exactly once and do all their work inside —
#: are precisely the small ones); a larger region (typically a
#: completely-unrolled, straight-line body whose per-entry work is
#: bounded by its footprint) must first prove itself hot by running
#: ``max(DEFAULT_COMPILE_THRESHOLD, footprint // 4)`` entries on the
#: threaded tier, which is stats-identical, before the backend pays
#: for ``compile()``.  Host functions are always compiled eagerly
#: (few, small, shared across contexts).  The entry threshold is
#: overridable via ``REPRO_PYCODEGEN_THRESHOLD``; 0 disables tiering
#: and compiles every region eagerly.
DEFAULT_COMPILE_THRESHOLD = 8

#: Regions at or below this instruction footprint compile eagerly.
EAGER_FOOTPRINT = 128

#: Process-wide code-object cache, keyed by generated source text.  The
#: source embeds everything that affects the compiled code (costs are
#: folded to literals, so penalty/scale/mode/version/step-limit are all
#: part of the text); per-machine state (stats, env, runtime) binds at
#: ``exec`` time, which is microseconds.  Sharing code objects across
#: machines lets a second run of the same program — the harness builds
#: two machines per workload, and the bench repeats runs — skip
#: CPython's ``compile()`` entirely.
_CODE_OBJECTS: dict[str, object] = {}
_CODE_OBJECTS_CAP = 256


def resolve_compile_threshold(
        default: int = DEFAULT_COMPILE_THRESHOLD) -> int:
    raw = os.environ.get("REPRO_PYCODEGEN_THRESHOLD", "").strip()
    if raw:
        try:
            return int(raw)
        except ValueError:
            pass
    return default


#: Memoized ``REPRO_PYCODEGEN_SOURCE_LIMIT`` — parsed once per process,
#: like the other env knobs (fusion threshold, persist dir); tests reset
#: it via :func:`reset_source_limit_cache`.
_SOURCE_LIMIT_CACHE: int | None = None


def resolve_source_limit(default: int = DEFAULT_SOURCE_LIMIT) -> int:
    global _SOURCE_LIMIT_CACHE
    if default != DEFAULT_SOURCE_LIMIT:
        # A caller-supplied default participates in the fallback, so it
        # cannot share the process-wide memo.
        return _parse_source_limit(default)
    if _SOURCE_LIMIT_CACHE is None:
        _SOURCE_LIMIT_CACHE = _parse_source_limit(default)
    return _SOURCE_LIMIT_CACHE


def _parse_source_limit(default: int) -> int:
    raw = os.environ.get("REPRO_PYCODEGEN_SOURCE_LIMIT", "").strip()
    if raw:
        try:
            return int(raw)
        except ValueError:
            pass
    return default


def reset_source_limit_cache() -> None:
    """Test hook: re-read ``REPRO_PYCODEGEN_SOURCE_LIMIT`` next time."""
    global _SOURCE_LIMIT_CACHE
    _SOURCE_LIMIT_CACHE = None


class CompileFault(MachineError):
    """The codegen backend refused or failed to compile a function.

    Raised by fault injection (the ``pycodegen.compile`` point), by the
    source-size budget, or by a genuine compile failure; the drivers
    catch it and degrade down the backend ladder
    (pycodegen -> threaded -> reference), which is stats-identical in
    counted mode except for ``degraded_compilations``.
    """


# ----------------------------------------------------------------------
# Expression templates
# ----------------------------------------------------------------------
# Operators whose Python spelling matches eval_binop exactly are inlined;
# the rest (trap conditions: C99 division, int-only bitwise ops, shift
# count checks) call the same wrapper functions the threaded backend
# uses, so semantics cannot drift between the three backends.

_INLINE_BINOPS = {
    Op.ADD: "({a} + {b})",
    Op.SUB: "({a} - {b})",
    Op.MUL: "({a} * {b})",
    Op.EQ: "int({a} == {b})",
    Op.NE: "int({a} != {b})",
    Op.LT: "int({a} < {b})",
    Op.LE: "int({a} <= {b})",
    Op.GT: "int({a} > {b})",
    Op.GE: "int({a} >= {b})",
}

_HELPER_BINOPS = {
    Op.DIV: "_div({a}, {b})",
    Op.MOD: "_mod({a}, {b})",
    Op.AND: "_op_and({a}, {b})",
    Op.OR: "_op_or({a}, {b})",
    Op.XOR: "_op_xor({a}, {b})",
    Op.SHL: "_op_shl({a}, {b})",
    Op.SHR: "_op_shr({a}, {b})",
}

_INLINE_UNOPS = {
    Op.NEG: "(-{a})",
    Op.NOT: "int(not {a})",
}

_HELPER_GLOBALS = {
    "_div": _div,
    "_mod": _mod,
    "_op_and": BINOP_FUNCS[Op.AND],
    "_op_or": BINOP_FUNCS[Op.OR],
    "_op_xor": BINOP_FUNCS[Op.XOR],
    "_op_shl": BINOP_FUNCS[Op.SHL],
    "_op_shr": BINOP_FUNCS[Op.SHR],
}


def _lit(value) -> str:
    """A Python literal that round-trips ``value`` exactly."""
    if type(value) is float and not math.isfinite(value):
        return f"float({str(value)!r})"
    return repr(value)


# ----------------------------------------------------------------------
# Source emission
# ----------------------------------------------------------------------


class _Emitter:
    """Lowers one function to Python source for one (mode, penalty,
    scale, region) configuration."""

    def __init__(self, machine, fn: Function, penalty: float,
                 scale: float, region: bool, mode: str) -> None:
        self.costs = machine.costs
        self.fn = fn
        self.penalty = penalty
        self.scale = scale
        self.region = region
        self.mode = mode
        self.counted = mode == "counted"
        self.version = fn.version
        self.step_limit = machine.step_limit
        # Observed-transfer feedback (superinstruction fusion profiles
        # collected on the threaded tier) reorders the trace layout so
        # hot transfers become fallthrough; None falls back to the
        # static heuristic.  Layout cannot affect counted stats.
        self.shape = region_shape(
            fn, fusionprofile.successors_for(fn.name)
        )
        self.ids = self.shape.ids
        self.lines: list[str] = []
        self.consts: list = []
        # Per-block emission state.
        self.seg_const = 0.0
        self.seg_count = 0
        self.block_extra = False

    # -- low-level helpers ---------------------------------------------

    def emit(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def const_ref(self, obj) -> str:
        self.consts.append(obj)
        return f"K[{len(self.consts) - 1}]"

    @property
    def _limit_msg(self) -> str:
        return f"step limit {self.step_limit} exceeded (infinite loop?)"

    # -- top level ------------------------------------------------------

    def build(self) -> str:
        self.emit(0, "def _run(E, L, ST=ST, MA=MA, C=C, K=K, LBLS=LBLS, "
                     "CALL=CALL, LOAD=LOAD, STORE=STORE):")
        if not self.counted:
            self.emit(1, "D = 0")
        self.emit(1, "while True:")
        if self.region:
            self.emit(2, f"if C.version != {self.version}: "
                         "return ('stale', LBLS[L])")
        if not self.counted:
            self._emit_fast_guard(2)
        chains = []
        cursor = 0
        for chain in self.shape.chains:
            chains.append((cursor, cursor + len(chain) - 1, chain))
            cursor += len(chain)
        if chains:
            self._emit_dispatch(chains, 2)
        self.emit(2, "raise MachineError('pycodegen: unknown label id "
                     "%r' % (L,))")
        return "\n".join(self.lines) + "\n"

    def _emit_dispatch(self, chains: list, ind: int) -> None:
        """Binary interval dispatch over chain id ranges.

        Only the left half of each split nests deeper, so the emitted
        indentation grows with log2(#chains), not with their count.
        """
        if len(chains) == 1:
            lo, _hi, labels = chains[0]
            for offset, label in enumerate(labels):
                next_label = (labels[offset + 1]
                              if offset + 1 < len(labels) else None)
                self._emit_block(label, lo + offset, ind, next_label,
                                 first=offset == 0)
            return
        mid = (len(chains) + 1) // 2
        self.emit(ind, f"if L <= {chains[mid - 1][1]}:")
        self._emit_dispatch(chains[:mid], ind + 1)
        self._emit_dispatch(chains[mid:], ind)

    def _emit_fast_guard(self, ind: int) -> None:
        """Fast mode has no step accounting; a dispatch counter stands in
        for the step limit (any loop passes a dispatch point)."""
        self.emit(ind, "D += 1")
        self.emit(ind, f"if D > {self.step_limit}: "
                       f"raise MachineError({self._limit_msg!r})")

    # -- blocks ---------------------------------------------------------

    def _emit_block(self, label: str, bid: int, ind: int,
                    next_label: str | None, first: bool) -> None:
        # The first block in a chain is only entered by direct dispatch
        # (exact id); later blocks also admit fallthrough from above,
        # which the monotone <= guard encodes: an entry id m skips every
        # block k < m (guard m <= k fails) and starts at block m.
        self.emit(ind, f"if L == {bid}:" if first else f"if L <= {bid}:")
        before = len(self.lines)
        if label in self.shape.self_loops:
            self._emit_self_loop(label, ind + 1, next_label)
        else:
            self._emit_body(label, ind + 1, next_label)
        if len(self.lines) == before:
            self.emit(ind + 1, "pass")

    def _begin_block(self, block, b: int) -> None:
        self.seg_const = 0.0
        self.seg_count = 0
        self.block_extra = self._block_may_extra(block)
        if self.counted and self.block_extra:
            self.emit(b, "X = 0.0")

    def _emit_body(self, label: str, b: int,
                   next_label: str | None) -> None:
        block = self.fn.blocks[label]
        self._begin_block(block, b)
        for instr in block.instrs:
            if self._emit_instr(instr, b, next_label):
                return
        # Fell off the end: charge the straight-line part, then fail
        # exactly as the reference does.
        self._emit_commit(b)
        msg = f"block {label!r} fell through without a terminator"
        self.emit(b, f"raise MachineError({msg!r})")

    def _emit_self_loop(self, label: str, b: int,
                        next_label: str | None) -> None:
        """A single-block loop becomes a native ``while`` statement: the
        back edge stays inside the generated loop (one version check per
        iteration in region code, no dispatch)."""
        block = self.fn.blocks[label]
        term = block.instrs[-1]
        self.emit(b, "while True:")
        w = b + 1
        if not self.counted:
            self._emit_fast_guard(w)
        self._begin_block(block, w)
        for instr in block.instrs[:-1]:
            if self._emit_instr(instr, w, None):
                return  # an unconditional raise ended the block early
        self.emit(w, f"_c = E[{term.cond.name!r}]")
        self.seg_const += flat_term(self.costs.branch, self.scale,
                                    self.penalty)
        self.seg_count += 1
        self._emit_commit(w)
        if term.if_true == label:
            self.emit(w, "if _c:")
            self._emit_stale_guard(w + 1, label)
            self.emit(w + 1, "continue")
            self.emit(w, "break")
            exit_label = term.if_false
        else:
            self.emit(w, "if _c: break")
            self._emit_stale_guard(w, label)
            self.emit(w, "continue")
            exit_label = term.if_true
        self._emit_transfer(exit_label, b, next_label)

    def _block_may_extra(self, block) -> bool:
        """Could any instruction in this block add a float-operand extra?
        (Over-approximate; only gates emission of the ``X`` accumulator.)
        """
        if not self.counted:
            return False
        for instr in block.instrs:
            cls = type(instr)
            if cls is BinOp or cls is UnOp:
                return True
            if cls is Move and type(instr.src) is Reg:
                return True
        return False

    # -- transfers and accounting --------------------------------------

    def _emit_stale_guard(self, ind: int, label: str) -> None:
        """Region code re-checks the version at every block transfer so a
        mid-execution patch is picked up before the next block runs."""
        if self.region:
            self.emit(ind, f"if C.version != {self.version}: "
                           f"return ('stale', {label!r})")

    def _emit_transfer(self, target: str, ind: int,
                       next_label: str | None) -> None:
        tid = self.ids.get(target)
        if tid is None:
            msg = f"pycodegen: jump to unknown block {target!r}"
            self.emit(ind, f"raise MachineError({msg!r})")
            return
        if next_label is not None and target == next_label:
            self._emit_stale_guard(ind, target)
            return  # fallthrough into the next emitted block
        self.emit(ind, f"L = {tid}")
        self.emit(ind, "continue")

    def _emit_commit(self, b: int) -> None:
        """Inline the exact :meth:`Machine._commit` sequence for the
        accumulated segment (counted mode); reset the segment."""
        const, count = self.seg_const, self.seg_count
        self.seg_const = 0.0
        self.seg_count = 0
        if not self.counted or count == 0:
            return
        # The reference commits ``acc + extra``; with no possible extras
        # the addition of 0.0 is a bitwise identity and is elided.
        if self.block_extra:
            self.emit(b, f"ST.cycles += {const!r} + X")
        elif const != 0.0:
            self.emit(b, f"ST.cycles += {const!r}")
        self.emit(b, f"ST.instructions += {count}")
        self.emit(b, f"_t = MA._steps + {count}")
        self.emit(b, "MA._steps = _t")
        self.emit(b, f"if _t > {self.step_limit}: "
                     f"raise MachineError({self._limit_msg!r})")

    # -- instructions ---------------------------------------------------

    def _emit_instr(self, instr, b: int,
                    next_label: str | None) -> bool:
        """Emit one instruction; True when it terminated the block."""
        cls = type(instr)
        if cls is BinOp:
            self._emit_binop(instr, b)
            return False
        if cls is Move:
            self._emit_move(instr, b)
            return False
        if cls is Load:
            self._emit_load(instr, b)
            return False
        if cls is Store:
            self._emit_store(instr, b)
            return False
        if cls is UnOp:
            self._emit_unop(instr, b)
            return False
        if cls is Call:
            self._emit_call(instr, b)
            return False
        if cls is MakeStatic or cls is MakeDynamic:
            # Annotations execute for free in every backend.
            return False
        if cls is Jump:
            self.seg_const += flat_term(self.costs.jump, self.scale,
                                        self.penalty)
            self.seg_count += 1
            self._emit_commit(b)
            self._emit_transfer(instr.target, b, next_label)
            return True
        if cls is Branch:
            self._emit_branch(instr, b, next_label)
            return True
        if cls is Return:
            self._emit_return(instr, b)
            return True
        if cls is EnterRegion:
            self.seg_count += 1
            self._emit_commit(b)
            self.emit(b, f"return ('enter_region', "
                         f"{self.const_ref(instr)})")
            return True
        if cls is Promote:
            self.seg_count += 1
            self._emit_commit(b)
            self.emit(b, f"return ('promote', {self.const_ref(instr)})")
            return True
        if cls is ExitRegion:
            self.seg_const += flat_term(self.costs.jump, self.scale,
                                        self.penalty)
            self.seg_count += 1
            self._emit_commit(b)
            self.emit(b, f"return ('exit', {instr.index!r})")
            return True
        msg = f"cannot execute {cls.__name__}"
        self.emit(b, f"raise MachineError({msg!r})")
        return True  # nothing after an unconditional raise can run

    def _bad_operand(self, operand, b: int, read_first=()) -> None:
        """Defer an unevaluable operand to execution time, reading any
        preceding register operands first so undefined-variable traps
        keep the reference's left-to-right order."""
        for prior in read_first:
            if type(prior) is Reg:
                self.emit(b, f"_t = E[{prior.name!r}]")
        msg = f"cannot evaluate operand {operand!r}"
        self.emit(b, f"raise TrapError({msg!r})")

    def _emit_binop(self, instr: BinOp, b: int) -> None:
        op = instr.op
        base, fp_extra = binop_terms(self.costs, op.value, self.scale,
                                     self.penalty)
        self.seg_const += base
        self.seg_count += 1
        fn = BINOP_FUNCS.get(op)
        if fn is None:
            msg = f"{op} is not a binary operator"
            self.emit(b, f"raise TrapError({msg!r})")
            return
        lhs, rhs = instr.lhs, instr.rhs
        lk, rk = type(lhs), type(rhs)
        if lk is not Reg and lk is not Imm:
            self._bad_operand(lhs, b)
            return
        if rk is not Reg and rk is not Imm:
            self._bad_operand(rhs, b, read_first=(lhs,))
            return
        tmpl = _INLINE_BINOPS.get(op) or _HELPER_BINOPS[op]
        dest = f"E[{instr.dest!r}]"
        if lk is Reg and rk is Reg:
            self.emit(b, f"_a = E[{lhs.name!r}]")
            self.emit(b, f"_b = E[{rhs.name!r}]")
            self.emit(b, f"{dest} = {tmpl.format(a='_a', b='_b')}")
            if self.counted:
                self.emit(b, "if type(_a) is float or type(_b) is "
                             f"float: X += {fp_extra!r}")
            return
        if lk is Reg:
            value = rhs.value
            self.emit(b, f"_a = E[{lhs.name!r}]")
            self.emit(b, f"{dest} = {tmpl.format(a='_a', b=_lit(value))}")
            if self.counted:
                if type(value) is float:
                    self.emit(b, f"X += {fp_extra!r}")
                else:
                    self.emit(b, f"if type(_a) is float: X += {fp_extra!r}")
            return
        if rk is Reg:
            value = lhs.value
            self.emit(b, f"_b = E[{rhs.name!r}]")
            self.emit(b, f"{dest} = {tmpl.format(a=_lit(value), b='_b')}")
            if self.counted:
                if type(value) is float:
                    self.emit(b, f"X += {fp_extra!r}")
                else:
                    self.emit(b, f"if type(_b) is float: X += {fp_extra!r}")
            return
        # Both immediate: fold at translation time unless evaluation
        # traps (a division by zero must trap at execution time).
        a, v = lhs.value, rhs.value
        is_fp = type(a) is float or type(v) is float
        try:
            result = fn(a, v)
        except TrapError:
            self.emit(b, f"{dest} = {tmpl.format(a=_lit(a), b=_lit(v))}")
        else:
            self.emit(b, f"{dest} = {_lit(result)}")
        if self.counted and is_fp:
            self.emit(b, f"X += {fp_extra!r}")

    def _emit_unop(self, instr: UnOp, b: int) -> None:
        base, fp_extra = binop_terms(self.costs, "alu", self.scale,
                                     self.penalty)
        self.seg_const += base
        self.seg_count += 1
        fn = UNOP_FUNCS.get(instr.op)
        if fn is None:
            msg = f"{instr.op} is not a unary operator"
            self.emit(b, f"raise TrapError({msg!r})")
            return
        src = instr.src
        dest = f"E[{instr.dest!r}]"
        if type(src) is Reg:
            tmpl = _INLINE_UNOPS[instr.op]
            self.emit(b, f"_a = E[{src.name!r}]")
            self.emit(b, f"{dest} = {tmpl.format(a='_a')}")
            if self.counted:
                self.emit(b, f"if type(_a) is float: X += {fp_extra!r}")
            return
        if type(src) is not Imm:
            self._bad_operand(src, b)
            return
        self.emit(b, f"{dest} = {_lit(fn(src.value))}")
        if self.counted and type(src.value) is float:
            self.emit(b, f"X += {fp_extra!r}")

    def _emit_move(self, instr: Move, b: int) -> None:
        src = instr.src
        dest = f"E[{instr.dest!r}]"
        if type(src) is Imm:
            value = src.value
            self.seg_const += flat_term(
                self.costs.materialize_cost(type(value) is float),
                self.scale, self.penalty,
            )
            self.seg_count += 1
            self.emit(b, f"{dest} = {_lit(value)}")
            return
        if type(src) is not Reg:
            self._bad_operand(src, b)
            return
        base, fp_extra = move_terms(self.costs, self.scale, self.penalty)
        self.seg_const += base
        self.seg_count += 1
        self.emit(b, f"_v = E[{src.name!r}]")
        self.emit(b, f"{dest} = _v")
        if self.counted:
            self.emit(b, f"if type(_v) is float: X += {fp_extra!r}")

    def _emit_load(self, instr: Load, b: int) -> None:
        self.seg_const += flat_term(self.costs.load, self.scale,
                                    self.penalty)
        self.seg_count += 1
        addr = instr.addr
        if type(addr) is Reg:
            expr = f"E[{addr.name!r}]"
        elif type(addr) is Imm:
            expr = _lit(addr.value)
        else:
            self._bad_operand(addr, b)
            return
        self.emit(b, f"E[{instr.dest!r}] = LOAD({expr})")

    def _emit_store(self, instr: Store, b: int) -> None:
        self.seg_const += flat_term(self.costs.store, self.scale,
                                    self.penalty)
        self.seg_count += 1
        exprs = []
        operands = (instr.addr, instr.value)
        for index, operand in enumerate(operands):
            if type(operand) is Reg:
                exprs.append(f"E[{operand.name!r}]")
            elif type(operand) is Imm:
                exprs.append(_lit(operand.value))
            else:
                self._bad_operand(operand, b,
                                  read_first=operands[:index])
                return
        self.emit(b, f"STORE({exprs[0]}, {exprs[1]})")

    def _emit_call(self, instr: Call, b: int) -> None:
        # A Call ends the segment: the reference commits before
        # evaluating the arguments.
        self.seg_count += 1
        self._emit_commit(b)
        if self.counted and self.block_extra:
            self.emit(b, "X = 0.0")
        arg_exprs = []
        for index, arg in enumerate(instr.args):
            if type(arg) is Reg:
                arg_exprs.append(f"E[{arg.name!r}]")
            elif type(arg) is Imm:
                arg_exprs.append(_lit(arg.value))
            else:
                # Evaluate the preceding arguments (left-to-right trap
                # order), then fail on the unevaluable one.
                if arg_exprs:
                    self.emit(b, f"[{', '.join(arg_exprs)}]")
                self._bad_operand(arg, b)
                return
        args = f"[{', '.join(arg_exprs)}]"
        if instr.dest is None:
            self.emit(b, f"CALL({instr.callee!r}, {args})")
        else:
            self.emit(b, f"E[{instr.dest!r}] = "
                         f"CALL({instr.callee!r}, {args})")

    def _emit_branch(self, instr: Branch, b: int,
                     next_label: str | None) -> None:
        cond = instr.cond
        ck = type(cond)
        if ck is Reg:
            # The condition is read before the commit, matching the
            # reference (an undefined condition traps uncommitted).
            self.emit(b, f"_c = E[{cond.name!r}]")
        elif ck is not Imm:
            self._bad_operand(cond, b)
            return
        self.seg_const += flat_term(self.costs.branch, self.scale,
                                    self.penalty)
        self.seg_count += 1
        self._emit_commit(b)
        if ck is Imm:
            target = instr.if_true if cond.value else instr.if_false
            self._emit_transfer(target, b, next_label)
            return
        t_label, f_label = instr.if_true, instr.if_false
        tid, fid = self.ids.get(t_label), self.ids.get(f_label)
        if next_label is not None and f_label == next_label \
                and tid is not None:
            self.emit(b, f"if _c: L = {tid}; continue")
            self._emit_stale_guard(b, f_label)
            return  # false arm falls through
        if next_label is not None and t_label == next_label \
                and fid is not None:
            self.emit(b, f"if not _c: L = {fid}; continue")
            self._emit_stale_guard(b, t_label)
            return  # true arm falls through
        if tid is not None and fid is not None:
            self.emit(b, f"L = {tid} if _c else {fid}")
            self.emit(b, "continue")
            return
        self.emit(b, "if _c:")
        self._emit_transfer(t_label, b + 1, None)
        self.emit(b, "else:")
        self._emit_transfer(f_label, b + 1, None)

    def _emit_return(self, instr: Return, b: int) -> None:
        self.seg_const += flat_term(self.costs.return_cost, self.scale,
                                    self.penalty)
        self.seg_count += 1
        value = instr.value
        # The reference commits first, then reads the return value.
        self._emit_commit(b)
        if value is None:
            self.emit(b, "return ('return', None)")
        elif type(value) is Imm:
            self.emit(b, f"return ('return', {_lit(value.value)})")
        elif type(value) is Reg:
            self.emit(b, f"return ('return', E[{value.name!r}])")
        else:
            msg = f"cannot evaluate operand {value!r}"
            self.emit(b, f"raise TrapError({msg!r})")


# ----------------------------------------------------------------------
# Translations
# ----------------------------------------------------------------------


class _PyTranslation:
    __slots__ = ("function", "version", "penalty", "scale", "region",
                 "mode", "run", "ids", "labels", "source")

    def __init__(self, function: Function, penalty: float, scale: float,
                 region: bool, mode: str, run, ids: dict,
                 labels: tuple, source: str) -> None:
        self.function = function
        self.version = function.version
        self.penalty = penalty
        self.scale = scale
        self.region = region
        self.mode = mode
        self.run = run
        self.ids = ids
        self.labels = labels
        self.source = source

    def cache_identity(self) -> tuple:
        """Stable identity fields for the cache's integrity stamps.

        Translations are immutable once built (a patched function gets a
        *new* translation under a new version key), so the full identity
        tuple is stable for the entry's lifetime.
        """
        return (self.function.name, self.version, self.mode,
                int(self.region), self.penalty, self.scale,
                len(self.source))


class PyCodegenBackend:
    """Per-machine Python-source translator + drivers."""

    def __init__(self, machine, mode: str = "counted",
                 cache_capacity: int = DEFAULT_CACHE_CAPACITY) -> None:
        if mode not in CODEGEN_MODES:
            raise MachineError(
                f"unknown codegen mode {mode!r} "
                f"(expected one of {CODEGEN_MODES})"
            )
        self.machine = machine
        self.mode = mode
        self.source_limit = resolve_source_limit()
        self.compile_threshold = resolve_compile_threshold()
        #: Region-code heat for tiered compilation: id(code) ->
        #: [code, entries, tiered_up].  Holds a strong reference to the
        #: code object so a recycled id can never alias a new region.
        self._heat: dict[int, list] = {}
        #: Most-recent translation per function — the O(1) hot path.
        #: Entries hold a strong reference to their Function, so a
        #: cached id can never be recycled by a different object.
        self._latest: dict[int, _PyTranslation] = {}
        #: Bounded, checksummed backing store (PR 3 cache machinery);
        #: authoritative for retention, re-verified on every hit.
        self._store = CodeCache(capacity=cache_capacity,
                                checksum=entry_checksum)
        self._threaded: ThreadedBackend | None = None
        # Introspection counters (tests / reporting).
        self.compiled_functions = 0
        self.oversize_refusals = 0

    # -- cache ----------------------------------------------------------

    def translation(self, fn: Function, penalty: float, scale: float,
                    region: bool) -> _PyTranslation:
        entry = self._latest.get(id(fn))
        if (entry is not None and entry.function is fn
                and entry.version == fn.version
                and entry.penalty == penalty
                and entry.scale == scale
                and entry.region == region):
            return entry
        key = (id(fn), fn.version, penalty, scale, int(region),
               self.mode)
        found = self._store.lookup(key)
        if found.hit and found.value.function is fn:
            self._latest[id(fn)] = found.value
            return found.value
        runtime = self.machine.runtime
        if runtime is not None:
            faults = getattr(runtime, "faults", None)
            if faults is not None and faults.active \
                    and faults.should_fire("pycodegen.compile"):
                raise CompileFault(
                    f"injected fault compiling {fn.name!r} "
                    f"(version {fn.version})"
                )
        entry = self._compile(fn, penalty, scale, region)
        self._store.insert(key, entry)
        self._latest[id(fn)] = entry
        return entry

    def invalidate(self, fn: Function) -> None:
        """Drop the fast-path translation of ``fn`` (tests / tooling)."""
        self._latest.pop(id(fn), None)

    def _persist_digest(self, fn: Function, penalty: float,
                        scale: float, region: bool) -> str:
        """Content key of one emission: everything the source embeds.

        Cost literals, penalty/scale, the step limit, the codegen mode,
        and the (profile-dependent) trace layout all shape the emitted
        text, so they are all part of the key; the function text itself
        covers name/version/blocks.
        """
        profile = fusionprofile.successors_for(fn.name)
        profile_key = None if profile is None else sorted(
            (src, tuple(sorted(dsts.items())))
            for src, dsts in profile.items()
        )
        return persist.digest(
            "pycodegen", persist.PERSIST_SCHEMA,
            persist.function_text(fn), penalty, scale, int(region),
            self.mode, self.machine.step_limit,
            repr(self.machine.costs), profile_key,
        )

    def _code_object(self, fn: Function, source: str):
        """The process-wide source-keyed code object for ``source``."""
        code = _CODE_OBJECTS.get(source)
        if code is None:
            filename = f"<pycodegen:{fn.name}:v{fn.version}>"
            try:
                code = compile(source, filename, "exec")
            except SyntaxError as exc:  # pragma: no cover - defensive
                raise CompileFault(
                    f"pycodegen emitted invalid source for {fn.name!r}: "
                    f"{exc}"
                ) from exc
            if len(_CODE_OBJECTS) >= _CODE_OBJECTS_CAP:
                _CODE_OBJECTS.clear()
            _CODE_OBJECTS[source] = code
        return code

    def _bind(self, fn: Function, penalty: float, scale: float,
              region: bool, code, source: str, consts: tuple,
              ids: dict, labels) -> _PyTranslation:
        """Exec ``code`` against this machine and wrap the entry point."""
        machine = self.machine
        namespace = dict(_HELPER_GLOBALS)
        namespace.update(
            TrapError=TrapError,
            MachineError=MachineError,
            ST=machine.stats,
            MA=machine,
            C=fn,
            K=consts,
            LBLS=labels,
            CALL=machine.call,
            LOAD=machine.memory.load,
            STORE=machine.memory.store,
        )
        exec(code, namespace)
        self.compiled_functions += 1
        return _PyTranslation(
            fn, penalty, scale, region, self.mode,
            namespace["_run"], ids, labels, source,
        )

    def _from_record(self, fn: Function, penalty: float, scale: float,
                     region: bool, record) -> _PyTranslation | None:
        """Rebuild a translation from a persisted emission, or None."""
        try:
            source = record["source"]
            consts = tuple(record["consts"])
            ids = dict(record["ids"])
            labels = tuple(record["labels"])
            magic = record["magic"]
            code_bytes = record["code"]
        except (TypeError, KeyError):
            return None
        if not isinstance(source, str):
            return None
        if len(source) > self.source_limit:
            # Byte-identical refusal: a warm process under a tighter
            # limit must degrade exactly like the cold one did.
            self.oversize_refusals += 1
            raise CompileFault(
                f"generated source for {fn.name!r} is {len(source)} "
                f"chars (limit {self.source_limit}); see DYC210"
            )
        code = _CODE_OBJECTS.get(source)
        if code is None and magic == importlib.util.MAGIC_NUMBER \
                and isinstance(code_bytes, bytes):
            try:
                code = marshal.loads(code_bytes)
            except (EOFError, ValueError, TypeError):
                code = None
            if code is not None:
                if len(_CODE_OBJECTS) >= _CODE_OBJECTS_CAP:
                    _CODE_OBJECTS.clear()
                _CODE_OBJECTS[source] = code
        if code is None:
            # Different interpreter (or damaged marshal): the emitted
            # source is still authoritative — recompile it.
            code = self._code_object(fn, source)
        return self._bind(fn, penalty, scale, region, code, source,
                          consts, ids, labels)

    def _compile(self, fn: Function, penalty: float, scale: float,
                 region: bool) -> _PyTranslation:
        machine = self.machine
        store = persist.active_store()
        digest_ = None
        faults = None
        if store is not None:
            digest_ = self._persist_digest(fn, penalty, scale, region)
            runtime = machine.runtime
            faults = getattr(runtime, "faults", None) \
                if runtime is not None else None
            record = store.get("pycodegen", digest_, faults=faults)
            if record is not None:
                entry = self._from_record(fn, penalty, scale, region,
                                          record)
                if entry is not None:
                    return entry
        began = time.perf_counter()
        emitter = _Emitter(machine, fn, penalty, scale, region,
                           self.mode)
        source = emitter.build()
        if len(source) > self.source_limit:
            self.oversize_refusals += 1
            raise CompileFault(
                f"generated source for {fn.name!r} is {len(source)} "
                f"chars (limit {self.source_limit}); see DYC210"
            )
        code = self._code_object(fn, source)
        entry = self._bind(fn, penalty, scale, region, code, source,
                           tuple(emitter.consts), dict(emitter.ids),
                           emitter.shape.order)
        if store is not None:
            store.record_work("pycodegen",
                              time.perf_counter() - began)
            store.put("pycodegen", digest_, {
                "source": source,
                "consts": tuple(emitter.consts),
                "ids": dict(emitter.ids),
                "labels": tuple(emitter.shape.order),
                "magic": importlib.util.MAGIC_NUMBER,
                "code": marshal.dumps(code),
            }, faults=faults)
        return entry

    # -- fallback -------------------------------------------------------

    def _fallback(self) -> ThreadedBackend:
        """Next rung of the backend ladder (built lazily; it degrades
        further to the reference interpreter on its own faults)."""
        if self._threaded is None:
            self._threaded = ThreadedBackend(self.machine)
        return self._threaded

    # -- drivers --------------------------------------------------------

    @staticmethod
    def _run_guarded(trans: _PyTranslation, env: dict, lid: int):
        """Invoke generated code, mapping register-file misses back to
        the machine's trap protocol.  Generated code reads registers as
        plain ``E[name]`` lookups; a ``KeyError`` whose key is a string
        is an undefined virtual register (``Memory`` raises
        ``MemoryFault``, never ``KeyError``, so there is no collision).
        """
        try:
            return trans.run(env, lid)
        except KeyError as err:
            name = err.args[0] if err.args else None
            if isinstance(name, str):
                raise TrapError(
                    f"use of undefined variable {name!r}"
                ) from None
            raise

    def exec_function(self, function: Function, env: dict):
        """Codegen equivalent of ``Machine._exec_function``."""
        machine = self.machine
        penalty = machine.icache.per_instruction_penalty(
            function.instruction_count()
        )
        scale = machine.costs.static_schedule_factor
        try:
            trans = self.translation(function, penalty, scale,
                                     region=False)
        except CompileFault:
            machine.stats.degraded_compilations += 1
            return self._fallback().exec_function(function, env)
        lid = trans.ids[function.entry]
        while True:
            kind, payload = self._run_guarded(trans, env, lid)
            if kind == "return":
                return payload
            if kind == "enter_region":
                if machine.runtime is None:
                    raise MachineError(
                        "EnterRegion executed without a runtime attached"
                    )
                outcome, value = machine.runtime.enter_region(
                    machine, payload, env
                )
                if outcome == "return":
                    return value
                lid = trans.ids[value]
            else:  # pragma: no cover - defensive
                raise MachineError(
                    f"unexpected block outcome {kind!r}"
                )

    def exec_region_code(self, code: Function, env: dict,
                         footprint: int) -> tuple[str, object]:
        """Codegen equivalent of ``Machine.exec_region_code``.

        The penalty is fixed at entry (from ``footprint``), matching the
        reference; generated region code returns ``('stale', label)``
        whenever the version changes under it, and the driver
        retranslates and resumes.  A compile failure degrades to the
        threaded backend at entry, or — mid-region, where only the
        reference loop is label-resumable from outside — directly to
        the reference interpreter.
        """
        machine = self.machine
        if self.compile_threshold and footprint > EAGER_FOOTPRINT:
            heat = self._heat.get(id(code))
            if heat is None or heat[0] is not code:
                heat = [code, 0, False]
                self._heat[id(code)] = heat
            if not heat[2]:
                heat[1] += 1
                if heat[1] <= max(self.compile_threshold,
                                  footprint // 4):
                    # Still cold: run this entry on the threaded tier
                    # (stats-identical) instead of paying compile().
                    return self._fallback().exec_region_code(
                        code, env, footprint
                    )
                heat[2] = True
        penalty = machine.icache.per_instruction_penalty(footprint)
        try:
            trans = self.translation(code, penalty, 1.0, region=True)
        except CompileFault:
            machine.stats.degraded_compilations += 1
            return self._fallback().exec_region_code(code, env,
                                                     footprint)
        label = code.entry
        while True:
            if code.version != trans.version:
                try:
                    trans = self.translation(code, penalty, 1.0,
                                             region=True)
                except CompileFault:
                    machine.stats.degraded_compilations += 1
                    return machine._exec_region_interp(
                        code, env, footprint, label
                    )
            lid = trans.ids[label]
            kind, payload = self._run_guarded(trans, env, lid)
            if kind in ("exit", "return"):
                return (kind, payload)
            if kind == "promote":
                label = machine.runtime.promote(machine, payload, env,
                                                code)
            elif kind == "stale":
                label = payload
            else:  # pragma: no cover - defensive
                raise MachineError(
                    f"unexpected outcome {kind!r} in region code"
                )
