"""Direct-threaded closure backend for the abstract machine.

The reference interpreter in :mod:`repro.machine.interp` re-decodes every
instruction on every execution: a type-dispatch chain, operand ``_value``
calls, cost-model lookups, and accounting updates per instruction.  This
module instead *translates* each basic block once — host function blocks
and runtime-emitted region code alike — into a chain of Python closures
with all of that folded in at translation time:

* operand decoding becomes captured variables (register names bound for a
  plain ``env[name]`` lookup, immediates bound as constants);
* cost-model lookups happen during translation, via the same shared term
  helpers the reference uses (:func:`repro.machine.costs.flat_term` and
  friends), so every charge is the bit-identical float;
* the type-independent charge terms of a straight-line segment are summed
  at translation time into one constant, committed in a single addition at
  the segment boundary; only the float-operand *extras* remain run-time
  conditional, accumulated in occurrence order exactly as the reference
  accumulates them.

The result is byte-identical :class:`~repro.machine.interp.ExecutionStats`
(cycles, instructions, dc_cycles, dispatch_cycles, scope_cycles) and
outputs, several times faster.

Translation caching and invalidation
------------------------------------

Translations are cached per :class:`~repro.ir.function.Function` object and
keyed on its ``version`` counter (plus the I-cache penalty and schedule
scale in effect).  Host functions are fixed after static compile, so their
translations live for the machine's lifetime.  Runtime-emitted region code
is *patched in place* by lazy promotions (the specializer threads jumps and
adds continuation blocks into a buffer that is already executing); the
specializer bumps ``Function.version`` after every batch, and the region
driver below re-checks the version at every block boundary, so patched
code is retranslated before the next block runs.

One deliberate subtlety: the reference computes the region's I-cache
penalty once per ``exec_region_code`` call, from the footprint at entry,
and keeps using it even after a mid-call promotion grows the code.  The
driver here does the same — retranslation after a version bump reuses the
entry-time penalty — so the two backends stay cycle-identical.
"""

from __future__ import annotations

import math
import operator
import os

from repro.errors import MachineError, TrapError
from repro.ir.eval import _c_div, _c_mod
from repro.ir.function import Function
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    EnterRegion,
    ExitRegion,
    Imm,
    Jump,
    Load,
    MakeDynamic,
    MakeStatic,
    Move,
    Op,
    Promote,
    Reg,
    Return,
    Store,
    UnOp,
)
from repro.machine import fusionprofile
from repro.machine.costs import binop_terms, flat_term, move_terms
from repro.runtime import persist

# ----------------------------------------------------------------------
# Per-operator evaluators
# ----------------------------------------------------------------------
# eval_binop's if-chain compares against up to 16 Op members per executed
# instruction; translation selects the single evaluator up front.  The
# wrappers reuse the same helpers as repro.ir.eval so the semantics (C99
# truncating division, trap conditions) cannot drift; a unit test
# cross-checks every operator against eval_binop.


def _div(lhs, rhs):
    if rhs == 0:
        raise TrapError("division by zero")
    if isinstance(lhs, int) and isinstance(rhs, int):
        return _c_div(lhs, rhs)
    return lhs / rhs


def _mod(lhs, rhs):
    if rhs == 0:
        raise TrapError("modulo by zero")
    if isinstance(lhs, int) and isinstance(rhs, int):
        return _c_mod(lhs, rhs)
    return math.fmod(lhs, rhs)


def _int_only(op: Op, fn):
    def wrapped(lhs, rhs, _op=op, _fn=fn):
        if isinstance(lhs, float) or isinstance(rhs, float):
            raise TrapError(f"{_op} requires integer operands, got "
                            f"{lhs!r} and {rhs!r}")
        return _fn(lhs, rhs)

    return wrapped


def _shift(op: Op, fn):
    def wrapped(lhs, rhs, _op=op, _fn=fn):
        if isinstance(lhs, float) or isinstance(rhs, float):
            raise TrapError(f"{_op} requires integer operands, got "
                            f"{lhs!r} and {rhs!r}")
        if rhs < 0:
            raise TrapError("negative shift count")
        return _fn(lhs, rhs)

    return wrapped


BINOP_FUNCS = {
    Op.ADD: operator.add,
    Op.SUB: operator.sub,
    Op.MUL: operator.mul,
    Op.DIV: _div,
    Op.MOD: _mod,
    Op.AND: _int_only(Op.AND, operator.and_),
    Op.OR: _int_only(Op.OR, operator.or_),
    Op.XOR: _int_only(Op.XOR, operator.xor),
    Op.SHL: _shift(Op.SHL, operator.lshift),
    Op.SHR: _shift(Op.SHR, operator.rshift),
    Op.EQ: lambda lhs, rhs: int(lhs == rhs),
    Op.NE: lambda lhs, rhs: int(lhs != rhs),
    Op.LT: lambda lhs, rhs: int(lhs < rhs),
    Op.LE: lambda lhs, rhs: int(lhs <= rhs),
    Op.GT: lambda lhs, rhs: int(lhs > rhs),
    Op.GE: lambda lhs, rhs: int(lhs >= rhs),
}

UNOP_FUNCS = {
    Op.NEG: operator.neg,
    Op.NOT: lambda src: int(not src),
}


def _undefined(name: str):
    raise TrapError(f"use of undefined variable {name!r}")


#: Function entries before a translation is retranslated with
#: superinstruction fusion (see ``_fuse_steps``).  Fusion costs one extra
#: retranslation, so it is profile-guided: only translations hot enough
#: to re-enter this many times pay for it.  Overridable via
#: ``REPRO_FUSION_THRESHOLD``; 0 disables fusion entirely.
DEFAULT_FUSION_THRESHOLD = 32


def resolve_fusion_threshold(
        default: int = DEFAULT_FUSION_THRESHOLD) -> int:
    raw = os.environ.get("REPRO_FUSION_THRESHOLD", "").strip()
    if raw:
        try:
            return int(raw)
        except ValueError:
            pass
    return default


class TranslationFault(MachineError):
    """An injected ``threaded.translate`` fault refused a translation.

    Raised only by fault injection (:mod:`repro.faults`); the drivers
    catch it and degrade to the reference interpreter, which is
    cycle-identical by construction, so a translation fault is invisible
    in the stats except for ``degraded_translations``.
    """


# ----------------------------------------------------------------------
# Translation
# ----------------------------------------------------------------------
#
# A block compiles to a *runner*: ``runner(env) -> outcome`` where outcome
# is the same ``(kind, payload)`` tuple the reference _exec_block returns.
# Internally a runner is a sequence of segments; each segment is a tuple of
# *steps* plus one pre-summed constant charge.  A step is
# ``step(env, extra) -> extra``: it performs one instruction's semantics
# and threads the float-extras accumulator through, so the commit at the
# segment boundary is ``_commit(const + extra, count)`` — the identical
# float computation the reference performs term by term.


class _Translation:
    __slots__ = ("function", "version", "penalty", "scale", "runners",
                 "entries", "fused")

    def __init__(self, function: Function, penalty: float, scale: float,
                 runners: dict, fused: bool = False):
        self.function = function
        self.version = function.version
        self.penalty = penalty
        self.scale = scale
        self.runners = runners
        #: Driver entries under this translation (the quickening
        #: profile); reset by retranslation after a version bump, so
        #: patched code re-warms before fusing again.
        self.entries = 0
        self.fused = fused


class ThreadedBackend:
    """Per-machine translator + drivers for the threaded backend."""

    def __init__(self, machine) -> None:
        self.machine = machine
        #: id(function) -> _Translation.  Entries hold a strong reference
        #: to their Function, so a cached id can never be recycled by a
        #: different object.
        self._cache: dict[int, _Translation] = {}
        self.fusion_threshold = resolve_fusion_threshold()
        # Quickening counters (tests / reporting).
        self.quickened_functions = 0
        self.fused_specialized = 0
        self.fused_generic = 0

    # -- cache ----------------------------------------------------------

    def translation(self, fn: Function, penalty: float,
                    scale: float) -> _Translation:
        entry = self._cache.get(id(fn))
        if (entry is not None and entry.function is fn
                and entry.version == fn.version
                and entry.penalty == penalty
                and entry.scale == scale):
            if not entry.fused and self.fusion_threshold:
                entry.entries += 1
                if entry.entries >= self.fusion_threshold:
                    entry = self._quicken(fn, entry)
            return entry
        runtime = self.machine.runtime
        if runtime is not None:
            faults = getattr(runtime, "faults", None)
            if faults is not None and faults.active \
                    and faults.should_fire("threaded.translate"):
                raise TranslationFault(
                    f"injected fault translating {fn.name!r} "
                    f"(version {fn.version})"
                )
        fuse = False
        if self.fusion_threshold:
            store = persist.active_store()
            if store is not None \
                    and fusionprofile.collector() is None \
                    and store.get(
                        "fusion",
                        self._fusion_digest(fn, penalty, scale),
                        faults=self._persist_faults(),
                    ) is not None:
                # A previous process proved this translation hot enough
                # to fuse: skip the re-warm and fuse eagerly.  Fused
                # steps compose the originals, so this is
                # stats-identical either way — a wrong (weak-key) hit
                # costs only a needless eager fusion.
                fuse = True
        entry = self._translate(fn, penalty, scale, fuse=fuse)
        self._cache[id(fn)] = entry
        return entry

    def invalidate(self, fn: Function) -> None:
        """Drop any cached translation of ``fn`` (tests / tooling)."""
        self._cache.pop(id(fn), None)

    def _persist_faults(self):
        runtime = self.machine.runtime
        return getattr(runtime, "faults", None) \
            if runtime is not None else None

    def _fusion_digest(self, fn: Function, penalty: float,
                       scale: float) -> str:
        """Deliberately *weak* content key for a fusion decision.

        Hashing the full block list on every fresh translation (regions
        retranslate after every version bump) would cost more than
        fusion saves, so the key is a cheap shape summary.  That is safe
        precisely because fusion preserves stats and semantics — unlike
        the entry/cont/pycodegen kinds, a stale hit cannot corrupt a
        run, only fuse something lukewarm.
        """
        return persist.digest(
            "fusion", persist.PERSIST_SCHEMA, fn.name, fn.version,
            fn.entry, fn.instruction_count(), len(fn.blocks), penalty,
            scale, self.fusion_threshold,
        )

    def _quicken(self, fn: Function, trans: _Translation) -> _Translation:
        """Retranslate a hot function with superinstruction fusion.

        Quickening is internal re-emission, not a fresh translation, so
        it bypasses the ``threaded.translate`` fault point; the fused
        steps compose the originals and stay byte-identical in stats.
        """
        entry = self._translate(fn, trans.penalty, trans.scale,
                                fuse=True)
        entry.entries = trans.entries
        self._cache[id(fn)] = entry
        self.quickened_functions += 1
        store = persist.active_store()
        if store is not None and fusionprofile.collector() is None:
            store.put(
                "fusion",
                self._fusion_digest(fn, trans.penalty, trans.scale),
                True, faults=self._persist_faults(),
            )
        return entry

    def _fusion_fuel(self, trans: _Translation) -> int | None:
        """Block dispatches a driver may run under ``trans`` before
        quickening it mid-run, or None when fusion is settled.

        Driver *entries* alone miss the hottest shape of all — a region
        or host function entered once whose loops run entirely inside
        the dispatch loop — so the drivers also count block transfers.
        """
        if trans.fused or not self.fusion_threshold:
            return None
        return self.fusion_threshold * 64

    # -- drivers --------------------------------------------------------

    def exec_function(self, function: Function, env: dict):
        """Threaded equivalent of ``Machine._exec_function``."""
        machine = self.machine
        penalty = machine.icache.per_instruction_penalty(
            function.instruction_count()
        )
        scale = machine.costs.static_schedule_factor
        try:
            trans = self.translation(function, penalty, scale)
        except TranslationFault:
            machine.stats.degraded_translations += 1
            return machine._exec_function_interp(function, env)
        runners = trans.runners
        fuel = self._fusion_fuel(trans)
        profile = fusionprofile.collector()
        label = function.entry
        while True:
            kind, payload = runners[label](env)
            if kind == "jump":
                if profile is not None:
                    profile.record(function.name, label, payload)
                label = payload
                if fuel is not None:
                    fuel -= 1
                    if fuel <= 0:
                        trans = self._quicken(function, trans)
                        runners = trans.runners
                        fuel = None
            elif kind == "return":
                return payload
            elif kind == "enter_region":
                if machine.runtime is None:
                    raise MachineError(
                        "EnterRegion executed without a runtime attached"
                    )
                outcome, value = machine.runtime.enter_region(
                    machine, payload, env
                )
                if outcome == "return":
                    return value
                label = value
            else:  # pragma: no cover - defensive
                raise MachineError(f"unexpected block outcome {kind!r}")

    def exec_region_code(self, code: Function, env: dict,
                         footprint: int) -> tuple[str, object]:
        """Threaded equivalent of ``Machine.exec_region_code``.

        The penalty is fixed at entry (from ``footprint``), matching the
        reference; the translation is revalidated at every block boundary
        because promotions patch the code buffer mid-execution.
        """
        machine = self.machine
        penalty = machine.icache.per_instruction_penalty(footprint)
        try:
            trans = self.translation(code, penalty, 1.0)
        except TranslationFault:
            machine.stats.degraded_translations += 1
            return machine._exec_region_interp(code, env, footprint,
                                               code.entry)
        fuel = self._fusion_fuel(trans)
        profile = fusionprofile.collector()
        label = code.entry
        while True:
            if code.version != trans.version:
                try:
                    trans = self.translation(code, penalty, 1.0)
                except TranslationFault:
                    # Mid-region degradation: resume the reference loop
                    # at the current block.
                    machine.stats.degraded_translations += 1
                    return machine._exec_region_interp(
                        code, env, footprint, label
                    )
                fuel = self._fusion_fuel(trans)
            kind, payload = trans.runners[label](env)
            if kind == "jump":
                if profile is not None:
                    profile.record(code.name, label, payload)
                label = payload
                if fuel is not None:
                    fuel -= 1
                    if fuel <= 0:
                        trans = self._quicken(code, trans)
                        fuel = None
            elif kind in ("exit", "return"):
                return (kind, payload)
            elif kind == "promote":
                label = machine.runtime.promote(machine, payload, env,
                                                code)
            else:  # pragma: no cover - defensive
                raise MachineError(
                    f"unexpected outcome {kind!r} in region code"
                )

    # -- translation ----------------------------------------------------

    def _translate(self, fn: Function, penalty: float, scale: float,
                   fuse: bool = False) -> _Translation:
        runners = {
            label: self._compile_block(block, penalty, scale, fuse)
            for label, block in fn.blocks.items()
        }
        return _Translation(fn, penalty, scale, runners, fused=fuse)

    def _compile_block(self, block, penalty: float, scale: float,
                       fuse: bool = False):
        machine = self.machine
        costs = machine.costs

        call_segments: list[tuple] = []
        steps: list = []
        #: Per-step shape descriptors, parallel to ``steps``; consumed
        #: by ``_fuse_steps`` to pick specialized superinstructions.
        metas: list = []
        const = 0.0
        count = 0
        finish = None

        def seal(step_list, meta_list):
            if fuse and len(step_list) > 1:
                return tuple(self._fuse_steps(step_list, meta_list))
            return tuple(step_list)

        for instr in block.instrs:
            cls = type(instr)
            if cls is BinOp:
                base, fp_extra = binop_terms(
                    costs, instr.op.value, scale, penalty
                )
                const += base
                count += 1
                steps.append(self._binop_step(instr, fp_extra))
                metas.append(self._binop_meta(instr, fp_extra))
            elif cls is Move:
                if type(instr.src) is Imm:
                    value = instr.src.value
                    const += flat_term(
                        costs.materialize_cost(type(value) is float),
                        scale, penalty,
                    )
                    count += 1
                    steps.append(self._move_imm_step(instr.dest, value))
                    metas.append(("mi", (instr.dest, value)))
                else:
                    base, fp_extra = move_terms(costs, scale, penalty)
                    const += base
                    count += 1
                    steps.append(self._move_reg_step(instr, fp_extra))
                    metas.append(None)
            elif cls is Load:
                const += flat_term(costs.load, scale, penalty)
                count += 1
                steps.append(self._load_step(instr))
                metas.append(None)
            elif cls is Store:
                const += flat_term(costs.store, scale, penalty)
                count += 1
                steps.append(self._store_step(instr))
                metas.append(None)
            elif cls is UnOp:
                base, fp_extra = binop_terms(costs, "alu", scale, penalty)
                const += base
                count += 1
                steps.append(self._unop_step(instr, fp_extra))
                metas.append(None)
            elif cls is Call:
                count += 1
                call_segments.append(
                    (const, count, seal(steps, metas),
                     self._call_step(instr))
                )
                steps = []
                metas = []
                const = 0.0
                count = 0
            elif cls is MakeStatic or cls is MakeDynamic:
                # Annotations execute for free in both backends.
                pass
            elif cls is Jump:
                const += flat_term(costs.jump, scale, penalty)
                count += 1
                finish = self._const_finish(
                    const, count, ("jump", instr.target)
                )
            elif cls is Branch:
                const += flat_term(costs.branch, scale, penalty)
                count += 1
                finish = self._branch_finish(const, count, instr)
            elif cls is Return:
                const += flat_term(costs.return_cost, scale, penalty)
                count += 1
                finish = self._return_finish(const, count, instr)
            elif cls is EnterRegion:
                count += 1
                finish = self._const_finish(
                    const, count, ("enter_region", instr)
                )
            elif cls is Promote:
                count += 1
                finish = self._const_finish(
                    const, count, ("promote", instr)
                )
            elif cls is ExitRegion:
                const += flat_term(costs.jump, scale, penalty)
                count += 1
                finish = self._const_finish(
                    const, count, ("exit", instr.index)
                )
            else:
                # Defer to execution time, like the reference.
                name = type(instr).__name__
                count += 1
                steps.append(self._error_step(
                    MachineError(f"cannot execute {name}")
                ))
                metas.append(None)
            if finish is not None:
                break

        if finish is None:
            # Block without a terminator: charge the straight-line part,
            # then fail exactly as the reference does.
            label = block.label
            error = MachineError(
                f"block {label!r} fell through without a terminator"
            )
            commit = machine._commit

            def finish(env, extra, _commit=commit, _const=const,
                       _count=count, _error=error):
                _commit(_const + extra, _count)
                raise _error

        final_steps = seal(steps, metas)

        if not call_segments:
            n = len(final_steps)
            if n == 0:
                def runner(env, _finish=finish):
                    return _finish(env, 0.0)

                return runner
            # Short straight-line blocks dominate dynamic block counts;
            # unrolling the step chain avoids the loop machinery.
            if n == 1:
                s1, = final_steps

                def runner(env, _s1=s1, _finish=finish):
                    return _finish(env, _s1(env, 0.0))

                return runner
            if n == 2:
                s1, s2 = final_steps

                def runner(env, _s1=s1, _s2=s2, _finish=finish):
                    return _finish(env, _s2(env, _s1(env, 0.0)))

                return runner
            if n == 3:
                s1, s2, s3 = final_steps

                def runner(env, _s1=s1, _s2=s2, _s3=s3, _finish=finish):
                    return _finish(
                        env, _s3(env, _s2(env, _s1(env, 0.0)))
                    )

                return runner

            def runner(env, _steps=final_steps, _finish=finish):
                extra = 0.0
                for step in _steps:
                    extra = step(env, extra)
                return _finish(env, extra)

            return runner

        segments = tuple(call_segments)
        stats = machine.stats

        def runner(env, _segments=segments, _steps=final_steps,
                   _finish=finish, _m=machine, _stats=stats):
            for const, count, steps, do_call in _segments:
                extra = 0.0
                for step in steps:
                    extra = step(env, extra)
                _stats.cycles += const + extra
                _stats.instructions += count
                total = _m._steps + count
                _m._steps = total
                if total > _m.step_limit:
                    raise MachineError(
                        f"step limit {_m.step_limit} exceeded "
                        f"(infinite loop?)"
                    )
                do_call(env)
            extra = 0.0
            for step in _steps:
                extra = step(env, extra)
            return _finish(env, extra)

        return runner

    # -- superinstruction fusion ----------------------------------------
    #
    # Quickening (Brunthaler-style speculative staging): once a
    # translation proves hot, adjacent step pairs within a segment are
    # fused into single closures, halving the per-step call overhead on
    # straight-line runs.  Operand-specialized variants exist for the
    # statistically dominant pair shapes; every other pair gets the
    # generic composition ``s2(env, s1(env, extra))``, which is the
    # original computation verbatim — fusion can therefore never change
    # semantics or stats, only call counts.

    def _binop_meta(self, instr: BinOp, fp_extra: float):
        """Shape descriptor for specialized fusion, or None."""
        fn = BINOP_FUNCS.get(instr.op)
        if fn is None:
            return None
        lhs, rhs = instr.lhs, instr.rhs
        if type(lhs) is Reg and type(rhs) is Reg:
            return ("brr", (fn, instr.dest, lhs.name, rhs.name,
                            fp_extra))
        if (type(lhs) is Reg and type(rhs) is Imm
                and type(rhs.value) is not float):
            return ("bri", (fn, instr.dest, lhs.name, rhs.value,
                            fp_extra))
        return None

    def _fuse_steps(self, steps: list, metas: list) -> list:
        """Greedy left-to-right pairing of adjacent steps."""
        out = []
        i = 0
        n = len(steps)
        while i < n:
            if i + 1 < n:
                fused = self._fuse_pair(steps[i], metas[i],
                                        steps[i + 1], metas[i + 1])
                if fused is not None:
                    out.append(fused)
                    i += 2
                    continue
            out.append(steps[i])
            i += 1
        return out

    def _fuse_pair(self, s1, m1, s2, m2):
        k1 = m1[0] if m1 is not None else None
        k2 = m2[0] if m2 is not None else None
        if k1 == "mi" and k2 == "mi":
            (d1, v1), (d2, v2) = m1[1], m2[1]
            self.fused_specialized += 1

            def fused(env, extra, _d1=d1, _v1=v1, _d2=d2, _v2=v2):
                env[_d1] = _v1
                env[_d2] = _v2
                return extra

            return fused
        if k1 == "bri" and k2 == "bri":
            (f1, d1, l1, b1, e1) = m1[1]
            (f2, d2, l2, b2, e2) = m2[1]
            self.fused_specialized += 1

            def fused(env, extra, _f1=f1, _d1=d1, _l1=l1, _b1=b1,
                      _e1=e1, _f2=f2, _d2=d2, _l2=l2, _b2=b2, _e2=e2):
                try:
                    a = env[_l1]
                except KeyError:
                    _undefined(_l1)
                env[_d1] = _f1(a, _b1)
                if type(a) is float:
                    extra += _e1
                try:
                    a = env[_l2]
                except KeyError:
                    _undefined(_l2)
                env[_d2] = _f2(a, _b2)
                if type(a) is float:
                    extra += _e2
                return extra

            return fused
        if k1 == "mi" and k2 == "brr":
            (d1, v1) = m1[1]
            (fn, d2, ln, rn, e) = m2[1]
            self.fused_specialized += 1

            def fused(env, extra, _d1=d1, _v1=v1, _fn=fn, _d2=d2,
                      _l=ln, _r=rn, _e=e):
                env[_d1] = _v1
                try:
                    a = env[_l]
                except KeyError:
                    _undefined(_l)
                try:
                    b = env[_r]
                except KeyError:
                    _undefined(_r)
                env[_d2] = _fn(a, b)
                if type(a) is float or type(b) is float:
                    extra += _e
                return extra

            return fused
        self.fused_generic += 1

        def fused(env, extra, _s1=s1, _s2=s2):
            return _s2(env, _s1(env, extra))

        return fused

    # -- step factories -------------------------------------------------

    def _binop_step(self, instr: BinOp, fp_extra: float):
        fn = BINOP_FUNCS.get(instr.op)
        if fn is None:
            return self._error_step(
                TrapError(f"{instr.op} is not a binary operator")
            )
        dest = instr.dest
        lhs, rhs = instr.lhs, instr.rhs
        lhs_reg = type(lhs) is Reg
        rhs_reg = type(rhs) is Reg
        if not lhs_reg and type(lhs) is not Imm:
            return self._error_step(
                TrapError(f"cannot evaluate operand {lhs!r}")
            )
        if not rhs_reg and type(rhs) is not Imm:
            return self._error_step(
                TrapError(f"cannot evaluate operand {rhs!r}")
            )

        if lhs_reg and rhs_reg:
            def step(env, extra, _fn=fn, _d=dest, _l=lhs.name,
                     _r=rhs.name, _e=fp_extra):
                try:
                    a = env[_l]
                except KeyError:
                    _undefined(_l)
                try:
                    b = env[_r]
                except KeyError:
                    _undefined(_r)
                env[_d] = _fn(a, b)
                if type(a) is float or type(b) is float:
                    extra += _e
                return extra

            return step

        if lhs_reg:
            b = rhs.value
            if type(b) is float:
                def step(env, extra, _fn=fn, _d=dest, _l=lhs.name, _b=b,
                         _e=fp_extra):
                    try:
                        a = env[_l]
                    except KeyError:
                        _undefined(_l)
                    env[_d] = _fn(a, _b)
                    return extra + _e

                return step

            def step(env, extra, _fn=fn, _d=dest, _l=lhs.name, _b=b,
                     _e=fp_extra):
                try:
                    a = env[_l]
                except KeyError:
                    _undefined(_l)
                env[_d] = _fn(a, _b)
                if type(a) is float:
                    extra += _e
                return extra

            return step

        if rhs_reg:
            a = lhs.value
            if type(a) is float:
                def step(env, extra, _fn=fn, _d=dest, _a=a, _r=rhs.name,
                         _e=fp_extra):
                    try:
                        b = env[_r]
                    except KeyError:
                        _undefined(_r)
                    env[_d] = _fn(_a, b)
                    return extra + _e

                return step

            def step(env, extra, _fn=fn, _d=dest, _a=a, _r=rhs.name,
                     _e=fp_extra):
                try:
                    b = env[_r]
                except KeyError:
                    _undefined(_r)
                env[_d] = _fn(_a, b)
                if type(b) is float:
                    extra += _e
                return extra

            return step

        # Both immediate: the float-ness is static; the result usually is
        # too, unless evaluation traps (division by zero must trap at
        # execution time, not translation time, like the reference).
        a, b = lhs.value, rhs.value
        is_fp = type(a) is float or type(b) is float
        try:
            result = fn(a, b)
        except TrapError:
            if is_fp:
                def step(env, extra, _fn=fn, _a=a, _b=b, _d=dest,
                         _e=fp_extra):
                    env[_d] = _fn(_a, _b)
                    return extra + _e
            else:
                def step(env, extra, _fn=fn, _a=a, _b=b, _d=dest):
                    env[_d] = _fn(_a, _b)
                    return extra

            return step
        if is_fp:
            def step(env, extra, _d=dest, _v=result, _e=fp_extra):
                env[_d] = _v
                return extra + _e
        else:
            def step(env, extra, _d=dest, _v=result):
                env[_d] = _v
                return extra

        return step

    def _unop_step(self, instr: UnOp, fp_extra: float):
        fn = UNOP_FUNCS.get(instr.op)
        if fn is None:
            return self._error_step(
                TrapError(f"{instr.op} is not a unary operator")
            )
        dest = instr.dest
        src = instr.src
        if type(src) is Reg:
            def step(env, extra, _fn=fn, _d=dest, _s=src.name,
                     _e=fp_extra):
                try:
                    v = env[_s]
                except KeyError:
                    _undefined(_s)
                env[_d] = _fn(v)
                if type(v) is float:
                    extra += _e
                return extra

            return step
        if type(src) is not Imm:
            return self._error_step(
                TrapError(f"cannot evaluate operand {src!r}")
            )
        value = src.value
        result = fn(value)
        if type(value) is float:
            def step(env, extra, _d=dest, _v=result, _e=fp_extra):
                env[_d] = _v
                return extra + _e
        else:
            def step(env, extra, _d=dest, _v=result):
                env[_d] = _v
                return extra

        return step

    def _move_imm_step(self, dest: str, value):
        def step(env, extra, _d=dest, _v=value):
            env[_d] = _v
            return extra

        return step

    def _move_reg_step(self, instr: Move, fp_extra: float):
        src = instr.src
        if type(src) is not Reg:
            return self._error_step(
                TrapError(f"cannot evaluate operand {src!r}")
            )

        def step(env, extra, _d=instr.dest, _s=src.name, _e=fp_extra):
            try:
                v = env[_s]
            except KeyError:
                _undefined(_s)
            env[_d] = v
            if type(v) is float:
                extra += _e
            return extra

        return step

    def _load_step(self, instr: Load):
        load = self.machine.memory.load
        addr = instr.addr
        if type(addr) is Reg:
            def step(env, extra, _load=load, _d=instr.dest,
                     _a=addr.name):
                try:
                    a = env[_a]
                except KeyError:
                    _undefined(_a)
                env[_d] = _load(a)
                return extra

            return step
        if type(addr) is not Imm:
            return self._error_step(
                TrapError(f"cannot evaluate operand {addr!r}")
            )

        def step(env, extra, _load=load, _d=instr.dest, _a=addr.value):
            env[_d] = _load(_a)
            return extra

        return step

    def _store_step(self, instr: Store):
        store = self.machine.memory.store
        addr, value = instr.addr, instr.value
        for operand in (addr, value):
            if type(operand) is not Reg and type(operand) is not Imm:
                return self._error_step(
                    TrapError(f"cannot evaluate operand {operand!r}")
                )
        addr_reg = type(addr) is Reg
        value_reg = type(value) is Reg

        if addr_reg and value_reg:
            def step(env, extra, _store=store, _a=addr.name,
                     _v=value.name):
                try:
                    a = env[_a]
                except KeyError:
                    _undefined(_a)
                try:
                    v = env[_v]
                except KeyError:
                    _undefined(_v)
                _store(a, v)
                return extra

            return step
        if addr_reg:
            def step(env, extra, _store=store, _a=addr.name,
                     _v=value.value):
                try:
                    a = env[_a]
                except KeyError:
                    _undefined(_a)
                _store(a, _v)
                return extra

            return step
        if value_reg:
            def step(env, extra, _store=store, _a=addr.value,
                     _v=value.name):
                try:
                    v = env[_v]
                except KeyError:
                    _undefined(_v)
                _store(_a, v)
                return extra

            return step

        def step(env, extra, _store=store, _a=addr.value,
                 _v=value.value):
            _store(_a, _v)
            return extra

        return step

    def _call_step(self, instr: Call):
        call = self.machine.call
        callee = instr.callee
        dest = instr.dest
        # (is_reg, name, value) triples; reading them in order preserves
        # the reference's trap order for undefined argument registers.
        specs = []
        for arg in instr.args:
            if type(arg) is Reg:
                specs.append((True, arg.name, None))
            elif type(arg) is Imm:
                specs.append((False, None, arg.value))
            else:
                return self._error_step(
                    TrapError(f"cannot evaluate operand {arg!r}")
                )
        arg_specs = tuple(specs)

        if dest is None:
            def do_call(env, _call=call, _callee=callee,
                        _specs=arg_specs):
                args = []
                for is_reg, name, value in _specs:
                    if is_reg:
                        try:
                            args.append(env[name])
                        except KeyError:
                            _undefined(name)
                    else:
                        args.append(value)
                _call(_callee, args)

            return do_call

        def do_call(env, _call=call, _callee=callee, _specs=arg_specs,
                    _d=dest):
            args = []
            for is_reg, name, value in _specs:
                if is_reg:
                    try:
                        args.append(env[name])
                    except KeyError:
                        _undefined(name)
                else:
                    args.append(value)
            env[_d] = _call(_callee, args)

        return do_call

    @staticmethod
    def _error_step(error: Exception):
        def step(env, extra, _error=error):
            raise _error

        return step

    # -- terminator factories -------------------------------------------
    #
    # Finish closures inline the segment commit (the body of
    # ``Machine._commit``) to save a method call on the hottest path in
    # the system: one commit per executed block.  ``machine.stats`` is
    # assigned once in ``Machine.__init__`` and never rebound, so
    # capturing it at translation time is safe.

    def _const_finish(self, const: float, count: int, outcome: tuple):
        machine = self.machine
        stats = machine.stats

        def finish(env, extra, _m=machine, _stats=stats, _const=const,
                   _count=count, _out=outcome):
            _stats.cycles += _const + extra
            _stats.instructions += _count
            total = _m._steps + _count
            _m._steps = total
            if total > _m.step_limit:
                raise MachineError(
                    f"step limit {_m.step_limit} exceeded "
                    f"(infinite loop?)"
                )
            return _out

        return finish

    def _branch_finish(self, const: float, count: int, instr: Branch):
        true_out = ("jump", instr.if_true)
        false_out = ("jump", instr.if_false)
        cond = instr.cond
        machine = self.machine
        stats = machine.stats
        if type(cond) is Reg:
            # The condition is read before the commit and the target
            # selected after it, matching the reference's order (an
            # undefined condition traps with the segment uncommitted).
            def finish(env, extra, _m=machine, _stats=stats,
                       _const=const, _count=count, _c=cond.name,
                       _t=true_out, _f=false_out):
                try:
                    value = env[_c]
                except KeyError:
                    _undefined(_c)
                _stats.cycles += _const + extra
                _stats.instructions += _count
                total = _m._steps + _count
                _m._steps = total
                if total > _m.step_limit:
                    raise MachineError(
                        f"step limit {_m.step_limit} exceeded "
                        f"(infinite loop?)"
                    )
                return _t if value else _f

            return finish
        if type(cond) is Imm:
            outcome = true_out if cond.value else false_out
            return self._const_finish(const, count, outcome)

        error = TrapError(f"cannot evaluate operand {cond!r}")

        def finish(env, extra, _error=error):
            raise _error

        return finish

    def _return_finish(self, const: float, count: int, instr: Return):
        value = instr.value
        if value is None:
            return self._const_finish(const, count, ("return", None))
        machine = self.machine
        stats = machine.stats
        if type(value) is Reg:
            # The reference commits first, then reads the return value.
            def finish(env, extra, _m=machine, _stats=stats,
                       _const=const, _count=count, _v=value.name):
                _stats.cycles += _const + extra
                _stats.instructions += _count
                total = _m._steps + _count
                _m._steps = total
                if total > _m.step_limit:
                    raise MachineError(
                        f"step limit {_m.step_limit} exceeded "
                        f"(infinite loop?)"
                    )
                try:
                    result = env[_v]
                except KeyError:
                    _undefined(_v)
                return ("return", result)

            return finish
        if type(value) is Imm:
            return self._const_finish(
                const, count, ("return", value.value)
            )

        error = TrapError(f"cannot evaluate operand {value!r}")
        commit = machine._commit

        def finish(env, extra, _commit=commit, _const=const,
                   _count=count, _error=error):
            _commit(_const + extra, _count)
            raise _error

        return finish
