"""Traditional (static) intraprocedural optimizations.

DyC runs on top of a conventional optimizing compiler (Multiflow); these
passes play that role.  They are applied to every function — both the
statically compiled baseline configuration and the annotated functions
before binding-time analysis — so that dynamic compilation's benefit is
measured against reasonably optimized static code, as in the paper (§3.3).
"""

from repro.opt.constprop import constant_propagation
from repro.opt.copyprop import copy_propagation
from repro.opt.cse import local_cse
from repro.opt.dce import dead_code_elimination
from repro.opt.simplify_cfg import simplify_cfg
from repro.opt.strength import strength_reduction
from repro.opt.licm import loop_invariant_code_motion
from repro.opt.pipeline import PassManager, optimize_function, optimize_module

__all__ = [
    "constant_propagation",
    "copy_propagation",
    "local_cse",
    "dead_code_elimination",
    "simplify_cfg",
    "strength_reduction",
    "loop_invariant_code_motion",
    "PassManager",
    "optimize_function",
    "optimize_module",
]
