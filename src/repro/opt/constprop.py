"""Global constant propagation and folding.

A forward dataflow over a flat constant lattice (unknown ⊑ const ⊑ many),
followed by a rewriting sweep that substitutes known constants into
operands, folds fully constant expressions, and turns constant branches
into jumps.
"""

from __future__ import annotations

from repro.analysis.cfg import reverse_postorder
from repro.errors import TrapError
from repro.ir.eval import eval_binop, eval_unop
from repro.ir.function import Function
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    Imm,
    Instr,
    Jump,
    Load,
    Move,
    Operand,
    Reg,
    UnOp,
)

# Lattice: a variable maps to a concrete value when known-constant.
# Absence from the map means "not a constant" (bottom).  The special
# _UNDEF marker means "no information yet" (top) and only appears while
# merging.
_UNDEF = object()

ConstMap = dict[str, object]


def _merge(maps: list[ConstMap]) -> ConstMap:
    if not maps:
        return {}
    merged: ConstMap = dict(maps[0])
    for other in maps[1:]:
        for name in list(merged):
            if name not in other or other[name] != merged[name]:
                del merged[name]
    return merged


def _transfer(block, consts: ConstMap) -> ConstMap:
    consts = dict(consts)
    for instr in block.instrs:
        _apply_instr(instr, consts)
    return consts


def _apply_instr(instr: Instr, consts: ConstMap) -> None:
    if isinstance(instr, Move):
        value = _operand_value(instr.src, consts)
        _set(consts, instr.dest, value)
    elif isinstance(instr, UnOp):
        src = _operand_value(instr.src, consts)
        if src is not _UNDEF:
            try:
                _set(consts, instr.dest, eval_unop(instr.op, src))
                return
            except TrapError:
                pass
        _set(consts, instr.dest, _UNDEF)
    elif isinstance(instr, BinOp):
        lhs = _operand_value(instr.lhs, consts)
        rhs = _operand_value(instr.rhs, consts)
        if lhs is not _UNDEF and rhs is not _UNDEF:
            try:
                _set(consts, instr.dest, eval_binop(instr.op, lhs, rhs))
                return
            except TrapError:
                pass
        _set(consts, instr.dest, _UNDEF)
    else:
        for name in instr.defs():
            _set(consts, name, _UNDEF)


def _set(consts: ConstMap, name: str, value) -> None:
    if value is _UNDEF:
        consts.pop(name, None)
    else:
        consts[name] = value


def _operand_value(operand: Operand, consts: ConstMap):
    if isinstance(operand, Imm):
        return operand.value
    if isinstance(operand, Reg) and operand.name in consts:
        return consts[operand.name]
    return _UNDEF


def _subst(operand: Operand, consts: ConstMap) -> Operand:
    if isinstance(operand, Reg) and operand.name in consts:
        return Imm(consts[operand.name])
    return operand


def constant_propagation(function: Function) -> bool:
    """Propagate and fold constants; returns True if anything changed."""
    # --- dataflow: compute constants at block entry ---
    order = reverse_postorder(function)
    preds = function.predecessors()
    entry_consts: dict[str, ConstMap] = {}
    out_consts: dict[str, ConstMap] = {}

    changed = True
    visited: set[str] = set()
    while changed:
        changed = False
        for label in order:
            block = function.blocks[label]
            if label == function.entry:
                in_map: ConstMap = {}
            else:
                pred_maps = [
                    out_consts[p] for p in preds[label] if p in visited
                ]
                in_map = _merge(pred_maps) if pred_maps else {}
            out_map = _transfer(block, in_map)
            if (label not in visited or in_map != entry_consts[label]
                    or out_map != out_consts[label]):
                visited.add(label)
                entry_consts[label] = in_map
                out_consts[label] = out_map
                changed = True

    # --- rewrite using the computed entry states ---
    rewrote = False
    for label in order:
        block = function.blocks[label]
        consts = dict(entry_consts[label])
        new_instrs: list[Instr] = []
        for instr in block.instrs:
            replacement = _rewrite(instr, consts)
            if replacement is not instr:
                rewrote = True
            _apply_instr(replacement, consts)
            new_instrs.append(replacement)
        block.instrs = new_instrs
    if rewrote:
        function.remove_unreachable_blocks()
    return rewrote


def _rewrite(instr: Instr, consts: ConstMap) -> Instr:
    if isinstance(instr, Move):
        src = _subst(instr.src, consts)
        return instr if src is instr.src else Move(instr.dest, src)
    if isinstance(instr, UnOp):
        src = _subst(instr.src, consts)
        if isinstance(src, Imm):
            try:
                return Move(instr.dest, Imm(eval_unop(instr.op, src.value)))
            except TrapError:
                pass
        return instr if src is instr.src else UnOp(instr.dest, instr.op, src)
    if isinstance(instr, BinOp):
        lhs = _subst(instr.lhs, consts)
        rhs = _subst(instr.rhs, consts)
        if isinstance(lhs, Imm) and isinstance(rhs, Imm):
            try:
                value = eval_binop(instr.op, lhs.value, rhs.value)
                return Move(instr.dest, Imm(value))
            except TrapError:
                pass
        if lhs is instr.lhs and rhs is instr.rhs:
            return instr
        return BinOp(instr.dest, instr.op, lhs, rhs)
    if isinstance(instr, Load):
        addr = _subst(instr.addr, consts)
        if addr is instr.addr:
            return instr
        return Load(instr.dest, addr, static=instr.static)
    if isinstance(instr, Branch):
        cond = _subst(instr.cond, consts)
        if isinstance(cond, Imm):
            target = instr.if_true if cond.value else instr.if_false
            return Jump(target)
        if cond is instr.cond:
            return instr
        return Branch(cond, instr.if_true, instr.if_false)
    if isinstance(instr, Call):
        args = tuple(_subst(a, consts) for a in instr.args)
        if args == instr.args:
            return instr
        return Call(instr.dest, instr.callee, args, static=instr.static)
    # Store and other instructions: substitute operands where possible.
    from repro.ir.instructions import Return, Store

    if isinstance(instr, Return) and instr.value is not None:
        value = _subst(instr.value, consts)
        if value is instr.value:
            return instr
        return Return(value)
    if isinstance(instr, Store):
        addr = _subst(instr.addr, consts)
        value = _subst(instr.value, consts)
        if addr is instr.addr and value is instr.value:
            return instr
        return Store(addr, value)
    return instr
