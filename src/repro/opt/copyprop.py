"""Global copy propagation.

A forward dataflow of available copies (``dest`` currently equals ``src``)
with intersection at joins, followed by a sweep that rewrites uses of copy
destinations to their sources.  Leaves the now-possibly-dead copies for
dead-code elimination to sweep up.
"""

from __future__ import annotations

from repro.analysis.cfg import reverse_postorder
from repro.ir.function import Function
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    Instr,
    Load,
    Move,
    Operand,
    Reg,
    Return,
    Store,
    UnOp,
)

CopyMap = dict[str, str]  # dest -> src, meaning dest == src here


def _kill(copies: CopyMap, name: str) -> None:
    copies.pop(name, None)
    for dest in [d for d, s in copies.items() if s == name]:
        del copies[dest]


def _transfer(block, copies: CopyMap) -> CopyMap:
    copies = dict(copies)
    for instr in block.instrs:
        _apply(instr, copies)
    return copies


def _apply(instr: Instr, copies: CopyMap) -> None:
    if isinstance(instr, Move) and isinstance(instr.src, Reg):
        if instr.src.name != instr.dest:
            _kill(copies, instr.dest)
            copies[instr.dest] = instr.src.name
        return
    for name in instr.defs():
        _kill(copies, name)


def _merge(maps: list[CopyMap]) -> CopyMap:
    if not maps:
        return {}
    merged = dict(maps[0])
    for other in maps[1:]:
        for dest in list(merged):
            if other.get(dest) != merged[dest]:
                del merged[dest]
    return merged


def _subst(operand: Operand, copies: CopyMap) -> Operand:
    if isinstance(operand, Reg):
        # Chase copy chains (a=b, c=a => uses of c become b).
        name = operand.name
        seen = set()
        while name in copies and name not in seen:
            seen.add(name)
            name = copies[name]
        if name != operand.name:
            return Reg(name)
    return operand


def copy_propagation(function: Function) -> bool:
    """Rewrite uses of copies to their sources; True if changed."""
    order = reverse_postorder(function)
    preds = function.predecessors()
    entry: dict[str, CopyMap] = {}
    exit_: dict[str, CopyMap] = {}
    visited: set[str] = set()

    changed = True
    while changed:
        changed = False
        for label in order:
            block = function.blocks[label]
            if label == function.entry:
                in_map: CopyMap = {}
            else:
                pred_maps = [exit_[p] for p in preds[label] if p in visited]
                in_map = _merge(pred_maps) if pred_maps else {}
            out_map = _transfer(block, in_map)
            if (label not in visited or entry[label] != in_map
                    or exit_[label] != out_map):
                visited.add(label)
                entry[label] = in_map
                exit_[label] = out_map
                changed = True

    rewrote = False
    for label in order:
        block = function.blocks[label]
        copies = dict(entry[label])
        new_instrs: list[Instr] = []
        for instr in block.instrs:
            replacement = _rewrite_uses(instr, copies)
            if replacement is not instr:
                rewrote = True
            _apply(replacement, copies)
            new_instrs.append(replacement)
        block.instrs = new_instrs
    return rewrote


def _rewrite_uses(instr: Instr, copies: CopyMap) -> Instr:
    if isinstance(instr, Move):
        src = _subst(instr.src, copies)
        if isinstance(src, Reg) and src.name == instr.dest:
            return instr  # would become self-copy; let DCE handle original
        return instr if src is instr.src else Move(instr.dest, src)
    if isinstance(instr, UnOp):
        src = _subst(instr.src, copies)
        return instr if src is instr.src else UnOp(instr.dest, instr.op, src)
    if isinstance(instr, BinOp):
        lhs = _subst(instr.lhs, copies)
        rhs = _subst(instr.rhs, copies)
        if lhs is instr.lhs and rhs is instr.rhs:
            return instr
        return BinOp(instr.dest, instr.op, lhs, rhs)
    if isinstance(instr, Load):
        addr = _subst(instr.addr, copies)
        if addr is instr.addr:
            return instr
        return Load(instr.dest, addr, static=instr.static)
    if isinstance(instr, Store):
        addr = _subst(instr.addr, copies)
        value = _subst(instr.value, copies)
        if addr is instr.addr and value is instr.value:
            return instr
        return Store(addr, value)
    if isinstance(instr, Call):
        args = tuple(_subst(a, copies) for a in instr.args)
        if args == instr.args:
            return instr
        return Call(instr.dest, instr.callee, args, static=instr.static)
    if isinstance(instr, Branch):
        cond = _subst(instr.cond, copies)
        if cond is instr.cond:
            return instr
        return Branch(cond, instr.if_true, instr.if_false)
    if isinstance(instr, Return) and instr.value is not None:
        value = _subst(instr.value, copies)
        if value is instr.value:
            return instr
        return Return(value)
    return instr
