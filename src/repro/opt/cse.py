"""Local (per-block) common-subexpression elimination.

Within a block, a repeated pure expression over unchanged operands is
replaced with a copy of the earlier result.  Loads participate until a
store or call (which may alias them) kills the load table.  The global
pipeline iterates CSE with copy propagation and DCE, which catches most of
what a full global value-numbering pass would.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instructions import (
    BinOp,
    Call,
    Imm,
    Instr,
    Load,
    Move,
    Op,
    Reg,
    Store,
    UnOp,
    COMMUTATIVE_OPS,
)


def _expr_key(instr: Instr):
    """A hashable key identifying the computed expression, or None."""
    if isinstance(instr, BinOp):
        lhs, rhs = instr.lhs, instr.rhs
        if instr.op in COMMUTATIVE_OPS:
            lhs, rhs = sorted((lhs, rhs), key=repr)
        return ("bin", instr.op, lhs, rhs)
    if isinstance(instr, UnOp):
        return ("un", instr.op, instr.src)
    if isinstance(instr, Load) and not instr.static:
        return ("load", instr.addr)
    return None


def _uses_name(key, name: str) -> bool:
    return any(
        isinstance(part, Reg) and part.name == name for part in key
    )


def local_cse(function: Function) -> bool:
    """Eliminate repeated expressions within each block; True if changed."""
    changed = False
    for block in function.blocks.values():
        available: dict[object, str] = {}
        new_instrs: list[Instr] = []
        for instr in block.instrs:
            key = _expr_key(instr)
            if key is not None and key in available:
                new_instrs.append(Move(instr.dest, Reg(available[key])))
                changed = True
                _kill_defs(available, instr.defs())
                continue
            if isinstance(instr, (Store, Call)):
                # Stores and calls may change memory: kill available loads.
                available = {
                    k: v for k, v in available.items() if k[0] != "load"
                }
            _kill_defs(available, instr.defs())
            if key is not None:
                available[key] = instr.dest
            new_instrs.append(instr)
        block.instrs = new_instrs
    return changed


def _kill_defs(available: dict, defs) -> None:
    for name in defs:
        for key in [
            k for k, v in available.items()
            if v == name or _uses_name(k, name)
        ]:
            del available[key]
