"""Local (per-block) common-subexpression elimination.

Within a block, a repeated pure expression over unchanged operands is
replaced with a copy of the earlier result.  Loads participate until a
store or call (which may alias them) kills the load table.  The global
pipeline iterates CSE with copy propagation and DCE, which catches most of
what a full global value-numbering pass would.
"""

from __future__ import annotations

from repro.analysis.expressions import (
    available_expressions,
    expression_of as _expr_key,
    key_uses_name as _uses_name,
)
from repro.ir.function import Function
from repro.ir.instructions import (
    Call,
    Instr,
    Move,
    Reg,
    Store,
)


def local_cse(function: Function) -> bool:
    """Eliminate repeated expressions within each block; True if changed."""
    changed = False
    for block in function.blocks.values():
        available: dict[object, str] = {}
        new_instrs: list[Instr] = []
        for instr in block.instrs:
            key = _expr_key(instr)
            if key is not None and key in available:
                new_instrs.append(Move(instr.dest, Reg(available[key])))
                changed = True
                _kill_defs(available, instr.defs())
                continue
            if isinstance(instr, (Store, Call)):
                # Stores and calls may change memory: kill available loads.
                available = {
                    k: v for k, v in available.items() if k[0] != "load"
                }
            _kill_defs(available, instr.defs())
            if key is not None:
                available[key] = instr.dest
            new_instrs.append(instr)
        block.instrs = new_instrs
    return changed


def global_cse(function: Function) -> bool:
    """Cross-block CSE driven by available-expressions (optional pass).

    Each block's table is seeded from the framework's forward must-
    analysis: ``(key, holder)`` pairs valid on *every* path into the
    block, so a redundant re-evaluation anywhere downstream of the
    original computation collapses to a copy — no merge moves are ever
    needed because the pair lattice already required one holder
    register on all paths.  Not part of ``DEFAULT_PASSES``: the
    reproduction's cost calibration is pinned to the default pipeline.
    """
    changed = False
    available_in = available_expressions(function)
    for label, block in function.blocks.items():
        seeded = available_in.get(label)
        if seeded is None:
            continue  # unreachable: nothing is available, nothing to do
        available: dict[object, str] = {}
        for key, holder in sorted(seeded, key=repr):
            available.setdefault(key, holder)
        new_instrs: list[Instr] = []
        for instr in block.instrs:
            key = _expr_key(instr)
            if key is not None and key in available:
                new_instrs.append(Move(instr.dest, Reg(available[key])))
                changed = True
                _kill_defs(available, instr.defs())
                continue
            if isinstance(instr, (Store, Call)):
                available = {
                    k: v for k, v in available.items() if k[0] != "load"
                }
            defs = instr.defs()
            _kill_defs(available, defs)
            if key is not None and not any(
                    _uses_name(key, name) for name in defs):
                available[key] = instr.dest
            new_instrs.append(instr)
        block.instrs = new_instrs
    return changed


def _kill_defs(available: dict, defs) -> None:
    for name in defs:
        for key in [
            k for k, v in available.items()
            if v == name or _uses_name(k, name)
        ]:
            del available[key]
