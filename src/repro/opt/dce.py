"""Global dead-code elimination driven by liveness.

Removes instructions whose results are never used, provided they have no
side effects.  Stores, calls, terminators, and annotation
pseudo-instructions are always retained (calls may have side effects; the
annotations carry information for the BTA).
"""

from __future__ import annotations

from repro.analysis.liveness import liveness
from repro.ir.function import Function
from repro.ir.instructions import (
    BinOp,
    Load,
    Move,
    UnOp,
)

#: Instruction classes that are removable when their result is dead.
_PURE = (Move, UnOp, BinOp, Load)


def dead_code_elimination(function: Function) -> bool:
    """Delete pure instructions whose destinations are dead; True if changed."""
    result = liveness(function)
    changed = False
    for label, block in function.blocks.items():
        live = set(result.live_out[label])
        new_reversed = []
        for instr in reversed(block.instrs):
            defs = instr.defs()
            is_dead = (
                isinstance(instr, _PURE)
                and defs
                and not any(d in live for d in defs)
            )
            if is_dead:
                changed = True
                continue
            live -= set(defs)
            live |= set(instr.uses())
            new_reversed.append(instr)
        block.instrs = list(reversed(new_reversed))
    return changed
