"""Loop-invariant code motion (optional pass).

Hoists pure computations whose operands are loop-invariant into a
preheader.  Loads are hoisted only out of loops containing no stores or
calls (no aliasing model is needed under that condition).

This pass is *not* part of :data:`repro.opt.pipeline.DEFAULT_PASSES`:
the reproduction's cost calibration (EXPERIMENTS.md) is pinned to the
default pipeline, and the paper's Multiflow baseline behaviour is
already approximated by the static-schedule factor.  Library users who
want a stronger static baseline can append it::

    PassManager(passes=DEFAULT_PASSES + (loop_invariant_code_motion,))
"""

from __future__ import annotations

from repro.analysis.cfg import Loop, natural_loops
from repro.analysis.expressions import (
    anticipated_expressions,
    expression_of,
)
from repro.analysis.liveness import liveness
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    Imm,
    Instr,
    Jump,
    Load,
    Move,
    Reg,
    Store,
    UnOp,
)

#: Instructions that may be hoisted (plus Load, conditionally).
_PURE = (Move, UnOp, BinOp)


def _loop_defs(function: Function, loop: Loop) -> set[str]:
    defs: set[str] = set()
    for label in loop.body:
        for instr in function.blocks[label].instrs:
            defs.update(instr.defs())
    return defs


def _loop_has_side_effects(function: Function, loop: Loop) -> bool:
    for label in loop.body:
        for instr in function.blocks[label].instrs:
            if isinstance(instr, (Store, Call)):
                return True
    return False


def _operands_invariant(instr: Instr, loop_defs: set[str]) -> bool:
    return all(
        isinstance(op, Imm) or (isinstance(op, Reg)
                                and op.name not in loop_defs)
        for op in instr.operands()
    )


def _may_trap(instr: Instr) -> bool:
    """Hoisting must not introduce a trap on a zero-trip loop: divides
    and moduli are kept in place unless the divisor is a nonzero
    constant, and shifts unless the count is a nonnegative constant."""
    from repro.ir.instructions import Op

    if not isinstance(instr, BinOp):
        return False
    if instr.op in (Op.DIV, Op.MOD):
        return not (isinstance(instr.rhs, Imm) and instr.rhs.value != 0)
    if instr.op in (Op.SHL, Op.SHR):
        return not (isinstance(instr.rhs, Imm)
                    and isinstance(instr.rhs.value, int)
                    and instr.rhs.value >= 0)
    return False


def _ensure_preheader(function: Function, loop: Loop,
                      counter: list[int]) -> str | None:
    """Find or create the block all non-back edges enter the loop by."""
    preds = function.predecessors()
    outside = [p for p in preds[loop.header] if p not in loop.body]
    if not outside:
        return None
    if len(outside) == 1:
        pred = function.blocks[outside[0]]
        if isinstance(pred.terminator, Jump):
            return outside[0]
    counter[0] += 1
    label = f"{loop.header}.ph{counter[0]}"
    while label in function.blocks:
        counter[0] += 1
        label = f"{loop.header}.ph{counter[0]}"
    preheader = BasicBlock(label, [Jump(loop.header)])
    function.blocks[label] = preheader
    for pred_label in outside:
        pred = function.blocks[pred_label]
        term = pred.instrs[-1]
        if isinstance(term, Jump) and term.target == loop.header:
            pred.instrs[-1] = Jump(label)
        elif isinstance(term, Branch):
            if_true = label if term.if_true == loop.header \
                else term.if_true
            if_false = label if term.if_false == loop.header \
                else term.if_false
            pred.instrs[-1] = Branch(term.cond, if_true, if_false)
    if function.entry == loop.header:
        function.entry = label
    return label


def loop_invariant_code_motion(function: Function) -> bool:
    """Hoist invariant computations out of natural loops.

    A pure instruction is hoisted when (a) its operands are not defined
    anywhere in the loop, (b) its destination is defined exactly once
    in the loop, and (c) its destination is not live into the loop
    header — the framework liveness analysis answers this exactly: a
    variable live at the header still carries its pre-loop value on
    some path (a use before the in-loop definition, or an exit path
    bypassing it), which a preheader definition would clobber.

    Potentially trapping instructions (divides, moduli, shifts by a
    dynamic count) additionally require their expression to be
    *anticipated* at the loop header — the backward very-busy-
    expressions analysis proves every path from the header evaluates
    it, so the preheader evaluation cannot introduce a trap the
    original program would have avoided (do-while shapes qualify;
    zero-trip-possible while shapes do not).
    """
    changed = False
    counter = [0]
    for loop in natural_loops(function):
        defs = _loop_defs(function, loop)
        side_effects = _loop_has_side_effects(function, loop)
        live_at_header = liveness(function).live_in[loop.header]
        anticipated = anticipated_expressions(function).get(
            loop.header, frozenset()
        )

        def_counts: dict[str, int] = {}
        for label in loop.body:
            for instr in function.blocks[label].instrs:
                for dest in instr.defs():
                    def_counts[dest] = def_counts.get(dest, 0) + 1

        hoistable: list[Instr] = []
        for label in sorted(loop.body):
            block = function.blocks[label]
            remaining: list[Instr] = []
            for instr in block.instrs:
                is_candidate = (
                    isinstance(instr, _PURE)
                    or (isinstance(instr, Load) and not side_effects)
                )
                trap_safe = (
                    not _may_trap(instr)
                    or expression_of(instr) in anticipated
                )
                if (is_candidate
                        and instr.defs()
                        and def_counts.get(instr.defs()[0], 0) == 1
                        and instr.defs()[0] not in live_at_header
                        and trap_safe
                        and _operands_invariant(instr, defs)):
                    hoistable.append(instr)
                    # Its destination is now invariant for later
                    # candidates in this pass over the loop.
                    defs.discard(instr.defs()[0])
                    changed = True
                else:
                    remaining.append(instr)
            block.instrs = remaining

        if hoistable:
            preheader_label = _ensure_preheader(function, loop, counter)
            if preheader_label is None:
                # No outside entry (dead loop): put them back.
                header = function.blocks[loop.header]
                header.instrs = hoistable + header.instrs
                continue
            preheader = function.blocks[preheader_label]
            preheader.instrs = (
                preheader.instrs[:-1] + hoistable
                + [preheader.instrs[-1]]
            )
    return changed
