"""Pass manager and the standard optimization pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import IRError
from repro.ir.function import Function, Module
from repro.ir.validate import verify_dataflow, verify_function
from repro.opt.constprop import constant_propagation
from repro.opt.copyprop import copy_propagation
from repro.opt.cse import local_cse
from repro.opt.dce import dead_code_elimination
from repro.opt.simplify_cfg import simplify_cfg
from repro.opt.strength import strength_reduction

Pass = Callable[[Function], bool]

#: The default pipeline, iterated to a fixpoint.  Order matters mildly:
#: constants unlock branch folding, which unlocks merging, which unlocks
#: more local CSE.
DEFAULT_PASSES: tuple[Pass, ...] = (
    constant_propagation,
    strength_reduction,
    copy_propagation,
    local_cse,
    dead_code_elimination,
    simplify_cfg,
)


@dataclass
class PassManager:
    """Runs passes to a fixpoint and records how often each fired.

    With ``verify=True`` (the debug mode) the structural and dataflow
    verifiers re-run after every pass that changed the function — plus
    a differential check of the framework-ported analyses against their
    reference implementations — so a miscompiling pass (or an engine
    regression the pass exposed) is caught *at the pass boundary*,
    named in the error, instead of surfacing later as a wrong answer
    in a workload.
    """

    passes: tuple[Pass, ...] = DEFAULT_PASSES
    max_iterations: int = 20
    stats: dict[str, int] = field(default_factory=dict)
    verify: bool = False

    def run(self, function: Function) -> bool:
        """Optimize ``function`` in place; True if anything changed."""
        any_change = False
        for _ in range(self.max_iterations):
            round_change = False
            for opt_pass in self.passes:
                if opt_pass(function):
                    name = getattr(opt_pass, "__name__", repr(opt_pass))
                    self.stats[name] = self.stats.get(name, 0) + 1
                    round_change = True
                    if self.verify:
                        self._verify_after(function, name)
            if not round_change:
                break
            any_change = True
        return any_change

    @staticmethod
    def _verify_after(function: Function, pass_name: str) -> None:
        from repro.analysis.legacy import verify_framework_analyses

        try:
            verify_function(function)
            verify_dataflow(function)
            verify_framework_analyses(function)
        except IRError as exc:
            raise IRError(
                f"pass {pass_name!r} broke function "
                f"{function.name!r}: {exc}"
            ) from exc


def optimize_function(function: Function, debug: bool = False) -> Function:
    """Apply the standard pipeline to a function, in place.

    ``debug=True`` re-runs the IR verifiers between passes (see
    :class:`PassManager`).
    """
    PassManager(verify=debug).run(function)
    return function


def optimize_module(module: Module, debug: bool = False) -> Module:
    """Apply the standard pipeline to every function in a module."""
    manager = PassManager(verify=debug)
    for function in module.functions.values():
        manager.run(function)
    return module
