"""Region-shape metadata for the code-generating backend.

The Python-codegen backend (:mod:`repro.machine.pycodegen`) lowers a
function's blocks to one generated Python function and needs a *layout*
before it can emit anything: an emission order in which as many control
transfers as possible become straight-line fallthrough, plus the
single-block loops that can be emitted as native ``while`` statements
instead of label dispatch.  The linter's DYC210 check needs the same
shape data to estimate how large the emitted source would be.  Both
consumers share this module so layout policy and size estimation cannot
drift apart.

Layout is greedy trace placement: starting from each not-yet-placed
block (in CFG insertion order, which is deterministic), follow the
fallthrough-preferred successor — a ``Jump`` target, or a ``Branch``'s
false arm (its true arm if the false arm is already placed) — until the
chain dead-ends.  Every chain becomes one contiguous run of dense block
ids, so the emitter can guard a chain with a single range test and let
execution fall from one block into the next.

With an observed-transfer ``profile`` (superinstruction fusion
profiles collected by the threaded backend; see
:mod:`repro.machine.fusionprofile`), trace growth prefers the *hottest
observed* successor over the static heuristic, and finished chains are
ordered hottest-first (the entry chain stays first) so hot transfers
become fallthrough and get dense low ids.  Layout never changes
semantics or cycle accounting, so a stale profile can only cost
dispatches, never correctness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.function import Function
from repro.ir.instructions import Branch, Jump, Reg

#: Rough emitted-source size per lowered IR instruction (counted mode:
#: semantics plus inlined cycle/step accounting).  Used by the DYC210
#: size-budget estimate; deliberately on the generous side so the lint
#: flags runaway regions before the backend refuses to compile them.
EST_CHARS_PER_INSTR = 110

#: Fixed emitted-source overhead per basic block (dispatch guard,
#: version guard, commit boilerplate).
EST_CHARS_PER_BLOCK = 120


@dataclass(frozen=True)
class RegionShape:
    """Codegen layout metadata for one function's CFG."""

    #: Trace-ordered chains of block labels; concatenated they cover
    #: every block exactly once.
    chains: tuple[tuple[str, ...], ...]
    #: Flattened emission order (``chains`` concatenated).
    order: tuple[str, ...]
    #: label -> dense id, in emission order.  Dense ids are what the
    #: generated dispatch loop switches on.
    ids: dict[str, int]
    #: Labels of single-block loops (a ``Branch`` on a register where
    #: exactly one arm targets the block itself); the emitter turns
    #: these into native ``while`` loops.
    self_loops: frozenset[str]
    #: Total instruction count across all blocks.
    instruction_count: int


def _preferred_successor(block, placed: set,
                         hot: dict | None = None) -> str | None:
    """The successor to place immediately after ``block``, if any.

    ``hot`` (``dst label -> observed transfer count`` for this block)
    overrides the static preference: the hottest unplaced successor
    wins, with the static choice breaking ties deterministically.
    """
    if not block.instrs:
        return None
    term = block.instrs[-1]
    cls = type(term)
    if cls is Jump:
        if term.target not in placed:
            return term.target
        return None
    if cls is Branch:
        if hot:
            candidates = [
                arm for arm in (term.if_false, term.if_true)
                if arm not in placed
            ]
            if len(candidates) == 2:
                t_heat = hot.get(term.if_true, 0)
                f_heat = hot.get(term.if_false, 0)
                if t_heat > f_heat:
                    return term.if_true
                return term.if_false
            if candidates:
                return candidates[0]
            return None
        # Prefer the false arm (loop exits / else branches tend to
        # continue the trace); take the true arm if false is placed.
        if term.if_false not in placed:
            return term.if_false
        if term.if_true not in placed:
            return term.if_true
    return None


def _chain_heat(chain: tuple, successors: dict) -> int:
    """Total observed transfers leaving any block of ``chain``."""
    return sum(
        sum(successors.get(label, {}).values()) for label in chain
    )


def region_shape(fn: Function,
                 profile: dict | None = None) -> RegionShape:
    """Compute the codegen layout for ``fn``.

    Unreachable-from-entry blocks are still placed: region code is
    entered at arbitrary labels (promotion continuations, region-exit
    resumes), so every block must be dispatchable.

    ``profile`` is an optional ``src label -> {dst label -> count}``
    map of observed block transfers (see
    :func:`repro.machine.fusionprofile.successors_for`); when given,
    trace growth and chain order follow the observed heat.
    """
    placed: set[str] = set()
    chains: list[tuple[str, ...]] = []
    self_loops: set[str] = set()
    instruction_count = 0

    for label, block in fn.blocks.items():
        instruction_count += len(block.instrs)
        if block.instrs:
            term = block.instrs[-1]
            if (type(term) is Branch and type(term.cond) is Reg
                    and (term.if_true == label) != (term.if_false == label)):
                self_loops.add(label)

    for seed in fn.blocks:
        if seed in placed:
            continue
        chain: list[str] = []
        cursor: str | None = seed
        while cursor is not None and cursor not in placed:
            placed.add(cursor)
            chain.append(cursor)
            block = fn.blocks[cursor]
            if cursor in self_loops:
                # The loop body repeats in place; continue the trace at
                # the loop's exit arm.
                term = block.instrs[-1]
                exit_label = (term.if_false if term.if_true == cursor
                              else term.if_true)
                cursor = exit_label if exit_label not in placed else None
            else:
                hot = profile.get(cursor) if profile else None
                cursor = _preferred_successor(block, placed, hot)
        chains.append(tuple(chain))

    if profile and len(chains) > 1:
        # Hot chains first (stable; the entry chain is pinned to the
        # front so the common entry id stays in the first guard range).
        entry_chain = chains[0]
        rest = sorted(
            chains[1:],
            key=lambda chain: -_chain_heat(chain, profile),
        )
        chains = [entry_chain, *rest]

    order = tuple(label for chain in chains for label in chain)
    ids = {label: index for index, label in enumerate(order)}
    return RegionShape(
        chains=tuple(chains),
        order=order,
        ids=ids,
        self_loops=frozenset(self_loops),
        instruction_count=instruction_count,
    )


def estimate_emitted_chars(instruction_count: int,
                           block_count: int = 0) -> int:
    """Rough size in characters of the Python source the codegen backend
    would emit for a function of this shape (counted mode)."""
    return (instruction_count * EST_CHARS_PER_INSTR
            + block_count * EST_CHARS_PER_BLOCK)
