"""CFG simplification: branch folding, jump threading, block merging.

* branches whose both targets are identical become jumps;
* blocks containing only a jump are threaded through (their predecessors
  retarget past them);
* a block with a unique successor whose successor has a unique predecessor
  is merged into it;
* unreachable blocks are removed.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instructions import Branch, EnterRegion, Instr, Jump


def _retarget(instr: Instr, old: str, new: str) -> Instr:
    if isinstance(instr, Jump) and instr.target == old:
        return Jump(new)
    if isinstance(instr, Branch):
        if_true = new if instr.if_true == old else instr.if_true
        if_false = new if instr.if_false == old else instr.if_false
        if if_true != instr.if_true or if_false != instr.if_false:
            return Branch(instr.cond, if_true, if_false)
    if isinstance(instr, EnterRegion) and old in instr.exits:
        exits = tuple(new if e == old else e for e in instr.exits)
        return EnterRegion(
            instr.region_id, instr.keys, exits, policy=instr.policy
        )
    return instr


def simplify_cfg(function: Function) -> bool:
    """Iteratively simplify the CFG; True if anything changed."""
    changed = False
    while _simplify_once(function):
        changed = True
    return changed


def _simplify_once(function: Function) -> bool:
    changed = False

    # Fold branches with identical targets.
    for block in function.blocks.values():
        term = block.instrs[-1] if block.instrs else None
        if isinstance(term, Branch) and term.if_true == term.if_false:
            block.instrs[-1] = Jump(term.if_true)
            changed = True

    # Thread jumps through trivial (jump-only) blocks.
    trivial = {
        label: block.instrs[0].target
        for label, block in function.blocks.items()
        if len(block.instrs) == 1 and isinstance(block.instrs[0], Jump)
        and block.instrs[0].target != label
    }
    # Resolve chains of trivial blocks (with cycle protection).
    def resolve(label: str) -> str:
        seen = set()
        while label in trivial and label not in seen:
            seen.add(label)
            label = trivial[label]
        return label

    if trivial:
        for block in function.blocks.values():
            term = block.instrs[-1]
            for succ in term.successors():
                final = resolve(succ)
                if final != succ:
                    block.instrs[-1] = _retarget(
                        block.instrs[-1], succ, final
                    )
                    changed = True
        if function.entry in trivial:
            function.entry = resolve(function.entry)
            changed = True

    if function.remove_unreachable_blocks():
        changed = True

    # Merge straight-line pairs: A ends in Jump(B), B has only A as pred.
    preds = function.predecessors()
    for label in list(function.blocks):
        if label not in function.blocks:
            continue
        block = function.blocks[label]
        term = block.instrs[-1]
        if not isinstance(term, Jump):
            continue
        succ = term.target
        if succ == label or succ == function.entry:
            continue
        if preds.get(succ, []) != [label]:
            continue
        succ_block = function.blocks.pop(succ)
        block.instrs = block.instrs[:-1] + succ_block.instrs
        # Successor lists changed; recompute and continue next iteration.
        preds = function.predecessors()
        changed = True

    return changed
