"""Static strength reduction of constant-operand operations.

A conventional optimizing compiler (the paper's Multiflow baseline) folds
multiplies, divides, and moduli by compile-time-constant powers of two
into shifts and masks.  Applying the same transformation to the static
baseline keeps the comparison against dynamically compiled code fair —
DyC's *dynamic* strength reduction (§2.2.7) is only interesting for
operands that become constant at run time.

As in most compilers' fast paths, divide/modulus reduction assumes a
non-negative dividend (C's truncating division differs from an
arithmetic shift for negatives); the workloads' index arithmetic
satisfies this.  Multiplication by a power of two is always safe.
"""

from __future__ import annotations

from repro.ir.eval import is_power_of_two, log2_exact
from repro.ir.function import Function
from repro.ir.instructions import BinOp, Imm, Instr, Move, Op, Reg


def two_term_decomposition(value: int) -> tuple[int, str, int] | None:
    """Decompose ``value`` as ``2^a + 2^b`` or ``2^a - 2^b``.

    Returns ``(a, op, b)`` with op "add"/"sub", or None.  Covers the
    small multipliers addressing arithmetic produces (3, 5, 6, 7, 9, 10,
    12, 14, 15, 20, 24, ...), which Alpha compilers emit as scaled
    adds/shift pairs instead of an 8-cycle multiply.
    """
    if not isinstance(value, int) or value < 3:
        return None
    for a in range(1, value.bit_length() + 1):
        high = 1 << a
        rest = value - high
        if rest > 0 and rest & (rest - 1) == 0:
            return (a, "add", log2_exact(rest))
        rest = high - value
        if rest > 0 and rest & (rest - 1) == 0:
            return (a, "sub", log2_exact(rest))
    return None


_DECOMP_COUNTER = [0]


def _reduce_mul_two_term(instr: BinOp, lhs: Reg,
                         value: int) -> list[Instr] | None:
    decomposition = two_term_decomposition(value)
    if decomposition is None:
        return None
    a, op, b = decomposition
    _DECOMP_COUNTER[0] += 1
    temp = f"%sr{_DECOMP_COUNTER[0]}"
    first = BinOp(temp, Op.SHL, lhs, Imm(a))
    second_rhs = lhs if b == 0 else Reg(f"{temp}.b")
    parts: list[Instr] = [first]
    if b != 0:
        parts.append(BinOp(f"{temp}.b", Op.SHL, lhs, Imm(b)))
        second_rhs = Reg(f"{temp}.b")
    parts.append(BinOp(
        instr.dest, Op.ADD if op == "add" else Op.SUB,
        Reg(temp), second_rhs,
    ))
    return parts


def _reduce(instr: Instr) -> Instr | list[Instr]:
    if not isinstance(instr, BinOp):
        return instr
    lhs, rhs = instr.lhs, instr.rhs
    if instr.op is Op.MUL:
        if isinstance(lhs, Imm) and isinstance(rhs, Reg):
            lhs, rhs = rhs, lhs
        if isinstance(rhs, Imm) and isinstance(lhs, Reg):
            if rhs.value == 1:
                return Move(instr.dest, lhs)
            if is_power_of_two(rhs.value):
                return BinOp(instr.dest, Op.SHL, lhs,
                             Imm(log2_exact(rhs.value)))
            if isinstance(rhs.value, int) and 0 < rhs.value <= 255:
                parts = _reduce_mul_two_term(instr, lhs, rhs.value)
                if parts is not None:
                    return parts
    elif instr.op is Op.DIV:
        if isinstance(rhs, Imm) and isinstance(lhs, Reg):
            if rhs.value == 1:
                return Move(instr.dest, lhs)
            if is_power_of_two(rhs.value):
                return BinOp(instr.dest, Op.SHR, lhs,
                             Imm(log2_exact(rhs.value)))
    elif instr.op is Op.MOD:
        if isinstance(rhs, Imm) and isinstance(lhs, Reg):
            if is_power_of_two(rhs.value):
                return BinOp(instr.dest, Op.AND, lhs,
                             Imm(rhs.value - 1))
    return instr


def strength_reduction(function: Function) -> bool:
    """Reduce constant mul/div/mod to shifts/masks/adds; True if
    changed."""
    changed = False
    for block in function.blocks.values():
        new_instrs: list[Instr] = []
        for instr in block.instrs:
            replacement = _reduce(instr)
            if replacement is instr:
                new_instrs.append(instr)
            elif isinstance(replacement, list):
                new_instrs.extend(replacement)
                changed = True
            else:
                new_instrs.append(replacement)
                changed = True
        block.instrs = new_instrs
    return changed
