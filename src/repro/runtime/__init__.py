"""The dynamic-compilation runtime.

At run time, a region's generating extension is driven by the
:class:`~repro.runtime.specializer.Specializer` (polyvariant
specialization = complete single-/multi-way loop unrolling, internal
promotions, lazy multi-stage specialization), dispatched through
:class:`~repro.runtime.cache.CodeCache` double-hashing code caches, with
the staged dynamic zero/copy propagation, dead-assignment elimination,
and strength reduction completed by :mod:`repro.runtime.emit` during
emission.  :class:`~repro.runtime.runtime.DycRuntime` ties it together
and plugs into the abstract machine's ``EnterRegion``/``Promote`` hooks.
"""

from repro.runtime.overhead import OverheadModel, DEFAULT_OVERHEAD
from repro.runtime.cache import CodeCache, IndexedCache, UncheckedCache
from repro.runtime.stats import RegionStats, RuntimeStats
from repro.runtime.runtime import DycRuntime

__all__ = [
    "OverheadModel",
    "DEFAULT_OVERHEAD",
    "CodeCache",
    "IndexedCache",
    "UncheckedCache",
    "RegionStats",
    "RuntimeStats",
    "DycRuntime",
]
