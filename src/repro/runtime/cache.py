"""Code caches: double hashing (cache-all) and the unchecked single slot.

DyC's default ``cache-all`` policy maintains, at each promotion point, a
cache from the values of the promoted static variables to the code
specialized for those values, "implemented using double hashing" (§2.2.3,
citing CLR).  The ``cache-one-unchecked`` policy replaces the lookup with
a single load — and is *unsafe*: if the annotated values do change, the
stale version is reused without any check, exactly as the paper warns.

Lookups report how many probes they took so the dispatcher can charge a
collision-dependent cost (mipsi's ~150-cycle dispatches come from hash
collisions, §4.4.3).

Robustness extensions (see ``DESIGN.md``, degradation ladder): a
``cache_all`` table can be *bounded* (``capacity=N``), in which case a
full table evicts a clock/second-chance victim instead of growing, and
entries can carry *checksums* — a stamp computed over the value's stable
identity at insert time and re-verified on every hit.  A corrupt (or
injected-corrupt) entry is deleted and reported as a miss, so the
dispatcher transparently re-specializes rather than executing damaged
code.  Deleted slots become tombstones so open-addressing probe chains
stay intact; a clean unbounded cache never creates one, keeping its probe
accounting byte-identical to the original unbounded implementation.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import CacheError

_EMPTY = object()
_TOMBSTONE = object()


def _hash_key(key: tuple) -> int:
    """Deterministic hash of a tuple of numbers.

    An FNV-1a-style fold over the elements' bit patterns, independent of
    ``PYTHONHASHSEED`` so experiment results are reproducible.
    """
    h = 0xcbf29ce484222325
    for element in key:
        if isinstance(element, float):
            data = hash(element)  # numeric hash: deterministic in CPython
        else:
            data = element if isinstance(element, int) else hash(element)
        data &= 0xFFFFFFFFFFFFFFFF
        while True:
            h ^= data & 0xFF
            h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
            data >>= 8
            if not data:
                break
    return h


@dataclass
class LookupResult:
    """Outcome of a cache lookup: the value (if hit) and the probe count."""

    hit: bool
    value: object
    probes: int


def entry_checksum(value) -> int:
    """Default entry-checksum function.

    Values exposing ``cache_identity()`` (e.g.
    :class:`~repro.runtime.specializer.SpecializedCode`) are stamped over
    those *stable* identity fields — specialized code is legitimately
    mutated in place by lazy promotions, so a content hash would
    false-positive.  Everything else (promotion caches store plain block
    labels) is stamped over its ``repr``.
    """
    ident = getattr(value, "cache_identity", None)
    if ident is not None:
        return _hash_key(ident())
    return _hash_key((type(value).__name__, repr(value)))


class CodeCache:
    """An open-addressing hash table with double hashing.

    ``capacity`` bounds the number of *live* entries (0 = unbounded);
    a full cache evicts a clock/second-chance victim before inserting.
    ``checksum`` (a ``value -> int`` function) arms per-entry integrity
    stamps; a stamp mismatch on lookup deletes the entry and reports a
    miss.  ``faults`` is an optional
    :class:`~repro.faults.FaultRegistry` consulted at the
    ``cache.corrupt`` / ``cache.evict`` points on insertion.
    ``on_evict`` / ``on_corrupt`` are no-argument callbacks for stats
    accounting.

    Thread safety
    -------------

    By default a ``CodeCache`` is **thread-confined**: the runtime
    builds one per promotion point inside a
    :class:`~repro.runtime.runtime.DycRuntime`, and every runtime (with
    its caches, fault registry, and quarantine table) is owned by
    exactly one run on one thread — that confinement is the invariant
    the eval harness and the serve daemon's per-request runs rely on,
    and it is what keeps probe accounting byte-identical.

    ``lock=True`` arms an internal ``RLock`` around ``lookup`` /
    ``insert`` / ``items`` / ``len`` for caches that *are* shared
    across threads (the serve daemon's sharded result cache).  Each
    operation is then atomic — eviction picks its victim and deletes it
    under the same lock acquisition that inserts the new entry, and a
    corrupt hit is deleted before the lookup returns — so concurrent
    readers can never observe a half-applied eviction or a
    checksum-mismatched value.  The callbacks (``on_evict`` /
    ``on_corrupt`` / ``checksum``) run while the lock is held and must
    not re-enter the cache from another thread.
    """

    def __init__(self, initial_size: int = 16,
                 max_load_factor: float = 0.7,
                 capacity: int = 0,
                 checksum=None,
                 faults=None,
                 on_evict=None,
                 on_corrupt=None,
                 lock: bool = False) -> None:
        if initial_size < 4:
            raise CacheError("cache size must be at least 4")
        if capacity < 0:
            raise CacheError("cache capacity must be >= 0")
        self._size = initial_size
        self._keys: list = [_EMPTY] * initial_size
        self._values: list = [None] * initial_size
        self._count = 0    # live entries
        self._fill = 0     # live entries + tombstones
        self._max_load = max_load_factor
        self._capacity = capacity
        self._checksum = checksum
        self._stamps: list | None = \
            [0] * initial_size if checksum is not None else None
        self._ref: list = [False] * initial_size
        self._hand = 0
        self._faults = faults
        self._on_evict = on_evict
        self._on_corrupt = on_corrupt
        self._lock = threading.RLock() if lock else None
        self.total_probes = 0
        self.total_lookups = 0
        self.evictions = 0
        self.corrupt_hits = 0
        self.compactions = 0

    def __len__(self) -> int:
        guard = self._lock
        if guard is None:
            return self._count
        with guard:
            return self._count

    @property
    def capacity(self) -> int:
        return self._capacity

    def _probe_sequence(self, key: tuple) -> Iterator[int]:
        h = _hash_key(key)
        index = h % self._size
        # Second hash must be odd so it is coprime with the (power-of-two)
        # table size, guaranteeing a full-cycle probe sequence.
        step = ((h >> 32) | 1) % self._size or 1
        for _ in range(self._size):
            yield index
            index = (index + step) % self._size

    def lookup(self, key: tuple) -> LookupResult:
        """Find ``key``; reports the number of probes performed.

        A hit whose integrity stamp no longer matches is deleted and
        reported as a miss — the caller re-specializes and re-inserts.
        """
        guard = self._lock
        if guard is None:
            return self._lookup(key)
        with guard:
            return self._lookup(key)

    def _lookup(self, key: tuple) -> LookupResult:
        probes = 0
        self.total_lookups += 1
        stamps = self._stamps
        for index in self._probe_sequence(key):
            probes += 1
            slot_key = self._keys[index]
            if slot_key is _EMPTY:
                break
            if slot_key is _TOMBSTONE:
                continue
            if slot_key == key:
                if stamps is not None and \
                        stamps[index] != self._checksum(
                            self._values[index]):
                    self._delete(index)
                    self.corrupt_hits += 1
                    if self._on_corrupt is not None:
                        self._on_corrupt()
                    break
                self._ref[index] = True
                self.total_probes += probes
                return LookupResult(True, self._values[index], probes)
        self.total_probes += probes
        return LookupResult(False, None, probes)

    def insert(self, key: tuple, value) -> None:
        guard = self._lock
        if guard is None:
            return self._insert(key, value)
        with guard:
            return self._insert(key, value)

    def _insert(self, key: tuple, value) -> None:
        faults = self._faults
        if faults is not None and faults.should_fire("cache.evict"):
            self._evict_one()
        if self._capacity and self._count >= self._capacity \
                and not self._contains(key):
            self._evict_one()
        if (self._fill + 1) / self._size > self._max_load:
            self._grow()
        stamp = 0
        if self._stamps is not None:
            stamp = self._checksum(value)
            if faults is not None and faults.should_fire("cache.corrupt"):
                stamp ^= 0x5A5A5A5A
        first_tombstone = None
        for index in self._probe_sequence(key):
            slot_key = self._keys[index]
            if slot_key is _TOMBSTONE:
                if first_tombstone is None:
                    first_tombstone = index
                continue
            if slot_key is _EMPTY or slot_key == key:
                if slot_key is _EMPTY:
                    if first_tombstone is not None:
                        index = first_tombstone
                    else:
                        self._fill += 1
                    self._count += 1
                self._set_slot(index, key, value, stamp)
                return
        if first_tombstone is not None:
            self._count += 1
            self._set_slot(first_tombstone, key, value, stamp)
            return
        raise CacheError("cache insertion failed (table full)")

    def _set_slot(self, index: int, key: tuple, value, stamp: int) -> None:
        self._keys[index] = key
        self._values[index] = value
        if self._stamps is not None:
            self._stamps[index] = stamp
        self._ref[index] = True

    def _contains(self, key: tuple) -> bool:
        """Presence check without touching the probe statistics."""
        for index in self._probe_sequence(key):
            slot_key = self._keys[index]
            if slot_key is _EMPTY:
                return False
            if slot_key is not _TOMBSTONE and slot_key == key:
                return True
        return False

    def delete(self, key: tuple) -> bool:
        """Delete ``key`` if present; returns whether it was found.

        Used by the persistent store's front cache to drop an entry whose
        backing record failed integrity verification.
        """
        guard = self._lock
        if guard is None:
            return self._delete_key(key)
        with guard:
            return self._delete_key(key)

    def _delete_key(self, key: tuple) -> bool:
        for index in self._probe_sequence(key):
            slot_key = self._keys[index]
            if slot_key is _EMPTY:
                return False
            if slot_key is not _TOMBSTONE and slot_key == key:
                self._delete(index)
                return True
        return False

    def _delete(self, index: int) -> None:
        self._keys[index] = _TOMBSTONE
        self._values[index] = None
        if self._stamps is not None:
            self._stamps[index] = 0
        self._ref[index] = False
        self._count -= 1
        # Tombstone compaction: heavy eviction/deletion churn would
        # otherwise degrade probe chains permanently (every probe walks
        # the accumulated tombstones).  Rehash in place once tombstones
        # outnumber half the table.  A clean unbounded cache never
        # deletes, so it never compacts and its probe accounting stays
        # byte-identical to the original unbounded implementation.
        if self._fill - self._count > self._size // 2:
            self._grow()
            self.compactions += 1

    def _evict_one(self) -> None:
        """Clock/second-chance: evict the first un-referenced live entry."""
        if self._count == 0:
            return
        size = self._size
        for _ in range(2 * size + 1):
            index = self._hand
            self._hand = (index + 1) % size
            slot_key = self._keys[index]
            if slot_key is _EMPTY or slot_key is _TOMBSTONE:
                continue
            if self._ref[index]:
                self._ref[index] = False
                continue
            self._delete(index)
            self.evictions += 1
            if self._on_evict is not None:
                self._on_evict()
            return

    def _grow(self) -> None:
        """Rebuild without tombstones, doubling only as far as needed.

        Stamps are carried over verbatim (not recomputed), so an
        injected-corrupt entry stays corrupt across a rehash.
        """
        entries = [
            (self._keys[i], self._values[i],
             self._stamps[i] if self._stamps is not None else 0,
             self._ref[i])
            for i in range(self._size)
            if self._keys[i] is not _EMPTY
            and self._keys[i] is not _TOMBSTONE
        ]
        size = self._size
        while (len(entries) + 1) / size > self._max_load:
            size *= 2
        self._size = size
        self._keys = [_EMPTY] * size
        self._values = [None] * size
        if self._stamps is not None:
            self._stamps = [0] * size
        self._ref = [False] * size
        self._hand = 0
        self._count = 0
        self._fill = 0
        for key, value, stamp, ref in entries:
            self._place(key, value, stamp, ref)

    def _place(self, key: tuple, value, stamp: int, ref: bool) -> None:
        """Raw reinsertion during a rehash (no faults, no eviction)."""
        for index in self._probe_sequence(key):
            if self._keys[index] is _EMPTY:
                self._keys[index] = key
                self._values[index] = value
                if self._stamps is not None:
                    self._stamps[index] = stamp
                self._ref[index] = ref
                self._count += 1
                self._fill += 1
                return
        raise CacheError("cache insertion failed (table full)")

    @property
    def average_probes(self) -> float:
        if not self.total_lookups:
            return 0.0
        return self.total_probes / self.total_lookups

    def items(self):
        guard = self._lock
        if guard is None:
            return self._items()
        with guard:
            # Snapshot under the lock; callers iterate lock-free.
            return iter(list(self._items()))

    def _items(self):
        for key, value in zip(self._keys, self._values):
            if key is not _EMPTY and key is not _TOMBSTONE:
                yield key, value


class IndexedCache:
    """The §3.1 extension: array-indexed dispatch for small-range keys.

    "For such cases, the lookup could be implemented as a simple array
    indexing, in place of DyC's current general-purpose hash-table
    lookup" — the policy that would make byte-at-a-time programs
    (decompressors, grep) profitable to compile dynamically.

    The *last* component of the key tuple indexes a 256-slot array; the
    full key is stored and verified, so unlike ``cache-one-unchecked``
    this policy is safe: a slot collision (same index, different other
    components) is treated as a miss and the slot is refilled.
    """

    RANGE = 256

    def __init__(self) -> None:
        self._keys: list = [_EMPTY] * self.RANGE
        self._values: list = [None] * self.RANGE
        self.total_lookups = 0
        self.refills = 0

    @staticmethod
    def _index(key: tuple) -> int:
        if not key:
            raise CacheError("cache_indexed requires a non-empty key")
        index = key[-1]
        if not isinstance(index, int) or not 0 <= index < IndexedCache.RANGE:
            raise CacheError(
                f"cache_indexed key component {index!r} outside 0.."
                f"{IndexedCache.RANGE - 1}; use cache_all for this "
                "promotion"
            )
        return index

    def lookup(self, key: tuple) -> LookupResult:
        self.total_lookups += 1
        index = self._index(key)
        if self._keys[index] == key:
            return LookupResult(True, self._values[index], 1)
        return LookupResult(False, None, 1)

    def insert(self, key: tuple, value) -> None:
        index = self._index(key)
        if self._keys[index] is not _EMPTY:
            self.refills += 1
        self._keys[index] = key
        self._values[index] = value


class UncheckedCache:
    """The ``cache-one-unchecked`` policy: a single unguarded slot.

    The first dispatch fills the slot; later dispatches return it without
    comparing keys (that is the point — and the hazard).  With
    ``strict=True`` (the annotation-checking debug mode) a key change
    raises instead of silently reusing stale code.
    """

    def __init__(self, strict: bool = False) -> None:
        self._key: tuple | None = None
        self._value = None
        self._filled = False
        self._strict = strict
        self.total_lookups = 0

    def lookup(self, key: tuple) -> LookupResult:
        self.total_lookups += 1
        if not self._filled:
            return LookupResult(False, None, 1)
        if self._strict and key != self._key:
            raise CacheError(
                "cache-one-unchecked dispatch with changed key "
                f"(cached {self._key!r}, got {key!r}); the annotation "
                "is unsafe for this program"
            )
        return LookupResult(True, self._value, 1)

    def insert(self, key: tuple, value) -> None:
        self._key = key
        self._value = value
        self._filled = True
