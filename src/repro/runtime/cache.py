"""Code caches: double hashing (cache-all) and the unchecked single slot.

DyC's default ``cache-all`` policy maintains, at each promotion point, a
cache from the values of the promoted static variables to the code
specialized for those values, "implemented using double hashing" (§2.2.3,
citing CLR).  The ``cache-one-unchecked`` policy replaces the lookup with
a single load — and is *unsafe*: if the annotated values do change, the
stale version is reused without any check, exactly as the paper warns.

Lookups report how many probes they took so the dispatcher can charge a
collision-dependent cost (mipsi's ~150-cycle dispatches come from hash
collisions, §4.4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import CacheError

_EMPTY = object()


def _hash_key(key: tuple) -> int:
    """Deterministic hash of a tuple of numbers.

    An FNV-1a-style fold over the elements' bit patterns, independent of
    ``PYTHONHASHSEED`` so experiment results are reproducible.
    """
    h = 0xcbf29ce484222325
    for element in key:
        if isinstance(element, float):
            data = hash(element)  # numeric hash: deterministic in CPython
        else:
            data = element if isinstance(element, int) else hash(element)
        data &= 0xFFFFFFFFFFFFFFFF
        while True:
            h ^= data & 0xFF
            h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
            data >>= 8
            if not data:
                break
    return h


@dataclass
class LookupResult:
    """Outcome of a cache lookup: the value (if hit) and the probe count."""

    hit: bool
    value: object
    probes: int


class CodeCache:
    """An open-addressing hash table with double hashing."""

    def __init__(self, initial_size: int = 16,
                 max_load_factor: float = 0.7) -> None:
        if initial_size < 4:
            raise CacheError("cache size must be at least 4")
        self._size = initial_size
        self._keys: list = [_EMPTY] * initial_size
        self._values: list = [None] * initial_size
        self._count = 0
        self._max_load = max_load_factor
        self.total_probes = 0
        self.total_lookups = 0

    def __len__(self) -> int:
        return self._count

    def _probe_sequence(self, key: tuple) -> Iterator[int]:
        h = _hash_key(key)
        index = h % self._size
        # Second hash must be odd so it is coprime with the (power-of-two)
        # table size, guaranteeing a full-cycle probe sequence.
        step = ((h >> 32) | 1) % self._size or 1
        for _ in range(self._size):
            yield index
            index = (index + step) % self._size

    def lookup(self, key: tuple) -> LookupResult:
        """Find ``key``; reports the number of probes performed."""
        probes = 0
        self.total_lookups += 1
        for index in self._probe_sequence(key):
            probes += 1
            slot_key = self._keys[index]
            if slot_key is _EMPTY:
                self.total_probes += probes
                return LookupResult(False, None, probes)
            if slot_key == key:
                self.total_probes += probes
                return LookupResult(True, self._values[index], probes)
        self.total_probes += probes
        return LookupResult(False, None, probes)

    def insert(self, key: tuple, value) -> None:
        if (self._count + 1) / self._size > self._max_load:
            self._grow()
        for index in self._probe_sequence(key):
            slot_key = self._keys[index]
            if slot_key is _EMPTY or slot_key == key:
                if slot_key is _EMPTY:
                    self._count += 1
                self._keys[index] = key
                self._values[index] = value
                return
        raise CacheError("cache insertion failed (table full)")

    def _grow(self) -> None:
        old_keys, old_values = self._keys, self._values
        self._size *= 2
        self._keys = [_EMPTY] * self._size
        self._values = [None] * self._size
        self._count = 0
        for key, value in zip(old_keys, old_values):
            if key is not _EMPTY:
                self.insert(key, value)

    @property
    def average_probes(self) -> float:
        if not self.total_lookups:
            return 0.0
        return self.total_probes / self.total_lookups

    def items(self):
        for key, value in zip(self._keys, self._values):
            if key is not _EMPTY:
                yield key, value


class IndexedCache:
    """The §3.1 extension: array-indexed dispatch for small-range keys.

    "For such cases, the lookup could be implemented as a simple array
    indexing, in place of DyC's current general-purpose hash-table
    lookup" — the policy that would make byte-at-a-time programs
    (decompressors, grep) profitable to compile dynamically.

    The *last* component of the key tuple indexes a 256-slot array; the
    full key is stored and verified, so unlike ``cache-one-unchecked``
    this policy is safe: a slot collision (same index, different other
    components) is treated as a miss and the slot is refilled.
    """

    RANGE = 256

    def __init__(self) -> None:
        self._keys: list = [_EMPTY] * self.RANGE
        self._values: list = [None] * self.RANGE
        self.total_lookups = 0
        self.refills = 0

    @staticmethod
    def _index(key: tuple) -> int:
        if not key:
            raise CacheError("cache_indexed requires a non-empty key")
        index = key[-1]
        if not isinstance(index, int) or not 0 <= index < IndexedCache.RANGE:
            raise CacheError(
                f"cache_indexed key component {index!r} outside 0.."
                f"{IndexedCache.RANGE - 1}; use cache_all for this "
                "promotion"
            )
        return index

    def lookup(self, key: tuple) -> LookupResult:
        self.total_lookups += 1
        index = self._index(key)
        if self._keys[index] == key:
            return LookupResult(True, self._values[index], 1)
        return LookupResult(False, None, 1)

    def insert(self, key: tuple, value) -> None:
        index = self._index(key)
        if self._keys[index] is not _EMPTY:
            self.refills += 1
        self._keys[index] = key
        self._values[index] = value


class UncheckedCache:
    """The ``cache-one-unchecked`` policy: a single unguarded slot.

    The first dispatch fills the slot; later dispatches return it without
    comparing keys (that is the point — and the hazard).  With
    ``strict=True`` (the annotation-checking debug mode) a key change
    raises instead of silently reusing stale code.
    """

    def __init__(self, strict: bool = False) -> None:
        self._key: tuple | None = None
        self._value = None
        self._filled = False
        self._strict = strict
        self.total_lookups = 0

    def lookup(self, key: tuple) -> LookupResult:
        self.total_lookups += 1
        if not self._filled:
            return LookupResult(False, None, 1)
        if self._strict and key != self._key:
            raise CacheError(
                "cache-one-unchecked dispatch with changed key "
                f"(cached {self._key!r}, got {key!r}); the annotation "
                "is unsafe for this program"
            )
        return LookupResult(True, self._value, 1)

    def insert(self, key: tuple, value) -> None:
        self._key = key
        self._value = value
        self._filled = True
