"""The completion stage of DyC's staged dynamic optimizations (§2.2.7).

A :class:`BlockEmitter` builds one emitted block.  As template
instructions arrive (holes already filled with run-time-constant values),
it performs:

* **dynamic zero and copy propagation** — when the single static operand
  of an eligible operation turns out to be 0 or 1 (etc.), the operation
  is replaced by a clear/move; a *note table* records the replacement so
  eligible downstream uses are rewritten ("Emit code sequences for uses
  of the potentially optimized instruction check the table to see how
  they should generate code for their operand");
* **dead-assignment elimination** — buffered instructions carry
  statically planned use counts; when zero/copy propagation eliminates
  the last reference to a result, the producing instruction is deleted,
  cascading to *its* operands (this is what deletes the image loads in
  pnmconvol's zero iterations, Figure 4);
* **dynamic strength reduction** — multiplies/divides/moduli by run-time
  constant powers of two become shifts/masks; ×1 becomes a move and ×0 a
  clear (which alone buys nothing for floats on the 21164, since an FP
  move costs an FP multiply — the paper's motivation for ZCP+DAE);
* **immediate fitting** — integer constants that fit an instruction
  literal field are used inline, anything else is materialized into a
  register by an extra emitted move.

Notes and use counts are scoped to one emitted block: the planning stage
identifies downstream uses within the template block (crossing blocks
would require path-sensitive validity of the notes, which DyC's planner
guarantees statically; block scoping is our conservative equivalent).

No run-time IR analysis happens here — only the statically computed
:class:`~repro.dyc.plans.InstrPlan` plus the note table, as the paper
requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import OptConfig
from repro.dyc.plans import InstrPlan
from repro.errors import SpecializationError, TrapError
from repro.ir.eval import (
    IMMEDIATE_LIMIT,
    eval_binop,
    eval_unop,
    fits_immediate,
    is_power_of_two,
    log2_exact,
)
from repro.opt.strength import two_term_decomposition
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    Imm,
    Instr,
    Load,
    Move,
    Op,
    Operand,
    Reg,
    Return,
    Store,
    UnOp,
)
from repro.runtime.overhead import OverheadModel
from repro.runtime.stats import RegionStats

#: Plan used for materialization moves the emitter inserts itself.
_MAT_PLAN = InstrPlan(zcp_candidate=False, sr_candidate=False,
                      local_uses=1, remote=False, removable=True)


@dataclass
class BufferedInstr:
    """An emitted instruction awaiting block flush, with DAE bookkeeping."""

    instr: Instr
    expected_uses: int
    remote: bool
    removable: bool
    pinned: bool = False
    dead: bool = False
    #: (register, producing buffer index or None) at emit time, so a
    #: cascade delete can release this instruction's own operands.
    use_producers: tuple[tuple[str, int | None], ...] = ()


class BlockEmitter:
    """Emits one block of specialized code with ZCP/DAE/SR completion."""

    def __init__(self, config: OptConfig, overhead: OverheadModel,
                 stats: RegionStats, charge, faults=None) -> None:
        self.config = config
        self.overhead = overhead
        self.stats = stats
        self.charge = charge  # callable(cycles): accumulate DC overhead
        # Armed only when the emit.template fault point is configured, so
        # the hot path pays a single None check otherwise.
        self._faults = faults if faults is not None and \
            faults.enabled("emit.template") else None
        self.items: list[BufferedInstr] = []
        #: register -> producing buffer index (None: constant/zero note).
        self._producer: dict[str, int | None] = {}
        #: register -> ("const", value) | ("copy", Reg)
        self._notes: dict[str, tuple] = {}
        self._mat_counter = 0
        self._residualized: set[str] = set()
        # Hot-path caches (emit_template runs once per emitted template
        # instruction per specialized context).
        self._emit_cost = overhead.emit_instruction
        self._hole_cost = overhead.hole_patch
        self._zcp_enabled = config.zero_copy_propagation

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def emit_template(self, instr: Instr, values: dict[str, object],
                      plan: InstrPlan | None) -> None:
        """Emit one template instruction with its holes filled."""
        if self._faults is not None and \
                self._faults.should_fire("emit.template"):
            raise SpecializationError(
                "injected fault while emitting a template instruction",
                fault_point="emit.template",
            )
        self.charge(self._emit_cost + self._hole_cost * len(values))
        if not values and not (self._zcp_enabled and self._notes):
            # Nothing to substitute: no holes and no applicable notes.
            substituted = instr
        else:
            substituted = self._substitute(instr, values)
        if isinstance(substituted, BinOp) and plan is not None:
            if self._try_fold_or_reduce(substituted, plan):
                return
        self._emit_final(substituted, plan)

    def flush(self, terminator: Instr) -> list[Instr]:
        """Return the finished block body plus ``terminator``."""
        body = [item.instr for item in self.items if not item.dead]
        body.append(terminator)
        return body

    @property
    def live_count(self) -> int:
        return sum(1 for item in self.items if not item.dead)

    # ------------------------------------------------------------------
    # Substitution: holes and note propagation
    # ------------------------------------------------------------------

    def _resolve_operand(self, operand: Operand,
                         values: dict[str, object]) -> Operand:
        if isinstance(operand, Reg):
            name = operand.name
            if name in values:
                return Imm(values[name])
            if self._zcp_enabled:
                note = self._notes.get(name)
                if note is not None:
                    if note[0] == "const":
                        return Imm(note[1])
                    return note[1]  # ("copy", Reg)
        return operand

    def _substitute(self, instr: Instr, values: dict[str, object]) -> Instr:
        # Operands resolve to themselves in the common case; returning
        # the original (immutable) instruction then skips a dataclass
        # construction on the dynamic-compilation hot path.
        resolve = self._resolve_operand
        if isinstance(instr, BinOp):
            lhs = resolve(instr.lhs, values)
            rhs = resolve(instr.rhs, values)
            if lhs is instr.lhs and rhs is instr.rhs:
                return instr
            return BinOp(instr.dest, instr.op, lhs, rhs)
        if isinstance(instr, Move):
            src = resolve(instr.src, values)
            if src is instr.src:
                return instr
            return Move(instr.dest, src)
        if isinstance(instr, Load):
            addr = resolve(instr.addr, values)
            if addr is instr.addr:
                return instr
            return Load(instr.dest, addr, static=instr.static)
        if isinstance(instr, Store):
            addr = resolve(instr.addr, values)
            value = resolve(instr.value, values)
            if addr is instr.addr and value is instr.value:
                return instr
            return Store(addr, value)
        if isinstance(instr, UnOp):
            src = resolve(instr.src, values)
            if src is instr.src:
                return instr
            return UnOp(instr.dest, instr.op, src)
        if isinstance(instr, Call):
            args = tuple(resolve(a, values) for a in instr.args)
            if all(a is b for a, b in zip(args, instr.args)):
                return instr
            return Call(instr.dest, instr.callee, args,
                        static=instr.static)
        if isinstance(instr, Branch):
            cond = resolve(instr.cond, values)
            if cond is instr.cond:
                return instr
            return Branch(cond, instr.if_true, instr.if_false)
        if isinstance(instr, Return):
            if instr.value is None:
                return instr
            value = resolve(instr.value, values)
            if value is instr.value:
                return instr
            return Return(value)
        return instr

    # ------------------------------------------------------------------
    # ZCP + SR decision
    # ------------------------------------------------------------------

    def _try_fold_or_reduce(self, instr: BinOp, plan: InstrPlan) -> bool:
        """Apply value-dependent folding; True when fully handled."""
        lhs, rhs = instr.lhs, instr.rhs

        # Fully constant (can happen after note propagation): fold.
        if isinstance(lhs, Imm) and isinstance(rhs, Imm):
            if self.config.zero_copy_propagation:
                self.charge(self.overhead.zcp_check)
                try:
                    value = eval_binop(instr.op, lhs.value, rhs.value)
                except TrapError:
                    self._emit_final(instr, plan)
                    return True
                self._handle_const(instr.dest, value, plan, dying=())
                return True
            return False

        imm, reg, imm_is_rhs = self._split_operands(lhs, rhs)
        if imm is None:
            return False

        # --- dynamic zero & copy propagation -------------------------
        if plan.zcp_candidate and self.config.zero_copy_propagation:
            self.charge(self.overhead.zcp_check)
            value = imm.value
            if instr.op is Op.MUL and value == 0:
                zero = value * 0  # preserves int/float flavour of operand
                self._handle_const(instr.dest, zero, plan,
                                   dying=(reg.name,))
                return True
            if instr.op is Op.MUL and value == 1:
                self._handle_copy(instr.dest, reg, plan)
                return True
            if instr.op is Op.ADD and value == 0:
                self._handle_copy(instr.dest, reg, plan)
                return True
            if (instr.op is Op.SUB and imm_is_rhs and value == 0):
                self._handle_copy(instr.dest, reg, plan)
                return True
            if (instr.op is Op.DIV and imm_is_rhs and value == 1):
                self._handle_copy(instr.dest, reg, plan)
                return True
            if instr.op in (Op.OR, Op.XOR) and value == 0:
                self._handle_copy(instr.dest, reg, plan)
                return True
            if instr.op is Op.AND and value == 0:
                self._handle_const(instr.dest, 0, plan,
                                   dying=(reg.name,))
                return True
            if (instr.op in (Op.SHL, Op.SHR) and imm_is_rhs
                    and value == 0):
                self._handle_copy(instr.dest, reg, plan)
                return True

        # --- dynamic strength reduction -------------------------------
        if plan.sr_candidate and self.config.strength_reduction \
                and isinstance(imm.value, float):
            # FP divide by a run-time constant becomes a multiply by its
            # reciprocal (§2.2.7 covers divides with one static operand;
            # fp_div is 6x an fp_mul on the 21164).
            self.charge(self.overhead.sr_check)
            if instr.op is Op.DIV and imm_is_rhs and imm.value != 0.0:
                self._emit_final(
                    BinOp(instr.dest, Op.MUL, reg,
                          Imm(1.0 / imm.value)), plan
                )
                self.stats.sr_applied += 1
                return True
        if plan.sr_candidate and self.config.strength_reduction \
                and isinstance(imm.value, int):
            self.charge(self.overhead.sr_check)
            value = imm.value
            if instr.op is Op.MUL:
                if value == 0:
                    self._emit_final(Move(instr.dest, Imm(0)), plan)
                    self.stats.sr_applied += 1
                    self._dec_use(reg.name)
                    return True
                if value == 1:
                    self._emit_final(Move(instr.dest, reg), plan)
                    self.stats.sr_applied += 1
                    return True
                if is_power_of_two(value):
                    self._emit_final(
                        BinOp(instr.dest, Op.SHL, reg,
                              Imm(log2_exact(value))), plan
                    )
                    self.stats.sr_applied += 1
                    return True
                if 0 < value <= IMMEDIATE_LIMIT:
                    decomposition = two_term_decomposition(value)
                    if decomposition is not None:
                        self._emit_two_term(instr.dest, reg,
                                            decomposition, plan)
                        self.stats.sr_applied += 1
                        return True
            if instr.op is Op.DIV and imm_is_rhs:
                if value == 1:
                    self._emit_final(Move(instr.dest, reg), plan)
                    self.stats.sr_applied += 1
                    return True
                if is_power_of_two(value):
                    self._emit_final(
                        BinOp(instr.dest, Op.SHR, reg,
                              Imm(log2_exact(value))), plan
                    )
                    self.stats.sr_applied += 1
                    return True
            if instr.op is Op.MOD and imm_is_rhs \
                    and is_power_of_two(value):
                self._emit_final(
                    BinOp(instr.dest, Op.AND, reg, Imm(value - 1)),
                    plan,
                )
                self.stats.sr_applied += 1
                return True

        return False

    def _emit_two_term(self, dest: str, reg: Reg,
                       decomposition: tuple[int, str, int],
                       plan: InstrPlan) -> None:
        """Emit ``dest = reg * (2^a ± 2^b)`` as shifts plus add/sub."""
        a, op, b = decomposition
        self._mat_counter += 1
        temp = f"%sr{self._mat_counter}"
        part_plan = InstrPlan(False, False, 1, False, True)
        self.charge(self.overhead.emit_instruction)
        self._append(BinOp(temp, Op.SHL, reg, Imm(a)), part_plan)
        if b == 0:
            second: Operand = reg
        else:
            self._mat_counter += 1
            second_name = f"%sr{self._mat_counter}"
            self.charge(self.overhead.emit_instruction)
            self._append(BinOp(second_name, Op.SHL, reg, Imm(b)),
                         part_plan)
            second = Reg(second_name)
        self._append(BinOp(
            dest, Op.ADD if op == "add" else Op.SUB, Reg(temp), second
        ), plan)

    @staticmethod
    def _split_operands(lhs: Operand, rhs: Operand):
        """Return (imm, reg, imm_is_rhs) for a one-constant BinOp."""
        if isinstance(lhs, Imm) and isinstance(rhs, Reg):
            return lhs, rhs, False
        if isinstance(rhs, Imm) and isinstance(lhs, Reg):
            return rhs, lhs, True
        return None, None, False

    # ------------------------------------------------------------------
    # ZCP note handling + DAE
    # ------------------------------------------------------------------

    def _can_elide(self, plan: InstrPlan | None) -> bool:
        return (
            plan is not None
            and self.config.dead_assignment_elimination
            and plan.removable
            and not plan.remote
        )

    def _handle_const(self, dest: str, value, plan: InstrPlan,
                      dying: tuple[str, ...]) -> None:
        """The instruction's result is the constant ``value``."""
        for name in dying:
            self._dec_use(name)
        if value == 0:
            self.stats.zcp_zero_hits += 1
        else:
            self.stats.zcp_copy_hits += 1
        if self._can_elide(plan):
            self.charge(self.overhead.dae_update)
            self._kill_notes_for(dest)
            self._notes[dest] = ("const", value)
            self._producer[dest] = None
            return
        # Must materialize the constant (result is needed beyond this
        # block, or DAE is off) — but still note it for local propagation.
        self._emit_final(Move(dest, Imm(value)), plan)
        self._notes[dest] = ("const", value)

    def _handle_copy(self, dest: str, src: Reg, plan: InstrPlan) -> None:
        """The instruction's result is a copy of ``src``."""
        self.stats.zcp_copy_hits += 1
        if src.name == dest:
            # e.g. ``s = s + 0.0``: a self-move.  Removing it is sound
            # regardless of liveness, but removal is DAE's job — with DAE
            # disabled the move is emitted (and costs a full FP-move).
            if self.config.dead_assignment_elimination:
                self.stats.dae_removed += 1
                self.charge(self.overhead.dae_update)
                return
            self._emit_final(Move(dest, src), plan)
            return
        src_index = self._producer.get(src.name)
        if self._can_elide(plan):
            self.charge(self.overhead.dae_update)
            self._kill_notes_for(dest)
            self._notes[dest] = ("copy", src)
            self._producer[dest] = src_index
            if src_index is not None:
                item = self.items[src_index]
                # The eliminated instruction released one use of src but
                # dest's future local uses now land on src directly.
                item.expected_uses += plan.local_uses - 1
                self._maybe_kill(src_index)
            return
        self._emit_final(Move(dest, src), plan)
        self._notes[dest] = ("copy", src)
        if src_index is not None:
            # Downstream copy-propagated uses of dest will reference src
            # beyond its planned count: keep src's producer alive.
            self.items[src_index].pinned = True

    def _dec_use(self, name: str) -> None:
        index = self._producer.get(name)
        if index is None:
            return
        item = self.items[index]
        if item.dead:
            return
        item.expected_uses -= 1
        self._maybe_kill(index)

    def _maybe_kill(self, index: int) -> None:
        if not self.config.dead_assignment_elimination:
            return
        item = self.items[index]
        if (item.dead or item.pinned or item.remote
                or not item.removable or item.expected_uses > 0):
            return
        item.dead = True
        self.stats.dae_removed += 1
        self.charge(self.overhead.dae_update)
        for name, producer_index in item.use_producers:
            if producer_index is None:
                continue
            inner = self.items[producer_index]
            if inner.dead:
                continue
            inner.expected_uses -= 1
            self._maybe_kill(producer_index)

    def _kill_notes_for(self, dest: str) -> None:
        """A new definition of ``dest`` invalidates notes involving it."""
        self._notes.pop(dest, None)
        for name in [
            n for n, note in self._notes.items()
            if note[0] == "copy" and note[1].name == dest
        ]:
            del self._notes[name]

    # ------------------------------------------------------------------
    # Final emission (immediate fitting + buffer append)
    # ------------------------------------------------------------------

    def _materialize(self, operand: Operand) -> Operand:
        """Ensure ``operand`` can be encoded; emit a constant move if not."""
        if not isinstance(operand, Imm) or fits_immediate(operand.value):
            return operand
        self._mat_counter += 1
        temp = f"%mat{self._mat_counter}"
        self.charge(self.overhead.emit_instruction)
        self._append(Move(temp, operand), _MAT_PLAN)
        return Reg(temp)

    def _emit_final(self, instr: Instr, plan: InstrPlan | None) -> None:
        instr = self._fit_immediates(instr)
        self._append(instr, plan)

    def _fit_immediates(self, instr: Instr) -> Instr:
        # As in _substitute, operands that already fit come back by
        # identity, so the original instruction is reused unchanged.
        mat = self._materialize
        if isinstance(instr, Move):
            # A constant move *is* the materialization.
            return instr
        if isinstance(instr, BinOp):
            lhs = mat(instr.lhs)
            rhs = mat(instr.rhs)
            if lhs is instr.lhs and rhs is instr.rhs:
                return instr
            return BinOp(instr.dest, instr.op, lhs, rhs)
        if isinstance(instr, UnOp):
            src = mat(instr.src)
            if src is instr.src:
                return instr
            return UnOp(instr.dest, instr.op, src)
        if isinstance(instr, Load):
            addr = mat(instr.addr)
            if addr is instr.addr:
                return instr
            return Load(instr.dest, addr, static=instr.static)
        if isinstance(instr, Store):
            addr = mat(instr.addr)
            value = mat(instr.value)
            if addr is instr.addr and value is instr.value:
                return instr
            return Store(addr, value)
        if isinstance(instr, Call):
            args = tuple(mat(a) for a in instr.args)
            if all(a is b for a, b in zip(args, instr.args)):
                return instr
            return Call(instr.dest, instr.callee, args,
                        static=instr.static)
        if isinstance(instr, Branch):
            cond = mat(instr.cond)
            if cond is instr.cond:
                return instr
            return Branch(cond, instr.if_true, instr.if_false)
        return instr

    def _append(self, instr: Instr, plan: InstrPlan | None) -> None:
        producer = self._producer
        use_producers = tuple(
            (name, producer.get(name)) for name in instr.uses()
        )
        if plan is None:
            expected, remote, removable = 0, True, False
        else:
            expected = plan.local_uses
            remote = plan.remote
            removable = plan.removable
        item = BufferedInstr(
            instr=instr,
            expected_uses=expected,
            remote=remote,
            removable=removable,
            use_producers=use_producers,
        )
        self.items.append(item)
        index = len(self.items) - 1
        for dest in instr.defs():
            if self._notes:
                self._kill_notes_for(dest)
            producer[dest] = index

    def emit_raw(self, instr: Instr) -> None:
        """Emit one instruction verbatim (plus immediate fitting).

        Used by dynamic residualization (budget truncation): template
        instructions are replayed as ordinary dynamic code with no plan,
        so they are never elided and no notes apply.
        """
        self.charge(self.overhead.emit_instruction)
        self._emit_final(instr, None)

    def emit_residual(self, name: str, value) -> None:
        """Materialize a static variable's value as it becomes dynamic.

        Idempotent per block (a two-armed branch may request the same
        residual for both successors).
        """
        if name in self._residualized:
            return
        self._residualized.add(name)
        self.charge(self.overhead.emit_instruction)
        self._append(Move(name, Imm(value)), None)

    # ------------------------------------------------------------------
    # Terminator support (used by the specializer)
    # ------------------------------------------------------------------

    def prepare_terminator_operand(self, operand: Operand,
                                   values: dict[str, object]) -> Operand:
        """Resolve and materialize a terminator operand (branch cond,
        return value)."""
        resolved = self._resolve_operand(operand, values)
        if isinstance(resolved, Imm) and isinstance(resolved.value, float):
            return self._materialize(resolved)
        return resolved
