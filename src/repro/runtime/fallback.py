"""Unspecialized execution paths for the graceful-degradation ladder.

Two builders live here, both deriving ordinary dynamic code from a
region's *template* (the pre-rewrite snapshot of the host CFG that
:class:`~repro.bta.facts.RegionInfo` keeps):

:func:`build_fallback_function`
    The bottom rung: a standalone :class:`~repro.ir.function.Function`
    that executes the whole region dynamically, exactly as the statically
    compiled program would, ending in ``ExitRegion`` thunks at the
    region's exit edges.  The region dispatcher runs it when
    specialization failed (or the context is quarantined); no specialized
    state is needed, because the region's entry environment is the host
    environment itself.

:func:`ensure_dynamic_blocks`
    The budget-truncation rung: a fully dynamic copy of every template
    block *inside* an existing :class:`SpecializedCode` buffer.  When a
    specialization batch overruns its context budget mid-unrolling, each
    unfinished context is replaced by a truncation block that residualizes
    its static store and jumps into these blocks — converting the runaway
    unrolling into an ordinary dynamic loop while keeping every context
    already specialized.

Annotation markers (``MakeStatic``/``MakeDynamic``) are stripped: they
are free no-ops at execution time, but the fallback should look like the
statically compiled code, which never carries them.

A parallel, orthogonal ladder exists at the *backend* level (see
:data:`BACKEND_LADDER`): which execution engine runs the code, as
opposed to which code runs.  Both ladders compose — a workload can
degrade from the pycodegen backend to the threaded backend on an
injected compile fault while, independently, a region degrades from
specialized code to this module's unspecialized fallback.
"""

from __future__ import annotations

#: Backend degradation ladder, fastest rung first.  The pycodegen
#: backend (:mod:`repro.machine.pycodegen`) degrades to the threaded
#: backend on a :class:`~repro.machine.pycodegen.CompileFault`
#: (injected ``pycodegen.compile`` faults, oversize generated sources),
#: and the threaded backend (:mod:`repro.machine.threaded`) degrades to
#: the reference interpreter on a
#: :class:`~repro.machine.threaded.TranslationFault` (injected
#: ``threaded.translate`` faults).  Mid-region failures skip straight
#: to the reference interpreter, the only rung resumable at an
#: arbitrary label from outside.  Every rung is cycle-identical in
#: counted mode, so degradation is invisible in the stats except for
#: the ``degraded_compilations`` / ``degraded_translations`` counters.
BACKEND_LADDER = ("pycodegen", "threaded", "reference")

from repro.errors import SpecializationError
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    Branch,
    ExitRegion,
    Jump,
    MakeDynamic,
    MakeStatic,
    Return,
)


def _body_instrs(block) -> list:
    """A template block's non-terminator instructions, annotations gone."""
    return [
        instr for instr in block.instrs[:-1]
        if not isinstance(instr, (MakeStatic, MakeDynamic))
    ]


def build_fallback_function(region) -> Function:
    """Build the unspecialized dynamic execution of ``region``.

    The returned function shares the template's block labels (entry
    included) and rewrites every region-exit edge into an ``ExitRegion``
    terminator/thunk, so :meth:`Machine.exec_region_code` can run it in
    the host environment exactly like specialized code.
    """
    template = region.template
    if template is None:
        raise SpecializationError(
            f"region {region.region_id} has no template snapshot",
            region_id=region.region_id,
        )
    exit_index = {label: i for i, label in enumerate(region.exits)}
    fn = Function(name=f"region{region.region_id}$fallback", params=())
    fn.entry = region.entry_block

    def exit_thunk(index: int) -> str:
        label = f"$exit{index}"
        if label not in fn.blocks:
            fn.blocks[label] = BasicBlock(label, [ExitRegion(index)])
        return label

    for label in sorted(region.blocks):
        block = template.blocks[label]
        instrs = _body_instrs(block)
        term = block.instrs[-1]
        if isinstance(term, Jump):
            if term.target in exit_index:
                instrs.append(ExitRegion(exit_index[term.target]))
            else:
                instrs.append(term)
        elif isinstance(term, Branch):
            if_true = term.if_true
            if_false = term.if_false
            if if_true in exit_index:
                if_true = exit_thunk(exit_index[if_true])
            if if_false in exit_index:
                if_false = exit_thunk(exit_index[if_false])
            if (if_true, if_false) == (term.if_true, term.if_false):
                instrs.append(term)
            else:
                instrs.append(Branch(term.cond, if_true, if_false))
        elif isinstance(term, Return):
            instrs.append(term)
        else:
            raise SpecializationError(
                f"region {region.region_id}: template block {label!r} "
                f"ends in unexpected {type(term).__name__}",
                region_id=region.region_id,
            )
        fn.blocks[label] = BasicBlock(label, instrs)
    return fn


def ensure_dynamic_blocks(code, genext, charge,
                          emit_cost: float) -> dict[str, str]:
    """Materialize dynamic copies of the template blocks inside ``code``.

    Returns a mapping from template label to the emitted dynamic label,
    building (and charging ``emit_cost`` per instruction) on first use;
    later truncations in the same code buffer reuse them.  The new
    labels are protected from jump threading — truncation blocks built
    in later batches jump into them by name.
    """
    if code.dynamic_labels:
        return code.dynamic_labels
    region = genext.region
    template = region.template
    exit_index = {label: i for i, label in enumerate(region.exits)}
    mapping = {
        label: code.fresh_label(f"dyn_{label}")
        for label in sorted(region.blocks)
    }
    for label in sorted(region.blocks):
        block = template.blocks[label]
        instrs = _body_instrs(block)
        term = block.instrs[-1]
        if isinstance(term, Jump):
            if term.target in exit_index:
                instrs.append(ExitRegion(exit_index[term.target]))
            else:
                instrs.append(Jump(mapping[term.target]))
        elif isinstance(term, Branch):
            instrs.append(Branch(
                term.cond,
                dynamic_arm(code, term.if_true, mapping, exit_index,
                            charge, emit_cost),
                dynamic_arm(code, term.if_false, mapping, exit_index,
                            charge, emit_cost),
            ))
        elif isinstance(term, Return):
            instrs.append(term)
        else:
            raise SpecializationError(
                f"region {region.region_id}: template block {label!r} "
                f"ends in unexpected {type(term).__name__}",
                region_id=region.region_id,
            )
        emitted = mapping[label]
        code.function.blocks[emitted] = BasicBlock(emitted, instrs)
        charge(emit_cost * len(instrs))
    code.protected_labels.update(mapping.values())
    code.dynamic_labels = mapping
    return mapping


def dynamic_arm(code, target: str, mapping: dict[str, str],
                exit_index: dict[str, int], charge,
                emit_cost: float) -> str:
    """Branch-arm label inside the dynamic copy (exit thunks shared)."""
    if target in exit_index:
        index = exit_index[target]
        if index not in code.exit_blocks:
            label = code.fresh_label(f"exit{index}")
            code.function.blocks[label] = BasicBlock(
                label, [ExitRegion(index)]
            )
            code.exit_blocks[index] = label
            code.protected_labels.add(label)
            charge(emit_cost)
        return code.exit_blocks[index]
    return mapping[target]
