"""Cycle costs of dynamic compilation itself (§4.2's overhead sources).

The paper lists the main contributors to dynamic-compilation overhead:
"cache lookups, memory allocation, handling of dynamic branches, checks
for dynamic zero and copy propagation, dead-assignment elimination, and
strength reduction, operations to ensure instruction-cache coherence,
instruction construction and emission, branch patching, hole patching,
and the static computations."  Every one of those has a knob here; the
specializer charges them as it works, and the total lands in the
machine's ``dc_cycles`` account, from which Table 3's
cycles-per-generated-instruction and break-even points are computed.

Dispatch costs (§4.4.3): an unchecked dispatch is "a load and an indirect
jump … about 10 cycles"; the general hash-table dispatch averages ~90
cycles (rising to ~150 under collisions, as in mipsi), modelled as a base
cost plus a per-probe charge.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OverheadModel:
    """Cycle charges for dynamic-compilation work."""

    # --- dispatching (recurring; charged to execution time) -----------
    dispatch_unchecked: float = 10.0
    dispatch_indexed: float = 14.0     # bounds-masked index + load + cmp
    dispatch_hash_base: float = 60.0
    dispatch_hash_per_probe: float = 15.0

    # --- one-time specialization costs (charged to dc_cycles) ---------
    region_setup: float = 450.0        # invoke the dynamic compiler,
                                       # allocate the code buffer
    block_alloc: float = 25.0          # memory allocation per emitted block
    emit_instruction: float = 14.0     # instruction construction+emission
    hole_patch: float = 4.0            # fill one hole operand
    branch_patch: float = 16.0         # resolve one pending branch target
    eval_overhead: float = 2.0         # driving one set-up action (the
                                       # static computation's own cost is
                                       # charged at machine rates on top)
    zcp_check: float = 6.0             # §2.2.7 special-value check
    dae_update: float = 8.0            # note-table/dead-list maintenance
    sr_check: float = 4.0
    static_branch_fold: float = 2.0
    cache_store: float = 45.0          # install into the code cache
    icache_flush_base: float = 80.0    # instruction-cache coherence
    icache_flush_per_instr: float = 0.4
    promote_setup: float = 160.0       # lazy continuation specialization

    def dispatch_cost(self, policy: str, probes: int = 1) -> float:
        """Cycles for one dispatch under ``policy``."""
        if policy == "cache_one_unchecked":
            return self.dispatch_unchecked
        if policy == "cache_indexed":
            return self.dispatch_indexed
        return self.dispatch_hash_base + self.dispatch_hash_per_probe * probes


DEFAULT_OVERHEAD = OverheadModel()
