"""Persistent cross-process specialization cache and warm-start snapshots.

Every process so far respecialized from scratch: each eval-harness run,
each ``--jobs`` pool worker, and each serve-daemon restart paid the full
dynamic-compilation bill for regions that an earlier process had already
specialized.  This module adds a disk-backed, content-addressed store of
specialized artifacts:

``entry``
    A whole :class:`~repro.runtime.specializer.SpecializedCode` produced
    by one entry-cache miss, together with the batch's side effects
    (pending lazy promotions, statistics deltas, dc-cycle charges) so a
    warm process replays the *exact* observable state of the cold one.
``cont``
    One lazily specialized promotion continuation: the blocks appended to
    the (mutated-in-place) code version plus the same side-effect record.
``pycodegen``
    The Python source + namespace metadata emitted by the codegen
    backend for one function version, so a warm process skips emission
    and (when the interpreter magic matches) bytecode compilation.
``fusion``
    Threaded-backend superinstruction decisions: "this function version
    got hot enough to fuse", letting a warm process fuse eagerly instead
    of re-measuring heat.

Keys are content hashes derived the way :mod:`repro.evalharness.memo`
keys runs — run context (workload content + resolved config/env knobs)
plus artifact-local identity plus a per-run sequence number — so a store
entry can only ever be replayed into a byte-identical run prefix, and
any divergence degrades to a cold miss.

Integrity reuses the PR 3 machinery: every record carries a sha256 over
its payload (plus schema and key echo), the in-process front cache is a
checksummed :class:`~repro.runtime.cache.CodeCache`, and a corrupt or
schema-mismatched record is **deleted and treated as a miss, never
executed**.  Writes are crash-consistent (``mkstemp`` + payload fsync +
``os.replace`` + directory fsync — see :func:`atomic_install`) so the
``--jobs`` pool can share one store, a racing daemon can be SIGKILLed
mid-``store``, and the survivor always reads whole records: racers
simply last-write-win a byte-identical record and a killed writer
leaves at worst an ignorable ``.tmp`` file.  Three fault points —
``persist.load``, ``persist.store``, and ``persist.fsync`` — inject
load-side corruption drops, lost writes, and failed fsync barriers
deterministically.

A *snapshot* is a single-file capture of a warmed store
(``python -m repro.workloads snapshot save/load``) used by CI and by the
serve daemon's ``--snapshot`` flag to start with zero specialization
overhead.  See ``DESIGN.md`` §11.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
import threading
import time
from dataclasses import dataclass

from repro.faults import FaultRegistry, parse_spec, resolve_fault_spec
from repro.runtime.cache import CodeCache, entry_checksum
from repro.runtime.specializer import PendingPromotion, SpecializedCode
from repro.runtime.stats import RegionStats

#: Bumped whenever the record layout or replay semantics change; a store
#: written by any other schema is read as all-misses (and memo keys it).
PERSIST_SCHEMA = 1

ENV_PERSIST_DIR = "REPRO_PERSIST_DIR"
DEFAULT_PERSIST_DIR = ".repro_persist"

#: Artifact kinds the store accepts (also the filename prefix).
KINDS = ("entry", "cont", "pycodegen", "fusion")

#: Live-entry bound of the in-process front cache over decoded records.
_FRONT_CAPACITY = 256

#: The only fault points that may be armed while run-level artifacts
#: (entry/cont) are persisted: they exercise the store itself without
#: perturbing the specializer, so replay stays deterministic.
_PERSIST_POINTS = ("persist.load", "persist.store", "persist.fsync")

#: Scalar RegionStats counters, snapshot/restored absolutely on replay
#: (dict-shaped fields are handled separately — see _BatchCapture).
_NUMERIC_FIELDS = tuple(
    f.name for f in dataclasses.fields(RegionStats)
    if f.type in ("int", "float")
)


def digest(*parts) -> str:
    """Content hash of a heterogeneous key: sha256 over reprs.

    ``repr`` of the ints/floats/strings/tuples fed here is deterministic
    across processes (no id()-bearing objects are ever part of a key).
    """
    h = hashlib.sha256()
    for part in parts:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


def function_text(fn) -> str:
    """Stable textual identity of a function's code (blocks + instrs)."""
    return repr((
        fn.name, fn.entry, fn.version,
        [(label, block.instrs) for label, block in fn.blocks.items()],
    ))


def numeric_snapshot(stats: RegionStats) -> tuple:
    return tuple(getattr(stats, name) for name in _NUMERIC_FIELDS)


class _FrontEntry:
    """Decoded-record wrapper stored in the checksummed front cache."""

    __slots__ = ("kind", "digest", "payload")

    def __init__(self, kind: str, digest_: str, payload: bytes) -> None:
        self.kind = kind
        self.digest = digest_
        self.payload = payload

    def cache_identity(self) -> tuple:
        return (self.kind, self.digest, len(self.payload))


def _fsync_directory(directory: str) -> None:
    """Flush the directory entry of a just-renamed record (best effort:
    a filesystem that cannot fsync directories still gets the rename)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class _FsyncFault(OSError):
    """Injected ``persist.fsync`` failure (drops the write)."""


def atomic_install(directory: str, final_path: str, raw: bytes,
                   prefix: str, faults=None) -> bool:
    """Crash-consistent write: tmp file + fsync + rename + dir fsync.

    The durability contract the chaos harness kills writers against:
    a reader (even one opening the directory cold after a SIGKILL
    mid-write) sees either the complete old record, the complete new
    record, or no record — never a torn one.  The payload is fsynced
    *before* the rename so a crash between rename and data reaching
    disk cannot publish a name pointing at garbage, and the directory
    is fsynced after so the rename itself is durable.  A failed (or
    ``persist.fsync``-injected) fsync drops the whole write: the tmp
    file is unlinked and the caller reports a store skip.
    """
    try:
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(prefix=prefix, suffix=".tmp",
                                        dir=directory)
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(raw)
                handle.flush()
                if faults is not None \
                        and faults.enabled("persist.fsync") \
                        and faults.should_fire("persist.fsync"):
                    raise _FsyncFault("injected fsync failure")
                os.fsync(handle.fileno())
            os.replace(tmp_path, final_path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
    except OSError:
        return False
    _fsync_directory(directory)
    return True


def verify_store(directory: str) -> dict:
    """Read-only integrity scan of a store directory.

    Decodes and checksums every ``.rec`` file the way a cold reader
    would; the chaos harness calls this after every injected crash to
    prove no torn or corrupt record survived a kill.  Leftover ``.tmp``
    files are reported but are *not* a violation — an interrupted
    writer may leave one behind; readers never open them.
    """
    counts = {"records": 0, "ok": 0, "corrupt": 0,
              "schema": 0, "tmp_files": 0}
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return counts
    for name in names:
        if name.endswith(".tmp"):
            counts["tmp_files"] += 1
            continue
        if not name.endswith(".rec"):
            continue
        counts["records"] += 1
        kind, _, rest = name.partition("-")
        digest_ = rest[:-len(".rec")]
        try:
            with open(os.path.join(directory, name), "rb") as handle:
                raw = handle.read()
        except OSError:
            counts["corrupt"] += 1
            continue
        status, _record = _check_record(raw, kind or None,
                                        digest_ or None)
        if status == "ok":
            counts["ok"] += 1
        elif status == "schema":
            counts["schema"] += 1
        else:
            counts["corrupt"] += 1
    return counts


def _check_record(raw: bytes, kind: str | None = None,
                  digest_: str | None = None):
    """Decode + verify one record file; ("ok"|"corrupt"|"schema", dict)."""
    try:
        record = pickle.loads(raw)
    except Exception:
        return ("corrupt", None)
    if not isinstance(record, dict):
        return ("corrupt", None)
    if record.get("schema") != PERSIST_SCHEMA:
        return ("schema", None)
    rkind = record.get("kind")
    if rkind not in KINDS or (kind is not None and rkind != kind):
        return ("corrupt", None)
    if digest_ is not None and record.get("digest") != digest_:
        return ("corrupt", None)
    payload = record.get("payload")
    if not isinstance(payload, bytes):
        return ("corrupt", None)
    if hashlib.sha256(payload).hexdigest() != record.get("sha256"):
        return ("corrupt", None)
    return ("ok", record)


class PersistStore:
    """A disk directory of content-addressed specialization records.

    One file per record (``{kind}-{digest}.rec``), each a pickled
    envelope carrying schema, kind, digest echo, payload bytes, and a
    sha256 over the payload.  All reads verify the full envelope; any
    failure unlinks the file, bumps a counter, and reports a miss.
    Writes go through ``mkstemp`` + ``os.replace`` so concurrent writers
    (pool workers, a racing daemon) can never expose a torn record.

    The store object itself is thread-safe: the front cache is a locked
    :class:`CodeCache` and counters are guarded by a mutex, so the serve
    daemon's worker threads may share one instance.
    """

    def __init__(self, directory: str) -> None:
        self.directory = os.path.abspath(directory)
        self._front = CodeCache(capacity=_FRONT_CAPACITY,
                                checksum=entry_checksum, lock=True)
        self._lock = threading.Lock()
        #: Default registry for callers without a run-scoped one (the
        #: snapshot CLI, serve-level warm loads).
        self.faults = FaultRegistry.from_spec(
            os.environ.get("REPRO_FAULTS")
        )
        self.hits = 0
        self.front_hits = 0
        self.misses = 0
        self.stores = 0
        self.store_skips = 0
        self.corrupt_dropped = 0
        self.schema_dropped = 0
        self.stale_drops = 0
        self.replayed_entries = 0
        self.replayed_continuations = 0
        self.load_seconds = 0.0
        self.store_seconds = 0.0
        #: kind -> wall-seconds of *cold* artifact generation measured
        #: around the wrapped producer (the warm-start overhead metric).
        self.work_seconds: dict[str, float] = {}

    # -- accounting ----------------------------------------------------

    def _bump(self, name: str, n: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + n)

    def record_work(self, kind: str, seconds: float) -> None:
        with self._lock:
            self.work_seconds[kind] = \
                self.work_seconds.get(kind, 0.0) + seconds

    def stats(self) -> dict:
        with self._lock:
            return {
                "directory": self.directory,
                "schema": PERSIST_SCHEMA,
                "hits": self.hits,
                "front_hits": self.front_hits,
                "misses": self.misses,
                "stores": self.stores,
                "store_skips": self.store_skips,
                "corrupt_dropped": self.corrupt_dropped,
                "schema_dropped": self.schema_dropped,
                "stale_drops": self.stale_drops,
                "replayed_entries": self.replayed_entries,
                "replayed_continuations": self.replayed_continuations,
                "load_seconds": self.load_seconds,
                "store_seconds": self.store_seconds,
                "work_seconds": dict(self.work_seconds),
            }

    # -- paths ---------------------------------------------------------

    def _path(self, kind: str, digest_: str) -> str:
        return os.path.join(self.directory, f"{kind}-{digest_}.rec")

    def _drop(self, kind: str, digest_: str) -> None:
        """Forget a record everywhere (front cache + disk)."""
        self._front.delete((kind, digest_))
        try:
            os.unlink(self._path(kind, digest_))
        except OSError:
            pass

    # -- the store API -------------------------------------------------

    def get(self, kind: str, digest_: str, faults=None):
        """Fetch and decode one artifact; ``None`` on any kind of miss.

        The decoded payload is unpickled *fresh on every call* — even on
        a front-cache hit — because replayed artifacts (SpecializedCode)
        are mutated in place by the run that receives them and must
        never be shared between runs.
        """
        registry = faults if faults is not None else self.faults
        if registry.enabled("persist.load") \
                and registry.should_fire("persist.load"):
            # Injected load-side corruption: the record (if any) is
            # treated exactly like a checksum mismatch.
            self._drop(kind, digest_)
            self._bump("corrupt_dropped")
            self._bump("misses")
            return None
        began = time.perf_counter()
        found = self._front.lookup((kind, digest_))
        if found.hit:
            try:
                obj = pickle.loads(found.value.payload)
            except Exception:
                self._drop(kind, digest_)
                self._bump("corrupt_dropped")
                self._bump("misses")
                return None
            self._bump("front_hits")
            self._bump("hits")
            with self._lock:
                self.load_seconds += time.perf_counter() - began
            return obj
        try:
            with open(self._path(kind, digest_), "rb") as handle:
                raw = handle.read()
        except OSError:
            self._bump("misses")
            return None
        status, record = _check_record(raw, kind, digest_)
        if status != "ok":
            self._drop(kind, digest_)
            self._bump("schema_dropped" if status == "schema"
                       else "corrupt_dropped")
            self._bump("misses")
            return None
        try:
            obj = pickle.loads(record["payload"])
        except Exception:
            self._drop(kind, digest_)
            self._bump("corrupt_dropped")
            self._bump("misses")
            return None
        self._front.insert((kind, digest_),
                           _FrontEntry(kind, digest_, record["payload"]))
        self._bump("hits")
        with self._lock:
            self.load_seconds += time.perf_counter() - began
        return obj

    def put(self, kind: str, digest_: str, obj, faults=None) -> bool:
        """Persist one artifact; returns whether it reached disk."""
        registry = faults if faults is not None else self.faults
        if registry.enabled("persist.store") \
                and registry.should_fire("persist.store"):
            self._bump("store_skips")
            return False
        began = time.perf_counter()
        try:
            payload = pickle.dumps(obj)
        except Exception:
            self._bump("store_skips")
            return False
        record = {
            "schema": PERSIST_SCHEMA,
            "kind": kind,
            "digest": digest_,
            "payload": payload,
            "sha256": hashlib.sha256(payload).hexdigest(),
        }
        raw = pickle.dumps(record)
        if not atomic_install(self.directory,
                              self._path(kind, digest_), raw,
                              prefix=f".{kind}-", faults=registry):
            self._bump("store_skips")
            return False
        self._front.insert((kind, digest_),
                           _FrontEntry(kind, digest_, payload))
        self._bump("stores")
        with self._lock:
            self.store_seconds += time.perf_counter() - began
        return True


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------

@dataclass
class SnapshotResult:
    """Outcome of a snapshot save/load."""

    ok: bool
    loaded: int = 0
    skipped: int = 0
    error: str | None = None


def _files_digest(files: dict[str, bytes]) -> str:
    h = hashlib.sha256()
    for name in sorted(files):
        h.update(name.encode("utf-8"))
        h.update(b"\x00")
        h.update(files[name])
        h.update(b"\x00")
    return h.hexdigest()


def save_snapshot(store_dir: str, path: str) -> SnapshotResult:
    """Capture every record in ``store_dir`` into one snapshot file."""
    files: dict[str, bytes] = {}
    try:
        names = sorted(os.listdir(store_dir))
    except OSError:
        names = []
    count = 0
    for name in names:
        if not name.endswith(".rec"):
            continue
        try:
            with open(os.path.join(store_dir, name), "rb") as handle:
                files[name] = handle.read()
            count += 1
        except OSError:
            continue
    payload = {
        "schema": PERSIST_SCHEMA,
        "kind": "snapshot",
        "files": files,
        "sha256": _files_digest(files),
    }
    raw = pickle.dumps(payload)
    directory = os.path.dirname(os.path.abspath(path)) or "."
    if not atomic_install(directory, path, raw, prefix=".snapshot-"):
        return SnapshotResult(False, error="snapshot write failed")
    return SnapshotResult(True, loaded=count)


def load_snapshot(path: str, store_dir: str) -> SnapshotResult:
    """Unpack a snapshot into ``store_dir``, dropping invalid records.

    The outer envelope (schema + whole-file digest) must verify or
    nothing is loaded; each inner record is then re-verified
    individually, so a snapshot carrying one corrupt record still warms
    every valid one (``skipped`` counts the drops).
    """
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as exc:
        return SnapshotResult(False, error=f"snapshot unreadable: {exc}")
    try:
        payload = pickle.loads(raw)
    except Exception:
        return SnapshotResult(False, error="snapshot is not a valid "
                                           "pickle envelope")
    if not isinstance(payload, dict) \
            or payload.get("kind") != "snapshot":
        return SnapshotResult(False, error="not a snapshot file")
    if payload.get("schema") != PERSIST_SCHEMA:
        return SnapshotResult(
            False,
            error=f"snapshot schema {payload.get('schema')!r} != "
                  f"{PERSIST_SCHEMA}",
        )
    files = payload.get("files")
    if not isinstance(files, dict) \
            or _files_digest(files) != payload.get("sha256"):
        return SnapshotResult(False, error="snapshot digest mismatch")
    loaded = 0
    skipped = 0
    for name, data in sorted(files.items()):
        kind, _, rest = name.partition("-")
        digest_ = rest[:-len(".rec")] if rest.endswith(".rec") else ""
        if kind not in KINDS or not digest_ \
                or not isinstance(data, bytes):
            skipped += 1
            continue
        status, _record = _check_record(data, kind, digest_)
        if status != "ok":
            skipped += 1
            continue
        if not atomic_install(store_dir, os.path.join(store_dir, name),
                              data, prefix=f".{kind}-"):
            skipped += 1
            continue
        loaded += 1
    return SnapshotResult(True, loaded=loaded, skipped=skipped)


# ----------------------------------------------------------------------
# Process-wide activation
# ----------------------------------------------------------------------

_active: PersistStore | None = None
_env_checked = False


def resolve_persist_dir(directory: str | None = None) -> str:
    """Resolve a store-directory choice (explicit > env > default)."""
    if directory:
        return directory
    return (os.environ.get(ENV_PERSIST_DIR, "").strip()
            or DEFAULT_PERSIST_DIR)


def activate(directory: str) -> PersistStore:
    """Activate persistence for this process, rooted at ``directory``."""
    global _active, _env_checked
    _active = PersistStore(directory)
    _env_checked = True
    return _active


def deactivate() -> None:
    global _active, _env_checked
    _active = None
    _env_checked = True


def active_store() -> PersistStore | None:
    """The process-wide store, resolving ``REPRO_PERSIST_DIR`` once.

    Pool workers inherit the environment, so a harness activated via the
    environment variable warms every ``--jobs`` worker automatically.
    """
    global _active, _env_checked
    if not _env_checked:
        _env_checked = True
        directory = os.environ.get(ENV_PERSIST_DIR, "").strip()
        if directory:
            _active = PersistStore(directory)
    return _active


def reset(clear_env_cache: bool = True) -> None:
    """Test hook: drop the active store (and re-read the env next time)."""
    global _active, _env_checked
    _active = None
    _env_checked = not clear_env_cache


# ----------------------------------------------------------------------
# Run-level binding (entry + continuation artifacts)
# ----------------------------------------------------------------------

def run_eligible(config) -> bool:
    """May this run's entry/cont artifacts be persisted and replayed?

    Annotation-checking runs install memory watches during static loads
    (a side effect replay would skip), and any armed fault point other
    than the persist ones can fire *inside* the specializer, so both
    disqualify the run.  The config itself is part of the key, so
    ineligibility never risks staleness — only a cold run.
    """
    if getattr(config, "check_annotations", False):
        return False
    try:
        specs = parse_spec(resolve_fault_spec(config))
    except Exception:
        return False
    return all(point in _PERSIST_POINTS for point in specs)


def bind_runtime(runtime, store: PersistStore, ctx: str) -> None:
    """Attach a :class:`RunBinding` so the runtime's entry-cache and
    promotion-cache misses go through the persistent store."""
    runtime._persist = RunBinding(runtime, store, ctx)


class RunBinding:
    """Per-run adapter between a :class:`DycRuntime` and the store.

    Keys every artifact with the run context (the memo key), artifact
    identity, and a per-identity sequence number (the same (region, key)
    can be specialized more than once under eviction/quarantine churn).
    Replay *verifies before applying*: the recorded pre-state (emission
    counter, scalar stats, dc cycles, and for continuations the code
    version/shape) must match the live run exactly, else the record is
    stale — the run diverged — and we fall back to cold specialization
    and stop persisting (a diverged run must not overwrite good records).
    """

    def __init__(self, runtime, store: PersistStore, ctx: str) -> None:
        self.runtime = runtime
        self.store = store
        self.ctx = ctx
        self.faults = runtime.faults
        self._seq: dict[tuple, int] = {}
        self._diverged = False

    def _next_seq(self, kind: str, ident: tuple) -> int:
        key = (kind, ident)
        seq = self._seq.get(key, 0)
        self._seq[key] = seq + 1
        return seq

    def _stale(self) -> None:
        self._diverged = True
        self.store._bump("stale_drops")

    # -- entry artifacts ----------------------------------------------

    def entry(self, genext, machine, entry_env: dict, region_id: int,
              key: tuple, stats) -> SpecializedCode:
        seq = self._next_seq("entry", (region_id, key))
        dig = digest("entry", PERSIST_SCHEMA, self.ctx, region_id, key,
                     seq)
        record = self.store.get("entry", dig, faults=self.faults)
        if record is not None:
            code = self._replay_entry(record, machine, stats)
            if code is not None:
                return code
        capture = _BatchCapture(self.runtime, machine, stats)
        with capture:
            began = time.perf_counter()
            code = self.runtime.specializer.specialize_entry(
                genext, machine, entry_env
            )
            self.store.record_work("entry",
                                   time.perf_counter() - began)
        if not self._diverged:
            self.store.put("entry", dig, {
                "code": code,
                "pre": capture.pre_block(),
                "pendings": capture.pendings_data(),
                "post": capture.post_block(),
            }, faults=self.faults)
        return code

    def _replay_entry(self, record, machine, stats):
        try:
            pre = record["pre"]
            code = record["code"]
            pendings = record["pendings"]
            post = record["post"]
        except (TypeError, KeyError):
            self._stale()
            return None
        if not isinstance(code, SpecializedCode) \
                or not isinstance(pre, dict) \
                or pre.get("emission") != self.runtime._emission_counter \
                or pre.get("stats") != numeric_snapshot(stats) \
                or pre.get("machine_dc") != machine.stats.dc_cycles:
            self._stale()
            return None
        self._apply(code, pendings, post, machine, stats)
        self.store._bump("replayed_entries")
        return code

    # -- continuation artifacts ---------------------------------------

    def continuation(self, pending: PendingPromotion, machine,
                     values: tuple, stats) -> str:
        code = pending.code
        seq = self._next_seq("cont", (pending.emission_id, values))
        dig = digest("cont", PERSIST_SCHEMA, self.ctx, code.region_id,
                     pending.emission_id, values, seq)
        record = self.store.get("cont", dig, faults=self.faults)
        if record is not None:
            label = self._replay_cont(record, pending, machine, stats)
            if label is not None:
                return label
        capture = _BatchCapture(self.runtime, machine, stats, code=code)
        with capture:
            began = time.perf_counter()
            label = self.runtime.specializer.specialize_continuation(
                pending, machine, values
            )
            self.store.record_work("cont", time.perf_counter() - began)
        if not self._diverged:
            fn = code.function
            self.store.put("cont", dig, {
                "label": label,
                "pre": capture.pre_block(),
                "blocks": list(fn.blocks.items())[capture.pre_nblocks:],
                "contexts": dict(
                    list(code.contexts.items())[capture.pre_ncontexts:]
                ),
                "exit_blocks": dict(code.exit_blocks),
                "dynamic_labels": dict(code.dynamic_labels),
                "protected": set(code.protected_labels),
                "label_counter": code.label_counter,
                "footprint": code.footprint,
                "pendings": capture.pendings_data(),
                "post": capture.post_block(),
            }, faults=self.faults)
        return label

    def _replay_cont(self, record, pending: PendingPromotion, machine,
                     stats):
        code = pending.code
        fn = code.function
        try:
            pre = record["pre"]
            post = record["post"]
            label = record["label"]
            blocks = record["blocks"]
            pendings = record["pendings"]
        except (TypeError, KeyError):
            self._stale()
            return None
        if not isinstance(pre, dict) \
                or pre.get("version") != fn.version \
                or pre.get("nblocks") != len(fn.blocks) \
                or pre.get("ncontexts") != len(code.contexts) \
                or pre.get("label_counter") != code.label_counter \
                or pre.get("emission") != self.runtime._emission_counter \
                or pre.get("stats") != numeric_snapshot(stats) \
                or pre.get("machine_dc") != machine.stats.dc_cycles:
            self._stale()
            return None
        # Batches only ever append blocks and retarget within the batch
        # (older blocks, contexts, and thunks are protected or already
        # threaded — see Specializer._thread_jumps), so installing the
        # captured tail reproduces the cold post-state exactly.
        for block_label, block in blocks:
            fn.blocks[block_label] = block
        code.contexts.update(record["contexts"])
        code.exit_blocks = dict(record["exit_blocks"])
        code.dynamic_labels = dict(record["dynamic_labels"])
        code.protected_labels = set(record["protected"])
        code.label_counter = record["label_counter"]
        self._apply(code, pendings, post, machine, stats)
        fn.bump_version()
        code.footprint = record["footprint"]
        self.store._bump("replayed_continuations")
        return label

    # -- shared replay tail -------------------------------------------

    def _apply(self, code: SpecializedCode, pendings, post, machine,
               stats) -> None:
        runtime = self.runtime
        genext = runtime.compiled.genexts[code.region_id]
        for data in pendings:
            runtime.register_pending(PendingPromotion(
                emission_id=data["emission_id"],
                code=code,
                genext=genext,
                block_key=data["block_key"],
                action_index=data["action_index"],
                store=dict(data["store"]),
                point_names=tuple(data["point_names"]),
                policy=data["policy"],
                cache=runtime.make_cache(data["policy"], stats=stats),
                frames=dict(data["frames"]),
            ))
        runtime._emission_counter = post["emission"]
        for name, value in zip(_NUMERIC_FIELDS, post["stats"]):
            setattr(stats, name, value)
        for header, src, dst in post["loop_edges"]:
            stats.record_loop_edge(header, src, dst)
        # Map unpickled (label, division) keys back onto the live
        # genext's own key objects: an unpickled frozenset is equal to
        # the native one but may repr its elements in a different order,
        # which would break byte-level stats fingerprints.
        canon = {block_key: block_key for block_key in genext.blocks}
        for key, value in post["loop_counts"].items():
            stats.loop_context_counts[canon.get(key, key)] = value
        machine.stats.dc_cycles = post["machine_dc"]


class _BatchCapture:
    """Pre/post observer around one specializer batch.

    Snapshots the observable pre-state (for warm-run verification),
    shadows ``stats.record_loop_edge`` with a recording wrapper (loop
    edges land in sets, so the calls themselves must be re-played), and
    afterwards packages the batch's absolute post-state: scalar stats
    and dc cycles are restored by *assignment* on replay, keeping even
    float accumulation IEEE-identical to the cold run.
    """

    def __init__(self, runtime, machine, stats, code=None) -> None:
        self.runtime = runtime
        self.machine = machine
        self.stats = stats
        self.code = code
        self.loop_edges: list[tuple] = []

    def __enter__(self) -> "_BatchCapture":
        runtime, stats = self.runtime, self.stats
        self.pre_emission = runtime._emission_counter
        self.pre_stats = numeric_snapshot(stats)
        self.pre_machine_dc = self.machine.stats.dc_cycles
        self.pre_loop_counts = dict(stats.loop_context_counts)
        code = self.code
        if code is not None:
            self.pre_version = code.function.version
            self.pre_nblocks = len(code.function.blocks)
            self.pre_ncontexts = len(code.contexts)
            self.pre_label_counter = code.label_counter
        record = self.loop_edges.append

        def recording(header, src, dst):
            record((header, src, dst))
            RegionStats.record_loop_edge(stats, header, src, dst)

        stats.record_loop_edge = recording
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        try:
            del self.stats.record_loop_edge
        except AttributeError:
            pass
        return False

    def pre_block(self) -> dict:
        pre = {
            "emission": self.pre_emission,
            "stats": self.pre_stats,
            "machine_dc": self.pre_machine_dc,
        }
        if self.code is not None:
            pre["version"] = self.pre_version
            pre["nblocks"] = self.pre_nblocks
            pre["ncontexts"] = self.pre_ncontexts
            pre["label_counter"] = self.pre_label_counter
        return pre

    def post_block(self) -> dict:
        stats = self.stats
        counts = {
            key: value
            for key, value in stats.loop_context_counts.items()
            if self.pre_loop_counts.get(key) != value
        }
        return {
            "emission": self.runtime._emission_counter,
            "stats": numeric_snapshot(stats),
            "machine_dc": self.machine.stats.dc_cycles,
            "loop_edges": list(self.loop_edges),
            "loop_counts": counts,
        }

    def pendings_data(self) -> list[dict]:
        runtime = self.runtime
        out = []
        for eid in range(self.pre_emission + 1,
                         runtime._emission_counter + 1):
            pending = runtime.pendings.get(eid)
            if pending is None:
                continue
            out.append({
                "emission_id": pending.emission_id,
                "block_key": pending.block_key,
                "action_index": pending.action_index,
                "store": dict(pending.store),
                "point_names": tuple(pending.point_names),
                "policy": pending.policy,
                "frames": dict(pending.frames),
            })
        return out
