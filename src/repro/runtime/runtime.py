"""The runtime facade: dispatching into dynamic regions.

:class:`DycRuntime` is attached to a :class:`~repro.machine.Machine`; the
machine calls back into it when host code executes an ``EnterRegion``
terminator (region dispatch) or specialized code executes a ``Promote``
terminator (internal dynamic-to-static promotion).
"""

from __future__ import annotations

from repro.errors import SpecializationError
from repro.faults import (
    FaultRegistry,
    resolve_degrade,
    resolve_fault_spec,
)
from repro.machine.interp import Machine
from repro.runtime.cache import (
    CodeCache,
    IndexedCache,
    UncheckedCache,
    entry_checksum,
)
from repro.runtime.fallback import build_fallback_function
from repro.runtime.overhead import DEFAULT_OVERHEAD, OverheadModel
from repro.runtime.specializer import (
    PendingPromotion,
    SpecializedCode,
    Specializer,
)
from repro.runtime.stats import RuntimeStats


class DycRuntime:
    """Run-time dispatching, specialization, and statistics.

    When the degradation ladder is active (``config.degrade``, the
    ``REPRO_DEGRADE`` environment variable, or any armed fault point) a
    failed specialization no longer aborts execution: the dispatcher
    retries once, then runs the region *unspecialized* from its template,
    and quarantines a (region, context) pair that keeps failing so later
    dispatches skip straight to the fallback (a circuit breaker).
    """

    def __init__(self, compiled, overhead: OverheadModel | None = None):
        self.compiled = compiled
        self.config = compiled.config
        self.overhead = overhead if overhead is not None else \
            DEFAULT_OVERHEAD
        self.stats = RuntimeStats()
        self.faults = FaultRegistry.from_spec(
            resolve_fault_spec(self.config)
        )
        self.degrade = resolve_degrade(self.config)
        self.quarantine_after = max(1, self.config.quarantine_after)
        self.specializer = Specializer(self)
        self.entry_caches: dict[int, object] = {}
        self.pendings: dict[int, PendingPromotion] = {}
        self._emission_counter = 0
        #: Optional :class:`repro.runtime.persist.RunBinding` routing
        #: entry/continuation specialization through the persistent
        #: cross-process store (set by ``persist.bind_runtime``).
        self._persist = None
        self._ct_machine: Machine | None = None
        #: (region_id, entry key) -> consecutive dispatch-time failures.
        self._failures: dict[tuple, int] = {}
        self._quarantined: set[tuple] = set()
        #: region_id -> (fallback Function, its footprint), built lazily.
        self._fallbacks: dict[int, tuple] = {}

    # ------------------------------------------------------------------
    # Policy / cache helpers
    # ------------------------------------------------------------------

    def effective_policy(self, policy: str) -> str:
        """Coerce policies per the unchecked-dispatching ablation."""
        if policy == "cache_one_unchecked" \
                and not self.config.unchecked_dispatching:
            return "cache_all"
        return policy

    def make_cache(self, policy: str, stats=None):
        if policy == "cache_one_unchecked":
            return UncheckedCache(strict=self.config.check_annotations)
        if policy == "cache_indexed":
            return IndexedCache()
        capacity = max(0, self.config.cache_capacity)
        faults = self.faults if (
            self.faults.enabled("cache.corrupt")
            or self.faults.enabled("cache.evict")
        ) else None
        if capacity == 0 and faults is None:
            return CodeCache()

        def on_evict() -> None:
            if stats is not None:
                stats.cache_evictions += 1

        def on_corrupt() -> None:
            if stats is not None:
                stats.cache_corruptions += 1

        return CodeCache(
            capacity=capacity, checksum=entry_checksum, faults=faults,
            on_evict=on_evict, on_corrupt=on_corrupt,
        )

    def new_emission_id(self) -> int:
        self._emission_counter += 1
        return self._emission_counter

    def register_pending(self, pending: PendingPromotion) -> None:
        self.pendings[pending.emission_id] = pending

    # ------------------------------------------------------------------
    # Machine hooks
    # ------------------------------------------------------------------

    def enter_region(self, machine: Machine, instr, env: dict):
        """Dispatch into a dynamic region; returns ("jump", label) to
        resume host code or ("return", value) for an in-region return."""
        region_id = instr.region_id
        genext = self.compiled.genexts[region_id]
        stats = self.stats.for_region(
            region_id, genext.region.function_name
        )
        policy = self.effective_policy(instr.policy)
        cache = self.entry_caches.get(region_id)
        if cache is None:
            cache = self.make_cache(policy, stats=stats)
            self.entry_caches[region_id] = cache

        try:
            key = tuple(env[k] for k in instr.keys)
        except KeyError as missing:
            raise SpecializationError(
                f"region {region_id}: promoted variable {missing} is "
                "undefined at region entry",
                region_id=region_id,
            ) from None

        result = cache.lookup(key)
        cost = self.overhead.dispatch_cost(policy, result.probes)
        machine.charge_dispatch(cost)
        stats.dispatches += 1
        stats.dispatch_cycles += cost
        if policy == "cache_one_unchecked":
            stats.unchecked_dispatches += 1
        elif policy == "cache_indexed":
            stats.indexed_dispatches += 1
        else:
            stats.hash_probes += result.probes

        if result.hit:
            code: SpecializedCode = result.value
        else:
            entry_env = dict(zip(instr.keys, key))
            quarantine_key = (region_id, key)
            if quarantine_key in self._quarantined:
                # Circuit breaker: this context keeps failing — skip the
                # doomed specialization attempts entirely.
                stats.quarantine_skips += 1
                return self._exec_fallback(machine, instr, genext, env,
                                           stats)
            try:
                if self._persist is not None:
                    code = self._persist.entry(
                        genext, machine, entry_env, region_id, key,
                        stats
                    )
                else:
                    code = self.specializer.specialize_entry(
                        genext, machine, entry_env
                    )
            except SpecializationError:
                if not self.degrade:
                    raise
                # Rung 2: one fresh attempt (transient faults — and the
                # injected ``once``/``at=N`` modes — clear on retry).
                stats.specialization_failures += 1
                code = self._respecialize_entry(genext, machine,
                                                entry_env, stats)
            if code is None:
                # Rung 3: run the region unspecialized; rung 4 after
                # ``quarantine_after`` consecutive dispatch failures.
                failures = self._failures.get(quarantine_key, 0) + 1
                self._failures[quarantine_key] = failures
                if failures >= self.quarantine_after:
                    self._quarantined.add(quarantine_key)
                    stats.quarantined_contexts += 1
                return self._exec_fallback(machine, instr, genext, env,
                                           stats)
            cache.insert(key, code)
            machine.charge_dc(self.overhead.cache_store)
            stats.dc_cycles += self.overhead.cache_store

        kind, payload = machine.exec_region_code(
            code.function, env, code.footprint
        )
        if kind == "exit":
            return ("jump", instr.exits[payload])
        return ("return", payload)

    def _respecialize_entry(self, genext, machine, entry_env: dict,
                            stats) -> SpecializedCode | None:
        try:
            code = self.specializer.specialize_entry(
                genext, machine, entry_env, attempt=2
            )
        except SpecializationError:
            stats.specialization_failures += 1
            return None
        stats.respecializations += 1
        return code

    def _exec_fallback(self, machine: Machine, instr, genext, env: dict,
                       stats):
        """Bottom rung: execute the region's unspecialized template."""
        region = genext.region
        fallback = self._fallbacks.get(region.region_id)
        if fallback is None:
            fn = build_fallback_function(region)
            fallback = (fn, fn.instruction_count())
            self._fallbacks[region.region_id] = fallback
        stats.fallback_executions += 1
        fn, footprint = fallback
        kind, payload = machine.exec_region_code(fn, env, footprint)
        if kind == "exit":
            return ("jump", instr.exits[payload])
        return ("return", payload)

    def promote(self, machine: Machine, instr, env: dict, code) -> str:
        """Handle an internal promotion in running specialized code."""
        pending = self.pendings.get(instr.emission_id)
        if pending is None:
            raise SpecializationError(
                f"promotion point {instr.point_id} has no pending "
                f"continuation (emission {instr.emission_id})"
            )
        genext = pending.genext
        stats = self.stats.for_region(
            genext.region.region_id, genext.region.function_name
        )
        values = tuple(env[k] for k in instr.keys)
        result = pending.cache.lookup(values)
        cost = self.overhead.dispatch_cost(pending.policy, result.probes)
        machine.charge_dispatch(cost)
        stats.dispatches += 1
        stats.dispatch_cycles += cost
        stats.internal_promotions_executed += 1
        if pending.policy == "cache_one_unchecked":
            stats.unchecked_dispatches += 1
        elif pending.policy == "cache_indexed":
            stats.indexed_dispatches += 1
        else:
            stats.hash_probes += result.probes

        if result.hit:
            return result.value
        try:
            if self._persist is not None:
                label = self._persist.continuation(
                    pending, machine, values, stats
                )
            else:
                label = self.specializer.specialize_continuation(
                    pending, machine, values
                )
        except SpecializationError:
            if not self.degrade:
                raise
            stats.specialization_failures += 1
            label = None
            try:
                label = self.specializer.specialize_continuation(
                    pending, machine, values, attempt=2
                )
                stats.respecializations += 1
            except SpecializationError:
                stats.specialization_failures += 1
            if label is None:
                # A promotion has no "run unspecialized" rung of its own
                # — the region is already executing specialized code — so
                # the continuation is residualized as dynamic code, which
                # is correct for any promoted values.
                label = self.specializer.residualize_continuation(
                    pending, machine, values
                )
        pending.cache.insert(values, label)
        machine.charge_dc(self.overhead.cache_store)
        stats.dc_cycles += self.overhead.cache_store
        return label

    # ------------------------------------------------------------------
    # Compile-time evaluation of static calls
    # ------------------------------------------------------------------

    def compile_time_call(self, machine: Machine, callee: str,
                          args: list, charge):
        """Evaluate a ``pure`` call during dynamic compilation.

        Runs on a separate compile-time machine sharing the module and
        data memory; its cycles are reported through ``charge`` so they
        land in the dynamic-compilation account (the static computations
        are part of DC overhead, §4.2).
        """
        if self._ct_machine is None or \
                self._ct_machine.memory is not machine.memory:
            self._ct_machine = Machine(
                self.compiled.module,
                memory=machine.memory,
                cost_model=machine.costs,
                icache=machine.icache,
                runtime=self,
                backend=machine.backend,
            )
        before = self._ct_machine.stats.cycles
        result = self._ct_machine.call(callee, args)
        charge(self._ct_machine.stats.cycles - before)
        return result
