"""The runtime specializer: drives generating extensions to produce code.

Specialization is a worklist over *specialization contexts* — an analysis
context ``(block, division)`` plus the concrete values of the static
variables live at its entry.  Because a loop whose induction variables
are static re-enters its header context with *different values*, each
iteration becomes a fresh context: that is program-point-specific
polyvariant specialization, and complete single-way loop unrolling falls
out as a linear chain of contexts.  A context reached with values seen
before links back to the existing code, so multi-way unrolling produces
the paper's "directed graph of unrolled loop bodies" (§2.2.4), including
back edges for loops in the interpreted program (mipsi).

Internal promotions (§2.2.2) suspend specialization: the block's emitted
code ends in a ``Promote`` terminator, and the rest of the action list is
specialized *lazily*, once per distinct tuple of promoted values, through
the promotion point's own code cache (multi-stage specialization).

All work here is charged to the dynamic-compilation overhead account via
the :class:`~repro.runtime.overhead.OverheadModel`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.dyc.genext import (
    ActionBlock,
    EmitAction,
    EvalAction,
    GeneratingExtension,
    PromoteAction,
    ResidualAction,
    TermDynamic,
    TermJump,
    TermReturn,
    TermStatic,
)
from repro.errors import SpecializationBudgetError, SpecializationError
from repro.ir.eval import eval_binop, eval_unop
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    ExitRegion,
    Imm,
    Instr,
    Jump,
    Load,
    Move,
    Operand,
    Promote,
    Reg,
    Return,
    UnOp,
)
from repro.runtime.emit import BlockEmitter
from repro.runtime.fallback import dynamic_arm, ensure_dynamic_blocks

#: Safety valve against runaway specialization (e.g. an unbounded loop
#: whose bound was wrongly annotated static).
MAX_CONTEXTS_PER_BATCH = 200_000


@dataclass
class SpecializedCode:
    """One dynamically generated code version (one entry-cache value)."""

    region_id: int
    function: Function
    footprint: int = 0
    #: (label, division, live static values) -> emitted block label.
    contexts: dict[tuple, str] = field(default_factory=dict)
    #: exit index -> label of the ExitRegion thunk block.
    exit_blocks: dict[int, str] = field(default_factory=dict)
    #: Labels cached externally (entry/promotion caches): never deleted.
    protected_labels: set[str] = field(default_factory=set)
    label_counter: int = 0
    #: template label -> label of its fully dynamic copy, built lazily by
    #: budget truncation (see :mod:`repro.runtime.fallback`).
    dynamic_labels: dict[str, str] = field(default_factory=dict)

    def fresh_label(self, hint: str) -> str:
        self.label_counter += 1
        return f"{hint}${self.label_counter}"

    def cache_identity(self) -> tuple:
        """Stable identity fields for code-cache entry checksums.

        Lazy promotions mutate the block map of a cached code version in
        place, so the checksum covers only fields that are fixed at
        creation (the entry label is a batch-entry label, protected from
        jump threading, hence stable too).
        """
        return (self.region_id, self.function.name, self.function.entry)


@dataclass
class PendingPromotion:
    """A suspended specialization, resumed per promoted-value tuple."""

    emission_id: int
    code: SpecializedCode
    genext: GeneratingExtension
    block_key: tuple
    action_index: int
    store: dict
    point_names: tuple[str, ...]
    policy: str
    cache: object  # CodeCache | UncheckedCache
    frames: dict = field(default_factory=dict)


@dataclass
class _Task:
    label: str
    block_key: tuple
    action_index: int
    store: dict
    #: loop-header label -> the header specialization context (emitted
    #: label) this chain is currently "inside", for SW/MW attribution.
    frames: dict = field(default_factory=dict)


class Specializer:
    """Interprets generating extensions to build specialized code."""

    def __init__(self, runtime) -> None:
        self.runtime = runtime

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def specialize_entry(self, genext: GeneratingExtension, machine,
                         entry_values: dict,
                         attempt: int = 1) -> SpecializedCode:
        """Build the code version for one tuple of region-entry values."""
        region = genext.region
        self._maybe_fault(
            "specializer.entry", region_id=region.region_id,
            context_key=tuple(entry_values.values()), attempt=attempt,
        )
        stats = self.runtime.stats.for_region(
            region.region_id, region.function_name
        )
        stats.specializations += 1
        per_label: dict = {}
        for (label, division) in genext.blocks:
            per_label.setdefault(label, set()).add(division)
        stats.divisions_used = max(
            stats.divisions_used,
            max((len(divs) for divs in per_label.values()), default=1),
        )
        code = SpecializedCode(
            region_id=region.region_id,
            function=Function(
                name=f"region{region.region_id}", params=()
            ),
        )
        entry_label = code.fresh_label(region.entry_block)
        code.function.entry = entry_label
        frames: dict = {}
        if region.entry_block in genext.loops:
            frames[region.entry_block] = entry_label
        task = _Task(
            label=entry_label,
            block_key=genext.entry_key,
            action_index=genext.entry_start,
            store=dict(entry_values),
            frames=frames,
        )
        self._run_batch(code, genext, machine, [task],
                        setup=self.runtime.overhead.region_setup)
        return code

    def specialize_continuation(self, pending: PendingPromotion, machine,
                                values: tuple, attempt: int = 1) -> str:
        """Lazily specialize a promotion continuation for ``values``."""
        self._maybe_fault(
            "specializer.continuation",
            region_id=pending.code.region_id,
            context_key=tuple(values), attempt=attempt,
        )
        store = dict(pending.store)
        store.update(zip(pending.point_names, values))
        label = pending.code.fresh_label("cont")
        task = _Task(
            label=label,
            block_key=pending.block_key,
            action_index=pending.action_index,
            store=store,
            frames=dict(pending.frames),
        )
        self._run_batch(pending.code, pending.genext, machine, [task],
                        setup=self.runtime.overhead.promote_setup)
        return label

    def residualize_continuation(self, pending: PendingPromotion,
                                 machine, values: tuple) -> str:
        """Degraded promotion rung: residualize instead of specializing.

        When specializing a promotion continuation keeps failing, the
        continuation is emitted as ordinary dynamic code — the promoted
        values and suspended static store become constant moves and
        control jumps into the fully dynamic template copies.  Correct
        for *any* promoted values, at interpreted-template speed.
        """
        code = pending.code
        genext = pending.genext
        overhead = self.runtime.overhead
        stats = self.runtime.stats.for_region(
            genext.region.region_id, genext.region.function_name
        )
        dc_account = [overhead.promote_setup]

        def charge(cycles: float) -> None:
            dc_account[0] += cycles

        before_instrs = code.function.instruction_count()
        store = dict(pending.store)
        store.update(zip(pending.point_names, values))
        label = code.fresh_label("dyncont")
        task = _Task(
            label=label,
            block_key=pending.block_key,
            action_index=pending.action_index,
            store=store,
            frames=dict(pending.frames),
        )
        self._emit_truncation(code, genext, task, stats, charge)
        code.protected_labels.add(label)
        code.function.bump_version()
        new_instrs = code.function.instruction_count() - before_instrs
        charge(overhead.icache_flush_base
               + overhead.icache_flush_per_instr * new_instrs)
        stats.instructions_generated += new_instrs
        stats.dc_cycles += dc_account[0]
        machine.charge_dc(dc_account[0])
        code.footprint = code.function.instruction_count()
        stats.residualized_continuations += 1
        return label

    def _maybe_fault(self, point: str, *, region_id, context_key,
                     attempt) -> None:
        faults = self.runtime.faults
        if faults.active and faults.should_fire(point):
            raise SpecializationError(
                f"injected fault at {point}",
                region_id=region_id, context_key=context_key,
                fault_point=point, attempt=attempt,
            )

    # ------------------------------------------------------------------
    # Batch driver
    # ------------------------------------------------------------------

    def _run_batch(self, code: SpecializedCode,
                   genext: GeneratingExtension, machine,
                   tasks: list[_Task], setup: float) -> None:
        overhead = self.runtime.overhead
        stats = self.runtime.stats.for_region(
            genext.region.region_id, genext.region.function_name
        )
        dc_account = [setup]

        def charge(cycles: float) -> None:
            dc_account[0] += cycles

        before_instrs = code.function.instruction_count()
        budget = (self.runtime.config.specialize_budget
                  or MAX_CONTEXTS_PER_BATCH)
        faults = self.runtime.faults
        if faults.active and faults.should_fire("specializer.budget"):
            budget = 0  # collapse the budget: every context truncates
        worklist: deque[_Task] = deque(tasks)
        processed = 0
        while worklist:
            processed += 1
            if processed > budget:
                if not self.runtime.degrade:
                    raise SpecializationBudgetError(
                        f"region {genext.region.region_id}: "
                        f"specialization exceeded {budget} contexts — "
                        "an annotated loop may not terminate statically",
                        region_id=genext.region.region_id,
                    )
                # Graceful rung: residualize every unfinished context as
                # ordinary dynamic code (the unrolling that ran away
                # becomes a plain loop) and keep the contexts already
                # specialized.
                while worklist:
                    task = worklist.popleft()
                    self._emit_truncation(code, genext, task, stats,
                                          charge)
                    stats.budget_truncations += 1
                break
            task = worklist.popleft()
            self._process_task(code, genext, machine, task, worklist,
                               stats, charge)

        code.protected_labels.update(t.label for t in tasks)
        self._thread_jumps(code, protected=code.protected_labels)
        # The batch added blocks and retargeted jumps in code that may
        # already be executing (lazy promotions patch a running buffer):
        # invalidate any cached translations of it.
        code.function.bump_version()
        new_instrs = code.function.instruction_count() - before_instrs
        charge(overhead.icache_flush_base
               + overhead.icache_flush_per_instr * new_instrs)
        stats.instructions_generated += new_instrs
        stats.dc_cycles += dc_account[0]
        machine.charge_dc(dc_account[0])
        code.footprint = code.function.instruction_count()

    # ------------------------------------------------------------------
    # One context
    # ------------------------------------------------------------------

    def _process_task(self, code: SpecializedCode,
                      genext: GeneratingExtension, machine, task: _Task,
                      worklist: deque, stats, charge) -> None:
        overhead = self.runtime.overhead
        action_block = genext.block(task.block_key)
        emitter = BlockEmitter(self.runtime.config, overhead, stats,
                               charge, faults=self.runtime.faults)
        store = task.store
        charge(overhead.block_alloc)
        stats.contexts_specialized += 1
        if action_block.label in genext.loops:
            key = (action_block.label, action_block.division)
            stats.loop_context_counts[key] = (
                stats.loop_context_counts.get(key, 0) + 1
            )

        terminator = None
        actions = action_block.actions
        for index in range(task.action_index, len(actions)):
            action = actions[index]
            if isinstance(action, EvalAction):
                self._eval_static(action, store, machine, stats, charge)
            elif isinstance(action, EmitAction):
                values = self._hole_values(action, store)
                emitter.emit_template(action.instr, values, action.plan)
                # The variable is dynamic from here on: any stale static
                # value must not leak into later folds or residuals.
                for dest in action.instr.defs():
                    store.pop(dest, None)
            elif isinstance(action, ResidualAction):
                for name in action.names:
                    if name in store:
                        emitter.emit_residual(name, store.pop(name))
            elif isinstance(action, PromoteAction):
                if action.emit is not None:
                    values = self._hole_values(action.emit, store)
                    emitter.emit_template(
                        action.emit.instr, values, action.emit.plan
                    )
                    for dest in action.emit.instr.defs():
                        store.pop(dest, None)
                terminator = self._suspend_for_promotion(
                    code, genext, task, index, action, store, stats,
                    charge,
                )
                break
            else:  # pragma: no cover - defensive
                raise SpecializationError(
                    f"unknown action {type(action).__name__}"
                )

        if terminator is None:
            terminator = self._finish_terminator(
                code, genext, action_block, store, emitter, worklist,
                stats, charge, task.frames,
            )

        instrs = emitter.flush(terminator)
        code.function.blocks[task.label] = BasicBlock(task.label, instrs)

    # ------------------------------------------------------------------
    # Budget truncation (dynamic residualization)
    # ------------------------------------------------------------------

    def _emit_truncation(self, code: SpecializedCode,
                         genext: GeneratingExtension, task: _Task,
                         stats, charge) -> None:
        """Finish ``task``'s block as ordinary dynamic code.

        The block residualizes the whole static store, replays the
        remaining template actions verbatim (statics are in the
        environment now, so the unfilled holes read the right values),
        and transfers into the fully dynamic template copies built by
        :func:`ensure_dynamic_blocks` — no further contexts are minted.
        """
        overhead = self.runtime.overhead
        mapping = ensure_dynamic_blocks(code, genext, charge,
                                        overhead.emit_instruction)
        exit_index = {
            label: i for i, label in enumerate(genext.region.exits)
        }
        # A plain emitter: no faults (truncation is the recovery path)
        # and no plans, so nothing is folded or elided.
        emitter = BlockEmitter(self.runtime.config, overhead, stats,
                               charge)
        charge(overhead.block_alloc)
        for name in sorted(task.store):
            emitter.emit_residual(name, task.store[name])

        action_block = genext.block(task.block_key)
        actions = action_block.actions
        for index in range(task.action_index, len(actions)):
            action = actions[index]
            if isinstance(action, (EvalAction, EmitAction)):
                emitter.emit_raw(action.instr)
            elif isinstance(action, PromoteAction):
                if action.emit is not None:
                    emitter.emit_raw(action.emit.instr)
            # ResidualAction: the whole store was residualized above.

        def arm(template_target: str) -> str:
            kind, payload = action_block.succ_info[template_target]
            if kind == "exit":
                return dynamic_arm(code, template_target, mapping,
                                   exit_index, charge,
                                   overhead.emit_instruction)
            return mapping[payload[0]]

        term = action_block.terminator
        charge(overhead.emit_instruction)
        if isinstance(term, TermJump):
            kind, payload = action_block.succ_info[term.target]
            if kind == "exit":
                terminator: Instr = ExitRegion(payload)
            else:
                terminator = Jump(mapping[payload[0]])
        elif isinstance(term, (TermStatic, TermDynamic)):
            instr = (term.instr if isinstance(term, TermStatic)
                     else term.action.instr)
            cond = emitter.prepare_terminator_operand(instr.cond, {})
            terminator = Branch(cond, arm(instr.if_true),
                                arm(instr.if_false))
        elif isinstance(term, TermReturn):
            instr = term.action.instr
            if instr.value is None:
                terminator = Return(None)
            else:
                terminator = Return(
                    emitter.prepare_terminator_operand(instr.value, {})
                )
        else:  # pragma: no cover - defensive
            raise SpecializationError(
                f"unknown terminator {type(term).__name__}",
                region_id=genext.region.region_id,
            )

        instrs = emitter.flush(terminator)
        code.function.blocks[task.label] = BasicBlock(task.label, instrs)

    # ------------------------------------------------------------------
    # Set-up code evaluation
    # ------------------------------------------------------------------

    def _static_value(self, operand: Operand, store: dict):
        if isinstance(operand, Imm):
            return operand.value
        if isinstance(operand, Reg):
            try:
                return store[operand.name]
            except KeyError:
                raise SpecializationError(
                    f"static variable {operand.name!r} has no value at "
                    "specialize time (BTA/specializer mismatch)"
                ) from None
        raise SpecializationError(f"cannot evaluate operand {operand!r}")

    def _hole_values(self, action: EmitAction, store: dict) -> dict:
        values = {}
        for name in action.holes:
            try:
                values[name] = store[name]
            except KeyError:
                raise SpecializationError(
                    f"static variable {name!r} has no value at "
                    "specialize time (BTA/specializer mismatch)"
                ) from None
        return values

    def _eval_static(self, action: EvalAction, store: dict, machine,
                     stats, charge) -> None:
        """Run one set-up computation at dynamic compile time."""
        instr = action.instr
        costs = machine.costs
        overhead = self.runtime.overhead
        charge(overhead.eval_overhead)

        if isinstance(instr, Move):
            value = self._static_value(instr.src, store)
            charge(costs.move_cost(isinstance(value, float)))
            store[instr.dest] = value
            stats.static_instrs_folded += 1
        elif isinstance(instr, UnOp):
            src = self._static_value(instr.src, store)
            charge(costs.binop_cost("alu", isinstance(src, float)))
            store[instr.dest] = eval_unop(instr.op, src)
            stats.static_instrs_folded += 1
        elif isinstance(instr, BinOp):
            lhs = self._static_value(instr.lhs, store)
            rhs = self._static_value(instr.rhs, store)
            is_float = isinstance(lhs, float) or isinstance(rhs, float)
            charge(costs.binop_cost(instr.op.value, is_float))
            store[instr.dest] = eval_binop(instr.op, lhs, rhs)
            stats.static_instrs_folded += 1
        elif isinstance(instr, Load):
            addr = self._static_value(instr.addr, store)
            charge(costs.load)
            store[instr.dest] = machine.memory.load(addr)
            stats.static_loads_folded += 1
            if self.runtime.config.check_annotations:
                machine.memory.watch(int(addr))
        elif isinstance(instr, Call):
            args = [self._static_value(a, store) for a in instr.args]
            result = self.runtime.compile_time_call(
                machine, instr.callee, args, charge
            )
            if instr.dest is not None:
                store[instr.dest] = result
            stats.static_calls_folded += 1
        else:  # pragma: no cover - defensive
            raise SpecializationError(
                f"cannot evaluate {type(instr).__name__} statically"
            )

    # ------------------------------------------------------------------
    # Promotions
    # ------------------------------------------------------------------

    def _suspend_for_promotion(self, code: SpecializedCode,
                               genext: GeneratingExtension, task: _Task,
                               action_index: int, action: PromoteAction,
                               store: dict, stats, charge) -> Promote:
        point = action.point
        policy = self.runtime.effective_policy(point.policy)
        emission_id = self.runtime.new_emission_id()
        pending = PendingPromotion(
            emission_id=emission_id,
            code=code,
            genext=genext,
            block_key=task.block_key,
            action_index=action_index + 1,
            store=dict(store),
            point_names=point.names,
            policy=policy,
            cache=self.runtime.make_cache(policy, stats=stats),
            frames=dict(task.frames),
        )
        self.runtime.register_pending(pending)
        stats.internal_promotion_points += 1
        charge(self.runtime.overhead.emit_instruction)
        return Promote(
            region_id=genext.region.region_id,
            point_id=point.point_id,
            keys=point.names,
            policy=policy,
            emission_id=emission_id,
        )

    # ------------------------------------------------------------------
    # Terminators and successor plumbing
    # ------------------------------------------------------------------

    def _finish_terminator(self, code: SpecializedCode,
                           genext: GeneratingExtension,
                           action_block: ActionBlock, store: dict,
                           emitter: BlockEmitter, worklist: deque,
                           stats, charge, frames: dict):
        overhead = self.runtime.overhead
        term = action_block.terminator

        if isinstance(term, TermJump):
            return self._goto(code, genext, action_block, term.target,
                              store, emitter, worklist, stats, charge,
                              frames)

        if isinstance(term, TermStatic):
            cond = self._static_value(term.instr.cond, store)
            stats.static_branches_folded += 1
            charge(overhead.static_branch_fold)
            target = term.instr.if_true if cond else term.instr.if_false
            return self._goto(code, genext, action_block, target, store,
                              emitter, worklist, stats, charge, frames)

        if isinstance(term, TermDynamic):
            instr = term.action.instr
            values = self._hole_values(term.action, store)
            cond = emitter.prepare_terminator_operand(instr.cond, values)
            true_label = self._succ_label(
                code, genext, action_block, instr.if_true, store,
                emitter, worklist, stats, charge, frames,
            )
            false_label = self._succ_label(
                code, genext, action_block, instr.if_false, store,
                emitter, worklist, stats, charge, frames,
            )
            charge(overhead.emit_instruction + 2 * overhead.branch_patch)
            return Branch(cond, true_label, false_label)

        if isinstance(term, TermReturn):
            instr = term.action.instr
            values = self._hole_values(term.action, store)
            charge(overhead.emit_instruction)
            if instr.value is None:
                return Return(None)
            value = emitter.prepare_terminator_operand(instr.value,
                                                       values)
            return Return(value)

        raise SpecializationError(
            f"unknown terminator {type(term).__name__}"
        )

    def _goto(self, code, genext, action_block, template_target, store,
              emitter, worklist, stats, charge, frames):
        """Terminator for an unconditional transfer to a template label."""
        kind, payload = action_block.succ_info[template_target]
        charge(self.runtime.overhead.emit_instruction)
        if kind == "exit":
            self._residualize_exit(genext, template_target, store,
                                   emitter)
            return ExitRegion(payload)
        label = self._context_label(code, genext, payload, store,
                                    emitter, worklist, stats, frames)
        return Jump(label)

    def _residualize_exit(self, genext, exit_label: str, store: dict,
                          emitter: BlockEmitter) -> None:
        """Materialize statics that are live in the host after the exit.

        An exit edge normally carries no live static values, but a
        variable can be static here and demoted *on the edge* (e.g. a
        loop-variant derived static when the loop itself left the
        region); its value must be emitted before control leaves.
        """
        live = genext.region.live_in.get(exit_label, frozenset())
        for name in sorted(store):
            if name in live:
                emitter.emit_residual(name, store[name])

    def _succ_label(self, code, genext, action_block, template_target,
                    store, emitter, worklist, stats, charge,
                    frames: dict) -> str:
        """Emitted label for a branch target (exit thunk or context)."""
        kind, payload = action_block.succ_info[template_target]
        if kind == "exit":
            self._residualize_exit(genext, template_target, store,
                                   emitter)
            if payload not in code.exit_blocks:
                label = code.fresh_label(f"exit{payload}")
                code.function.blocks[label] = BasicBlock(
                    label, [ExitRegion(payload)]
                )
                code.exit_blocks[payload] = label
                charge(self.runtime.overhead.emit_instruction)
            return code.exit_blocks[payload]
        return self._context_label(code, genext, payload, store,
                                   emitter, worklist, stats, frames)

    def _context_label(self, code: SpecializedCode,
                       genext: GeneratingExtension, payload, store: dict,
                       emitter: BlockEmitter, worklist: deque,
                       stats, frames: dict) -> str:
        """Memoized lookup/creation of a specialization context.

        Variables that are static here but live-and-dynamic in the
        successor context are *residualized*: their run-time-constant
        values are emitted as constant moves before control transfers.
        """
        label, division = payload
        succ_key = genext.resolve_context(label, division)
        succ_block = genext.block(succ_key)
        live = genext.region.live_in.get(succ_key[0], frozenset())
        keyed = set(succ_block.key_vars)
        for name in sorted(store):
            if name in live and name not in keyed:
                emitter.emit_residual(name, store[name])
        try:
            values = tuple(store[v] for v in succ_block.key_vars)
        except KeyError as missing:
            raise SpecializationError(
                f"static variable {missing} required by context "
                f"{succ_key!r} is absent from the store"
            ) from None
        context_id = (succ_key[0], succ_key[1], values)
        is_header = succ_key[0] in genext.loops
        existing = code.contexts.get(context_id)
        if existing is not None:
            if is_header:
                stats.record_loop_edge(
                    succ_key[0], frames.get(succ_key[0]), existing
                )
            return existing
        new_label = code.fresh_label(succ_key[0])
        code.contexts[context_id] = new_label
        child_frames = frames
        if is_header:
            stats.record_loop_edge(
                succ_key[0], frames.get(succ_key[0]), new_label
            )
            child_frames = dict(frames)
            child_frames[succ_key[0]] = new_label
        worklist.append(_Task(
            label=new_label,
            block_key=succ_key,
            action_index=0,
            store=dict(zip(succ_block.key_vars, values)),
            frames=child_frames,
        ))
        return new_label

    @staticmethod
    def _thread_jumps(code: SpecializedCode,
                      protected: set[str]) -> None:
        """Remove jump-only blocks left by contexts that emitted nothing.

        A context whose computations were all static produces an empty
        block ending in a jump; references to it are retargeted past it
        and the block deleted.  ``protected`` labels (batch entries, whose
        labels are cached externally) are kept even when trivial.
        """
        function = code.function
        trivial: dict[str, str] = {}
        #: jump-only predecessors may absorb a singleton terminator block
        #: (ExitRegion / Return) directly.
        singleton_terms: dict[str, object] = {}
        for label, block in function.blocks.items():
            if label in protected or len(block.instrs) != 1:
                continue
            only = block.instrs[0]
            if isinstance(only, Jump) and only.target != label:
                trivial[label] = only.target
            elif isinstance(only, (ExitRegion, Return)):
                singleton_terms[label] = only
        if not trivial and not singleton_terms:
            return

        def resolve(label: str) -> str:
            seen = set()
            while label in trivial and label not in seen:
                seen.add(label)
                label = trivial[label]
            return label

        for block in function.blocks.values():
            term = block.instrs[-1]
            if isinstance(term, Jump):
                final = resolve(term.target)
                if final in singleton_terms:
                    block.instrs[-1] = singleton_terms[final]
                elif final != term.target:
                    block.instrs[-1] = Jump(final)
            elif isinstance(term, Branch):
                if_true = resolve(term.if_true)
                if_false = resolve(term.if_false)
                if (if_true, if_false) != (term.if_true, term.if_false):
                    block.instrs[-1] = Branch(term.cond, if_true,
                                              if_false)
        if function.entry in trivial:
            function.entry = resolve(function.entry)
        for context_id, label in list(code.contexts.items()):
            if label in trivial:
                code.contexts[context_id] = resolve(label)
        for label in trivial:
            del function.blocks[label]
        # Delete singleton terminator blocks nothing references anymore.
        still_referenced: set[str] = {function.entry}
        for block in function.blocks.values():
            still_referenced.update(block.instrs[-1].successors())
        for label in singleton_terms:
            if label not in still_referenced \
                    and label in function.blocks:
                del function.blocks[label]
                for index, thunk in list(code.exit_blocks.items()):
                    if thunk == label:
                        del code.exit_blocks[index]

