"""Per-region runtime statistics and optimization-usage tracking.

Beyond the cycle accounting the tables need, the runtime records *which*
optimizations actually fired for each region — the data behind Table 2's
applicability matrix (single-way vs multi-way unrolling, static loads,
static calls, ZCP, DAE, strength reduction, internal promotions,
polyvariant division, unchecked dispatching).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RegionStats:
    """Counters for one dynamic region."""

    region_id: int
    function_name: str

    # --- dispatching ---------------------------------------------------
    dispatches: int = 0
    dispatch_cycles: float = 0.0
    unchecked_dispatches: int = 0
    indexed_dispatches: int = 0
    hash_probes: int = 0

    # --- specialization ------------------------------------------------
    specializations: int = 0          # entry-cache misses
    contexts_specialized: int = 0
    instructions_generated: int = 0
    dc_cycles: float = 0.0

    # --- degradation ladder (all zero on a clean run) -------------------
    specialization_failures: int = 0   # failed specialize attempts
    respecializations: int = 0         # rung-2 retries that succeeded
    fallback_executions: int = 0       # unspecialized region executions
    quarantined_contexts: int = 0      # (region, context) circuit-breaks
    quarantine_skips: int = 0          # dispatches short-circuited by one
    budget_truncations: int = 0        # contexts residualized dynamically
    residualized_continuations: int = 0  # promotions degraded dynamically
    cache_evictions: int = 0           # bounded-cache clock evictions
    cache_corruptions: int = 0         # checksum-mismatch hits recovered

    # --- optimization usage (Table 2) -----------------------------------
    static_instrs_folded: int = 0
    static_loads_folded: int = 0
    static_calls_folded: int = 0
    static_branches_folded: int = 0
    zcp_zero_hits: int = 0
    zcp_copy_hits: int = 0
    dae_removed: int = 0
    sr_applied: int = 0
    internal_promotions_executed: int = 0
    internal_promotion_points: int = 0
    divisions_used: int = 1
    #: (header label, division) -> number of distinct specialization
    #: contexts minted.  Keyed per division so polyvariant *division*
    #: (two compiled versions of the same loop) is not mistaken for
    #: polyvariant *specialization* (unrolling).
    loop_context_counts: dict[tuple, int] = field(default_factory=dict)
    #: header -> {source header-context -> set of target header-contexts}.
    #: One iteration reaching several different next iterations, or one
    #: iteration reached from several places (a back edge in the unrolled
    #: graph), is multi-way unrolling (§2.2.4).
    loop_out_edges: dict[str, dict[object, set[str]]] = field(
        default_factory=dict
    )
    loop_in_edges: dict[str, dict[str, set[object]]] = field(
        default_factory=dict
    )

    def record_loop_edge(self, header: str, src, dst: str) -> None:
        """Record a transfer between specialization contexts of a loop
        header (``src`` is None for the initial entry)."""
        self.loop_out_edges.setdefault(header, {}).setdefault(
            src, set()
        ).add(dst)
        self.loop_in_edges.setdefault(header, {}).setdefault(
            dst, set()
        ).add(src)

    # ------------------------------------------------------------------
    # Derived Table 2 facts
    # ------------------------------------------------------------------

    @property
    def multiway_headers(self) -> set[str]:
        """Headers whose unrolled context graph is not a simple chain."""
        result: set[str] = set()
        for header, outs in self.loop_out_edges.items():
            if any(len(dsts) > 1 for dsts in outs.values()):
                result.add(header)
        for header, ins in self.loop_in_edges.items():
            if any(len(srcs) > 1 for srcs in ins.values()):
                result.add(header)
        return result

    @property
    def loop_contexts(self) -> dict[str, int]:
        """Max same-division context count per header label."""
        result: dict[str, int] = {}
        for (header, _division), count in \
                self.loop_context_counts.items():
            result[header] = max(result.get(header, 0), count)
        return result

    @property
    def unrolling(self) -> str | None:
        """None, "SW", or "MW" — complete-loop-unrolling usage."""
        unrolled = [
            header for header, count in self.loop_contexts.items()
            if count > 1
        ]
        if not unrolled:
            return None
        multiway = self.multiway_headers
        if any(h in multiway for h in unrolled):
            return "MW"
        return "SW"

    @property
    def used_static_loads(self) -> bool:
        return self.static_loads_folded > 0

    @property
    def used_static_calls(self) -> bool:
        return self.static_calls_folded > 0

    @property
    def used_zcp(self) -> bool:
        return (self.zcp_zero_hits + self.zcp_copy_hits) > 0

    @property
    def used_dae(self) -> bool:
        return self.dae_removed > 0

    @property
    def used_sr(self) -> bool:
        return self.sr_applied > 0

    @property
    def used_internal_promotions(self) -> bool:
        return self.internal_promotions_executed > 0

    @property
    def used_polyvariant_division(self) -> bool:
        return self.divisions_used > 1

    @property
    def used_unchecked_dispatch(self) -> bool:
        return self.unchecked_dispatches > 0

    @property
    def degraded(self) -> bool:
        """Did this region leave the fully specialized path at any point?

        Plain clock evictions are *not* degradation — a bounded cache
        operating normally re-specializes on capacity misses by design —
        but failures, fallbacks, truncations, and corruption recoveries
        all are.
        """
        return bool(
            self.specialization_failures
            or self.fallback_executions
            or self.quarantined_contexts
            or self.quarantine_skips
            or self.budget_truncations
            or self.residualized_continuations
            or self.cache_corruptions
        )

    @property
    def overhead_per_instruction(self) -> float:
        """Table 3's "DC overhead (cycles/instruction generated)"."""
        if not self.instructions_generated:
            return 0.0
        return self.dc_cycles / self.instructions_generated


@dataclass
class RuntimeStats:
    """All regions' statistics, keyed by region id."""

    regions: dict[int, RegionStats] = field(default_factory=dict)

    def for_region(self, region_id: int,
                   function_name: str = "?") -> RegionStats:
        if region_id not in self.regions:
            self.regions[region_id] = RegionStats(
                region_id=region_id, function_name=function_name
            )
        return self.regions[region_id]

    @property
    def total_instructions_generated(self) -> int:
        return sum(
            r.instructions_generated for r in self.regions.values()
        )

    @property
    def total_dc_cycles(self) -> float:
        return sum(r.dc_cycles for r in self.regions.values())

    @property
    def degraded(self) -> bool:
        return any(r.degraded for r in self.regions.values())
