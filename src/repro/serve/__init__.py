"""Specialization-as-a-service: an asyncio daemon over the harness.

``python -m repro.serve`` exposes the eval harness's (workload, config)
runs over HTTP with a sharded multi-tenant result cache, per-tenant
admission control, heat-tiered backend selection, per-(tenant,
workload) circuit breakers, and the degradation ladder wired into the
request path.  ``python -m repro.serve.supervisor`` runs N such
workers behind one shared socket with crash/hang recovery (heartbeat
pipes), warm recycling from the persistent store, and graceful
SIGTERM drain.  ``python -m repro.serve.loadgen`` is the matching
deterministic traffic-replay load generator, with retry budgets and
echo-token response accounting; ``python -m repro.chaos`` storms the
whole stack with seeded faults and worker kills.

Endpoints
---------

================  ====================================================
``POST /run``     execute (or serve from cache) a workload run; body
                  ``{"workload": ..., "tenant": ..., "config": {...},
                  "verify": true, "no_cache": false, "echo": ...}``
``GET /stats``    cache shards, admission queue, tiers, degradation
                  counters, per-tenant tallies, fault-point hits,
                  circuit-breaker states, supervision counters
``GET /healthz``  liveness + in-flight + quarantine + drain status
``GET /workloads``  available workload names
================  ====================================================

See ``DESIGN.md`` §10 (daemon) and §12 (supervision, breakers, and
the chaos harness) for the architecture.
"""

from repro.serve.admission import AdmissionQueue, Backpressure, \
    QuotaExceeded
from repro.serve.app import ServeApp
from repro.serve.breaker import BreakerBoard, CircuitBreaker
from repro.serve.cache import ShardedResultCache
from repro.serve.http import ServeDaemon
from repro.serve.protocol import (
    RunRequest,
    classify_error,
    parse_run_request,
    result_payload,
    run_fingerprint,
)

__all__ = [
    "AdmissionQueue",
    "Backpressure",
    "BreakerBoard",
    "CircuitBreaker",
    "QuotaExceeded",
    "RunRequest",
    "ServeApp",
    "ServeDaemon",
    "ShardedResultCache",
    "classify_error",
    "parse_run_request",
    "result_payload",
    "run_fingerprint",
]
