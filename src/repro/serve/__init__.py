"""Specialization-as-a-service: an asyncio daemon over the harness.

``python -m repro.serve`` exposes the eval harness's (workload, config)
runs over HTTP with a sharded multi-tenant result cache, per-tenant
admission control, heat-tiered backend selection, and the degradation
ladder wired into the request path.  ``python -m repro.serve.loadgen``
is the matching deterministic traffic-replay load generator.

Endpoints
---------

================  ====================================================
``POST /run``     execute (or serve from cache) a workload run; body
                  ``{"workload": ..., "tenant": ..., "config": {...},
                  "verify": true, "no_cache": false}``
``GET /stats``    cache shards, admission queue, tiers, degradation
                  counters, per-tenant tallies, fault-point hits
``GET /healthz``  liveness + in-flight + quarantine summary
``GET /workloads``  available workload names
================  ====================================================

See ``DESIGN.md`` §10 for the architecture.
"""

from repro.serve.admission import AdmissionQueue, Backpressure, \
    QuotaExceeded
from repro.serve.app import ServeApp
from repro.serve.cache import ShardedResultCache
from repro.serve.http import ServeDaemon
from repro.serve.protocol import (
    RunRequest,
    classify_error,
    parse_run_request,
    result_payload,
    run_fingerprint,
)

__all__ = [
    "AdmissionQueue",
    "Backpressure",
    "QuotaExceeded",
    "RunRequest",
    "ServeApp",
    "ServeDaemon",
    "ShardedResultCache",
    "classify_error",
    "parse_run_request",
    "result_payload",
    "run_fingerprint",
]
