"""Run the serve daemon: ``python -m repro.serve [flags]``.

Flags::

    --host HOST             bind address (default 127.0.0.1)
    --port PORT             bind port (default 8950; 0 = ephemeral)
    --shards N              result-cache shards (default 8)
    --cache-capacity N      entries per shard (default 256)
    --workers N             executor threads == max concurrent runs
                            (default min(8, cpus))
    --max-queue N           admission queue depth before 503s
                            (default 1024)
    --tenant-quota N        per-tenant in-flight limit before 429s
                            (default 128)
    --faults SPEC           arm server-side fault points (serve.admit,
                            serve.respond, serve.worker_heartbeat,
                            cache.corrupt, cache.evict); combined with
                            $REPRO_FAULTS
    --breaker-threshold N   consecutive 5xx outcomes that trip a
                            per-(tenant, workload) circuit breaker
                            (default $REPRO_BREAKER_THRESHOLD or 5;
                            0 disables)
    --breaker-cooldown S    open-breaker cooldown before the half-open
                            probe (default $REPRO_BREAKER_COOLDOWN
                            or 1.0)
    --persist-dir DIR       activate the persistent artifact store at
                            DIR (default with --snapshot:
                            $REPRO_PERSIST_DIR or .repro_persist)
    --snapshot PATH         warm-start: unpack the snapshot at PATH into
                            the store before accepting traffic (a bad
                            snapshot is skipped; the daemon starts cold)

The daemon prints one ``serving on http://host:port`` line to stderr
once the socket is bound, so supervisors (and the CI smoke job) can
wait for readiness by watching stderr or polling ``GET /healthz``.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.faults import combine_specs, parse_spec
from repro.serve.app import (
    DEFAULT_CAPACITY_PER_SHARD,
    DEFAULT_MAX_QUEUE,
    DEFAULT_SHARDS,
    DEFAULT_TENANT_QUOTA,
    ServeApp,
)
from repro.serve.http import ServeDaemon

DEFAULT_PORT = 8950


def _raise_nofile_limit(target: int = 4096) -> None:
    """Best-effort RLIMIT_NOFILE bump for high-concurrency clients."""
    try:
        import resource
        soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
        if soft < target:
            resource.setrlimit(resource.RLIMIT_NOFILE,
                               (min(target, hard), hard))
    except (ImportError, ValueError, OSError):
        pass


def _parse_args(argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve (workload, config) runs over HTTP with a "
                    "sharded multi-tenant result cache.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    parser.add_argument("--shards", type=int, default=DEFAULT_SHARDS)
    parser.add_argument("--cache-capacity", type=int,
                        default=DEFAULT_CAPACITY_PER_SHARD,
                        help="entries per shard")
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--max-queue", type=int,
                        default=DEFAULT_MAX_QUEUE)
    parser.add_argument("--tenant-quota", type=int,
                        default=DEFAULT_TENANT_QUOTA)
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="server-side fault spec (e.g. "
                             "'serve.admit:every=50')")
    parser.add_argument("--persist-dir", default=None, metavar="DIR",
                        help="activate the persistent artifact store "
                             "at DIR")
    parser.add_argument("--snapshot", default=None, metavar="PATH",
                        help="warm-start from the snapshot at PATH "
                             "before accepting traffic")
    parser.add_argument("--breaker-threshold", type=int, default=None,
                        help="consecutive 5xx outcomes that trip a "
                             "per-(tenant, workload) circuit breaker "
                             "(default $REPRO_BREAKER_THRESHOLD or 5; "
                             "0 disables)")
    parser.add_argument("--breaker-cooldown", type=float, default=None,
                        help="seconds an open breaker waits before a "
                             "half-open probe (default "
                             "$REPRO_BREAKER_COOLDOWN or 1.0)")
    return parser.parse_args(argv)


def build_app(args: argparse.Namespace) -> ServeApp:
    import os
    fault_spec = combine_specs(args.faults,
                               os.environ.get("REPRO_FAULTS"))
    if fault_spec:
        parse_spec(fault_spec)  # fail fast on typos, before binding
    return ServeApp(
        shards=args.shards,
        cache_capacity=args.cache_capacity,
        workers=args.workers,
        max_queue=args.max_queue,
        tenant_quota=args.tenant_quota,
        fault_spec=fault_spec or None,
        persist_dir=args.persist_dir,
        snapshot_path=args.snapshot,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
    )


async def _amain(args: argparse.Namespace) -> int:
    app = build_app(args)
    if app.snapshot_path:
        if app.snapshot["error"]:
            print(f"snapshot {app.snapshot_path} ignored "
                  f"({app.snapshot['error']}); starting cold",
                  file=sys.stderr, flush=True)
        else:
            skipped = (f", {app.snapshot['skipped']} invalid "
                       "record(s) skipped"
                       if app.snapshot["skipped"] else "")
            print(f"warm start: {app.snapshot['loaded']} record(s) "
                  f"from {app.snapshot_path} into {app.persist_dir}"
                  f"{skipped}", file=sys.stderr, flush=True)
    daemon = ServeDaemon(app, host=args.host, port=args.port)
    await daemon.start()
    print(f"serving on http://{args.host}:{daemon.port} "
          f"(workers={app.admission.max_concurrency}, "
          f"shards={len(app.cache.stats()['shards'])}, "
          f"faults={app.fault_spec or 'none'})",
          file=sys.stderr, flush=True)
    try:
        await daemon.serve_forever()
    finally:
        await daemon.close()
        app.close()
    return 0


def main(argv: list[str]) -> int:
    args = _parse_args(argv)
    _raise_nofile_limit()
    try:
        return asyncio.run(_amain(args))
    except KeyboardInterrupt:
        print("interrupted; shutting down", file=sys.stderr)
        return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
