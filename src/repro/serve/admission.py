"""Async admission control: global concurrency, quotas, backpressure.

The daemon executes runs on a thread pool; this queue stands in front
of it and decides, on the event loop, whether a request may wait for a
worker at all.  Three limits apply, in order:

1. **Backpressure** — if more than ``max_queue`` requests are already
   waiting for a worker slot, the request is rejected immediately with
   :class:`Backpressure` (HTTP 503).  A full queue means the daemon is
   falling behind; admitting more work would only grow latency
   unboundedly.
2. **Per-tenant quota** — each tenant may have at most ``tenant_quota``
   requests in flight (queued + executing).  A tenant at its quota
   draws :class:`QuotaExceeded` (HTTP 429) while other tenants keep
   being admitted — one hot tenant cannot starve the rest.
3. **Global concurrency** — an :class:`asyncio.Semaphore` sized to the
   worker pool; requests past both gates wait here (this wait *is* the
   queue that limit 1 measures).

Everything here runs on the event-loop thread only, so plain counters
suffice — no locks.  Use :meth:`AdmissionQueue.slot` as an async
context manager around the executor call.
"""

from __future__ import annotations

import asyncio
import contextlib

from repro.errors import ReproError


class QuotaExceeded(ReproError):
    """A tenant is at its in-flight quota (HTTP 429)."""

    def __init__(self, tenant: str, in_flight: int, quota: int):
        self.tenant = tenant
        self.in_flight = in_flight
        self.quota = quota
        super().__init__(
            f"tenant {tenant!r} has {in_flight} request(s) in flight "
            f"(quota {quota})"
        )


class Backpressure(ReproError):
    """The admission queue is full (HTTP 503)."""

    def __init__(self, queued: int, limit: int):
        self.queued = queued
        self.limit = limit
        super().__init__(
            f"admission queue full ({queued} waiting, limit {limit})"
        )


class AdmissionQueue:
    """Event-loop-confined admission gate for the run executor."""

    def __init__(self, max_concurrency: int, max_queue: int,
                 tenant_quota: int):
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        self.max_concurrency = max_concurrency
        self.max_queue = max(0, max_queue)
        self.tenant_quota = max(1, tenant_quota)
        self._sem = asyncio.Semaphore(max_concurrency)
        self._waiting = 0
        self._running = 0
        self._tenant_in_flight: dict[str, int] = {}
        # Counters for /stats.
        self.admitted = 0
        self.rejected_quota = 0
        self.rejected_backpressure = 0
        self.peak_waiting = 0
        self.peak_running = 0

    # -- observability ---------------------------------------------------

    @property
    def waiting(self) -> int:
        return self._waiting

    @property
    def running(self) -> int:
        return self._running

    def stats(self) -> dict:
        return {
            "max_concurrency": self.max_concurrency,
            "max_queue": self.max_queue,
            "tenant_quota": self.tenant_quota,
            "waiting": self._waiting,
            "running": self._running,
            "admitted": self.admitted,
            "rejected_quota": self.rejected_quota,
            "rejected_backpressure": self.rejected_backpressure,
            "peak_waiting": self.peak_waiting,
            "peak_running": self.peak_running,
            "tenants_in_flight": {
                tenant: count
                for tenant, count in sorted(self._tenant_in_flight.items())
                if count
            },
        }

    # -- admission -------------------------------------------------------

    @contextlib.asynccontextmanager
    async def slot(self, tenant: str):
        """Hold one execution slot for ``tenant`` (async context)."""
        if self._waiting >= self.max_queue > 0:
            self.rejected_backpressure += 1
            raise Backpressure(self._waiting, self.max_queue)
        in_flight = self._tenant_in_flight.get(tenant, 0)
        if in_flight >= self.tenant_quota:
            self.rejected_quota += 1
            raise QuotaExceeded(tenant, in_flight, self.tenant_quota)
        self._tenant_in_flight[tenant] = in_flight + 1
        self._waiting += 1
        self.peak_waiting = max(self.peak_waiting, self._waiting)
        acquired = False
        try:
            await self._sem.acquire()
            acquired = True
            self._waiting -= 1
            self._running += 1
            self.peak_running = max(self.peak_running, self._running)
            self.admitted += 1
            yield
        finally:
            if acquired:
                self._running -= 1
                self._sem.release()
            else:
                self._waiting -= 1
            remaining = self._tenant_in_flight.get(tenant, 1) - 1
            if remaining:
                self._tenant_in_flight[tenant] = remaining
            else:
                self._tenant_in_flight.pop(tenant, None)
