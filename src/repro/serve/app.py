"""The serve application: routing, single-flight, tiering, degradation.

Request lifecycle for ``POST /run``:

1. **Parse/validate** on the event loop (:mod:`repro.serve.protocol`);
   structural problems never reach a worker thread.
2. **Cache lookup** in the sharded result cache (bumping the key's
   heat).  Deterministic outcomes are cached: successful runs *and*
   deterministic specialization failures (422s), mirroring the offline
   memoizer's error memoization.  Cache hits bypass the circuit
   breaker — serving known-good bytes is always safe.
3. **Circuit breaker** (:mod:`repro.serve.breaker`) — a per-(tenant,
   workload) breaker that has seen ``REPRO_BREAKER_THRESHOLD``
   consecutive 5xx outcomes rejects the miss with a ``circuit_open``
   503 (plus ``Retry-After``) until its cooldown admits a half-open
   probe.  Every non-cached outcome settles the breaker.
4. **Admission fault point** — ``serve.admit`` (armed via the daemon's
   ``--faults`` flag or ``REPRO_FAULTS``) can deterministically fail
   the request here, producing a structured 500.  This is the serve
   tier's own rung on the fault-injection ladder: it proves the daemon
   converts internal failures into responses instead of dying — and it
   feeds the breaker like any organic 5xx.
5. **Single-flight** — concurrent misses on the same (tenant, key)
   coalesce onto one execution; followers await the leader's future
   (a promotion storm of N identical requests costs one run).
6. **Admission queue** (:mod:`repro.serve.admission`): backpressure
   503s, per-tenant quota 429s, then a semaphore sized to the worker
   pool.
7. **Tiered execution** — the key's heat picks the backend
   (reference → threaded → pycodegen); the run executes on a thread
   pool via ``run_in_executor``.  Runs are thread-safe because every
   run builds a fresh runtime/machine stack (the thread-confinement
   invariant documented on :class:`~repro.runtime.cache.CodeCache`);
   per-request fault specs travel in ``OptConfig.faults``, never via
   the (shared) process environment.
8. **Degradation accounting** — ladder counters from the run's region
   stats are aggregated into daemon-wide and per-tenant totals,
   surfaced on ``/stats`` and ``/healthz``.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ThreadPoolExecutor

from repro.errors import SpecializationError, WorkerFault
from repro.evalharness.memo import memo_key
from repro.evalharness.runner import run_workload
from repro.faults import FaultRegistry
from repro.machine.costs import ALPHA_21164
from repro.runtime import persist
from repro.runtime.overhead import DEFAULT_OVERHEAD
from repro.serve import knobs
from repro.serve.admission import (
    AdmissionQueue,
    Backpressure,
    QuotaExceeded,
)
from repro.serve.breaker import BreakerBoard
from repro.serve.cache import ShardedResultCache
from repro.serve.protocol import (
    BadRequest,
    RunRequest,
    classify_error,
    error_body,
    parse_run_request,
    result_payload,
)
from repro.workloads import WORKLOADS_BY_NAME

DEFAULT_SHARDS = 8
DEFAULT_CAPACITY_PER_SHARD = 256
DEFAULT_MAX_QUEUE = 1024
DEFAULT_TENANT_QUOTA = 128

_DEGRADATION_KEYS = (
    "specialization_failures",
    "respecializations",
    "fallback_executions",
    "quarantined_contexts",
    "quarantine_skips",
    "budget_truncations",
    "cache_corruptions",
    "degraded_translations",
    "degraded_compilations",
)


class ServeApp:
    """Routing + request orchestration for the serve daemon."""

    def __init__(self, *,
                 shards: int = DEFAULT_SHARDS,
                 cache_capacity: int = DEFAULT_CAPACITY_PER_SHARD,
                 workers: int | None = None,
                 max_queue: int = DEFAULT_MAX_QUEUE,
                 tenant_quota: int = DEFAULT_TENANT_QUOTA,
                 fault_spec: str | None = None,
                 persist_dir: str | None = None,
                 snapshot_path: str | None = None,
                 breaker_threshold: int | None = None,
                 breaker_cooldown: float | None = None):
        import os
        if workers is None:
            workers = min(8, os.cpu_count() or 2)
        self.started = time.time()
        # Cross-process artifact persistence: activate the store (and
        # unpack a warm-start snapshot into it) before any request can
        # arrive.  A bad snapshot is skipped — the daemon starts cold
        # rather than refusing to start or executing stale artifacts.
        self.persist_dir = None
        self.snapshot_path = snapshot_path
        self.snapshot = {"loaded": 0, "skipped": 0, "error": None}
        if persist_dir or snapshot_path:
            self.persist_dir = persist.resolve_persist_dir(persist_dir)
            persist.activate(self.persist_dir)
            if snapshot_path:
                outcome = persist.load_snapshot(snapshot_path,
                                                self.persist_dir)
                if outcome.ok:
                    self.snapshot["loaded"] = outcome.loaded
                    self.snapshot["skipped"] = outcome.skipped
                else:
                    self.snapshot["error"] = outcome.error
        self.fault_spec = fault_spec or ""
        self.faults = FaultRegistry.from_spec(self.fault_spec)
        self.cache = ShardedResultCache(
            shards=shards,
            capacity_per_shard=cache_capacity,
            fault_spec=self.fault_spec or None,
        )
        self.admission = AdmissionQueue(
            max_concurrency=workers,
            max_queue=max_queue,
            tenant_quota=tenant_quota,
        )
        self.executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve",
        )
        self.breakers = BreakerBoard(threshold=breaker_threshold,
                                     cooldown=breaker_cooldown)
        self._inflight: dict[tuple[str, str], asyncio.Future] = {}
        #: Set while a SIGTERM drain is in progress: keep-alive turns
        #: off (clients reconnect elsewhere) and /healthz reports it.
        self.draining = False
        self.respond_drops = 0
        # /stats counters (event-loop thread only).
        self.requests_total = 0
        self.status_counts: dict[str, int] = {}
        self.error_codes: dict[str, int] = {}
        self.coalesced = 0
        self.cache_served = 0
        self.executions = 0
        self.tiers: dict[str, int] = {}
        self.degradation = {name: 0 for name in _DEGRADATION_KEYS}
        self.degraded_runs = 0
        self.tenants: dict[str, dict[str, int]] = {}

    def close(self) -> None:
        self.executor.shutdown(wait=False, cancel_futures=True)

    # -- routing ---------------------------------------------------------

    async def handle(self, method: str, path: str,
                     body: bytes) -> tuple[int, dict]:
        """Dispatch one request; never raises."""
        self.requests_total += 1
        try:
            if path == "/healthz":
                status, payload = self._require_get(method) \
                    or (200, self._healthz())
            elif path == "/stats":
                status, payload = self._require_get(method) \
                    or (200, self._stats())
            elif path == "/workloads":
                status, payload = self._require_get(method) or (
                    200, {"workloads": sorted(WORKLOADS_BY_NAME)})
            elif path == "/run":
                if method != "POST":
                    status, payload = 405, error_body(
                        "method_not_allowed", f"{path} requires POST")
                else:
                    status, payload = await self._run(body)
            else:
                status, payload = 404, error_body(
                    "not_found", f"unknown path {path!r}")
        except (QuotaExceeded, Backpressure) as exc:
            status, payload = self._classify_admission(exc)
        except Exception as exc:  # the daemon must never die on a request
            status, payload = classify_error(exc)
        self.status_counts[str(status)] = \
            self.status_counts.get(str(status), 0) + 1
        if status >= 400 and isinstance(payload.get("error"), dict):
            code = payload["error"].get("code", "unknown")
            self.error_codes[code] = self.error_codes.get(code, 0) + 1
        return status, payload

    @staticmethod
    def _require_get(method: str):
        if method != "GET":
            return 405, error_body("method_not_allowed",
                                   "this endpoint requires GET")
        return None

    @staticmethod
    def _classify_admission(exc) -> tuple[int, dict]:
        if isinstance(exc, QuotaExceeded):
            return 429, error_body("quota_exceeded", str(exc),
                                   tenant=exc.tenant,
                                   in_flight=exc.in_flight,
                                   quota=exc.quota,
                                   retry_after=1)
        return 503, error_body("backpressure", str(exc),
                               queued=exc.queued, limit=exc.limit,
                               retry_after=1)

    def drop_response(self) -> bool:
        """``serve.respond`` fault hook, called just before a response
        is written.  Firing simulates the worst-case worker loss: the
        work is done (and possibly cached) but the response never
        reaches the client.  Under a supervisor the whole process dies
        (the supervisor recycles it); an unsupervised daemon merely
        cuts the connection so in-process tests stay alive.

        Suppressed while draining: with the listener closed a client
        cannot retry into another worker, so firing here would turn a
        simulated crash into a guaranteed lost response — the drain
        guarantee is the one property this fault must not break."""
        if self.draining \
                or not self.faults.enabled("serve.respond") \
                or not self.faults.should_fire("serve.respond"):
            return False
        self.respond_drops += 1
        if knobs.worker_id() is not None:
            import os
            import sys
            sys.stderr.flush()
            os._exit(knobs.EXIT_RESPOND_FAULT)
        return True

    # -- POST /run -------------------------------------------------------

    async def _run(self, body: bytes) -> tuple[int, dict]:
        try:
            decoded = json.loads(body)
        except ValueError:
            raise BadRequest("request body is not valid JSON") from None
        request = parse_run_request(decoded)
        status, payload = await self._routed(request)
        if request.echo is not None:
            payload = dict(payload, echo=request.echo)
        return status, payload

    async def _routed(self, request: RunRequest) -> tuple[int, dict]:
        workload = WORKLOADS_BY_NAME[request.workload]
        run_key = memo_key(workload, request.config, ALPHA_21164,
                           DEFAULT_OVERHEAD, request.verify)
        tenant = request.tenant
        self._tenant(tenant)["requests"] += 1

        if not request.no_cache:
            envelope = self.cache.get(tenant, run_key)
            if envelope is not None:
                self.cache_served += 1
                return envelope["status"], dict(envelope["body"],
                                                cached=True)

        # Circuit-breaker gate (after the cache: serving known-good
        # cached bytes is always safe, even for a tripped pair).
        wait = self.breakers.acquire(tenant, request.workload)
        if wait is not None:
            self._tenant(tenant)["rejected"] += 1
            return 503, error_body(
                "circuit_open",
                f"circuit breaker open for tenant {tenant!r} "
                f"workload {request.workload!r}",
                tenant=tenant, workload=request.workload,
                retry_after=round(wait, 3))

        status: int | None = None
        try:
            if self.faults.should_fire("serve.admit"):
                raise WorkerFault(
                    "injected fault: serve.admit failed the request"
                )
            status, payload = await self._flight(request, workload,
                                                 run_key)
            return status, payload
        except (QuotaExceeded, Backpressure) as exc:
            self._tenant(tenant)["rejected"] += 1
            status, payload = self._classify_admission(exc)
            return status, payload
        except Exception as exc:
            status, payload = classify_error(exc)
            return status, payload
        finally:
            self.breakers.settle(tenant, request.workload, status)

    async def _flight(self, request: RunRequest, workload,
                      run_key: str) -> tuple[int, dict]:
        """Single-flight coalescing around the admitted leader."""
        tenant = request.tenant
        flight_key = (tenant, run_key)
        leader = self._inflight.get(flight_key)
        if leader is not None and not request.no_cache:
            self.coalesced += 1
            status, payload = await asyncio.shield(leader)
            return status, dict(payload, coalesced=True)

        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[flight_key] = fut
        outcome: tuple[int, dict] = (500, error_body(
            "internal_error", "request leader failed"))
        try:
            outcome = await self._lead(request, workload, run_key)
            return outcome
        finally:
            self._inflight.pop(flight_key, None)
            if not fut.done():
                fut.set_result(outcome)

    async def _lead(self, request: RunRequest, workload,
                    run_key: str) -> tuple[int, dict]:
        """Admission + execution for the single-flight leader."""
        tenant = request.tenant
        try:
            async with self.admission.slot(tenant):
                backend = self.cache.backend_for(tenant, run_key)
                payload = await asyncio.get_running_loop().run_in_executor(
                    self.executor, self._execute, request, run_key,
                    backend)
                self.executions += 1
                self.tiers[backend] = self.tiers.get(backend, 0) + 1
                self._absorb_degradation(tenant, payload["degradation"])
                return 200, payload
        except (QuotaExceeded, Backpressure) as exc:
            self._tenant(tenant)["rejected"] += 1
            return self._classify_admission(exc)
        except Exception as exc:
            status, body = classify_error(exc)
            self._tenant(tenant)["errors"] += 1
            if status == 422 and isinstance(exc, SpecializationError) \
                    and not request.no_cache:
                # Deterministic failure: cache it like the offline
                # memoizer does, so repeats are instant 422s.
                self.cache.put(tenant, run_key,
                               {"status": 422, "body": body})
            return status, body

    def _execute(self, request: RunRequest, run_key: str,
                 backend: str) -> dict:
        """Worker-thread body: run the workload, cache the payload."""
        workload = WORKLOADS_BY_NAME[request.workload]
        result = run_workload(workload, request.config,
                              verify=request.verify, backend=backend)
        payload = result_payload(result, backend)
        if not request.no_cache:
            # Insertion happens on the worker thread; the shard's lock
            # serializes it against event-loop lookups.
            self.cache.put(request.tenant, run_key,
                           {"status": 200, "body": payload})
        return payload

    # -- accounting ------------------------------------------------------

    def _tenant(self, tenant: str) -> dict[str, int]:
        entry = self.tenants.get(tenant)
        if entry is None:
            entry = {"requests": 0, "errors": 0, "rejected": 0,
                     "degraded_runs": 0}
            self.tenants[tenant] = entry
        return entry

    def _absorb_degradation(self, tenant: str,
                            counters: dict[str, int]) -> None:
        degraded = False
        for name in _DEGRADATION_KEYS:
            value = counters.get(name, 0)
            if value:
                degraded = True
                self.degradation[name] += value
        if degraded:
            self.degraded_runs += 1
            self._tenant(tenant)["degraded_runs"] += 1

    # -- GET endpoints ---------------------------------------------------

    def _healthz(self) -> dict:
        return {
            "status": "draining" if self.draining else "ok",
            "uptime_seconds": round(time.time() - self.started, 3),
            "requests_total": self.requests_total,
            "in_flight": self.admission.waiting + self.admission.running,
            "degraded_runs": self.degraded_runs,
            "quarantined_contexts":
                self.degradation["quarantined_contexts"],
            "worker": knobs.worker_id(),
            "draining": self.draining,
        }

    @staticmethod
    def _supervisor_stats() -> dict | None:
        """Supervision counters, when running under a supervisor.

        The supervisor rewrites its state file atomically on every
        lifecycle event; any worker can therefore surface fleet-wide
        restart counters on its own ``/stats`` without IPC.
        """
        path = knobs.supervisor_state_path()
        if path is None:
            return None
        try:
            with open(path, encoding="utf-8") as handle:
                state = json.load(handle)
        except (OSError, ValueError):
            return {"state_file": path, "readable": False}
        state["state_file"] = path
        state["readable"] = True
        return state

    def _persist_stats(self) -> dict | None:
        store = persist.active_store()
        if store is None:
            return None
        return dict(store.stats(),
                    snapshot_path=self.snapshot_path,
                    snapshot=dict(self.snapshot))

    def _stats(self) -> dict:
        return {
            "server": {
                "uptime_seconds": round(time.time() - self.started, 3),
                "requests_total": self.requests_total,
                "status_counts": dict(sorted(self.status_counts.items())),
                "error_codes": dict(sorted(self.error_codes.items())),
                "executions": self.executions,
                "cache_served": self.cache_served,
                "coalesced": self.coalesced,
                "tiers": dict(sorted(self.tiers.items())),
                "respond_drops": self.respond_drops,
                "draining": self.draining,
                "fault_spec": self.fault_spec,
                "fault_points": {
                    point: {"hits": hits, "fires": fires}
                    for point, (hits, fires)
                    in self.faults.summary().items()
                },
            },
            "cache": self.cache.stats(),
            "persist": self._persist_stats(),
            "admission": self.admission.stats(),
            "breakers": self.breakers.stats(),
            "supervisor": self._supervisor_stats(),
            "degradation": dict(self.degradation),
            "degraded_runs": self.degraded_runs,
            "tenants": {
                tenant: dict(counts)
                for tenant, counts in sorted(self.tenants.items())
            },
        }
