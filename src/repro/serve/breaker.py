"""Per-(tenant, workload) circuit breakers for the serve request path.

A breaker protects the daemon from burning worker slots on a
(tenant, workload) pair that keeps failing with infrastructure errors:
after ``threshold`` *consecutive* failure signals the breaker **opens**
and the pair draws immediate 503s (code ``circuit_open``, with a
``retry_after`` hint mirrored into the ``Retry-After`` header) without
touching admission or the executor.  After ``cooldown`` seconds the
breaker goes **half-open**: exactly one probe request is admitted while
everyone else keeps getting 503s; a successful probe closes the
breaker, a failed one re-opens it for another cooldown.

What counts as a failure signal is deliberately narrow — 5xx statuses
(injected admission faults, machine/verification failures, harness
errors) and ``None`` (the request died without producing a status, e.g.
an exception escaping the flight path).  Deterministic 422s are the
*run's* outcome, not the daemon's, and 429/503 shed load by design;
both settle as **neutral**: they release a held probe without moving
the state machine, so load shedding can never trip or heal a breaker.

Clean traffic therefore never observes a breaker at all — the chaos
harness leans on that to keep served fingerprints byte-identical to the
offline oracle while breakers trip around the faulted legs.

State machine::

    closed --(threshold consecutive failures)--> open
    open --(cooldown elapses; next acquire)--> half_open (one probe)
    half_open --(probe succeeds)--> closed
    half_open --(probe fails)--> open (fresh cooldown)

Everything runs on the event-loop thread (the app settles outcomes
before handing control back), so plain counters suffice — no locks.
"""

from __future__ import annotations

import time

from repro.serve.knobs import (
    resolve_breaker_cooldown,
    resolve_breaker_threshold,
)

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Statuses that settle as breaker failures.  ``None`` (no status
#: produced) is also a failure; see :meth:`CircuitBreaker.settle`.
FAILURE_STATUSES = (500, 502)
#: Statuses that settle as successes (the backend did its job).
SUCCESS_STATUSES = (200, 422)


class CircuitBreaker:
    """One breaker; see the module docstring for the state machine."""

    __slots__ = ("threshold", "cooldown", "state", "failures",
                 "opened_at", "probing", "trips")

    def __init__(self, threshold: int, cooldown: float):
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = CLOSED
        self.failures = 0          # consecutive failure signals
        self.opened_at = 0.0
        self.probing = False       # a half-open probe is in flight
        self.trips = 0

    def acquire(self, now: float) -> float | None:
        """Try to admit a request.

        Returns ``None`` when admitted (closed, or taking the half-open
        probe slot) or the remaining ``retry_after`` seconds when the
        request must be rejected with a 503.
        """
        if self.state == CLOSED:
            return None
        if self.state == OPEN:
            remaining = self.cooldown - (now - self.opened_at)
            if remaining > 0:
                return max(0.001, remaining)
            self.state = HALF_OPEN
            self.probing = False
        # half-open: one probe at a time.
        if self.probing:
            return max(0.001, self.cooldown)
        self.probing = True
        return None

    def settle(self, status: int | None, now: float) -> None:
        """Feed one admitted request's final status back."""
        probe = self.probing and self.state == HALF_OPEN
        if probe:
            self.probing = False
        if status in SUCCESS_STATUSES:
            self.failures = 0
            if probe:
                self.state = CLOSED
            return
        if status is None or status in FAILURE_STATUSES:
            if probe:
                # The probe failed: straight back to open.
                self.state = OPEN
                self.opened_at = now
                self.trips += 1
                return
            self.failures += 1
            if self.state == CLOSED and self.failures >= self.threshold:
                self.state = OPEN
                self.opened_at = now
                self.trips += 1
            return
        # 429/503 and anything else: neutral — no state movement.


class BreakerBoard:
    """All breakers for one daemon, keyed ``(tenant, workload)``.

    ``threshold=0`` (the resolved default of ``REPRO_BREAKER_THRESHOLD``
    when explicitly zeroed) disables the board: :meth:`acquire` always
    admits and :meth:`settle` is a no-op, so the request path has no
    breaker overhead at all.
    """

    def __init__(self, threshold: int | None = None,
                 cooldown: float | None = None, *,
                 clock=time.monotonic):
        self.threshold = resolve_breaker_threshold() \
            if threshold is None else threshold
        self.cooldown = resolve_breaker_cooldown() \
            if cooldown is None else cooldown
        self.enabled = self.threshold > 0
        self._clock = clock
        self._breakers: dict[tuple[str, str], CircuitBreaker] = {}
        self.rejected = 0

    def _get(self, tenant: str, workload: str) -> CircuitBreaker:
        key = (tenant, workload)
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(self.threshold, self.cooldown)
            self._breakers[key] = breaker
        return breaker

    def acquire(self, tenant: str, workload: str) -> float | None:
        """``None`` = admitted; a float = rejected, retry after that."""
        if not self.enabled:
            return None
        wait = self._get(tenant, workload).acquire(self._clock())
        if wait is not None:
            self.rejected += 1
        return wait

    def settle(self, tenant: str, workload: str,
               status: int | None) -> None:
        if not self.enabled:
            return
        breaker = self._breakers.get((tenant, workload))
        if breaker is not None:
            breaker.settle(status, self._clock())

    def state_of(self, tenant: str, workload: str) -> str:
        breaker = self._breakers.get((tenant, workload))
        return breaker.state if breaker is not None else CLOSED

    def stats(self) -> dict:
        states = {CLOSED: 0, OPEN: 0, HALF_OPEN: 0}
        open_now = []
        trips = 0
        for (tenant, workload), breaker in self._breakers.items():
            states[breaker.state] += 1
            trips += breaker.trips
            if breaker.state != CLOSED:
                open_now.append(f"{tenant}/{workload}")
        return {
            "enabled": self.enabled,
            "threshold": self.threshold,
            "cooldown_seconds": self.cooldown,
            "tracked": len(self._breakers),
            "states": states,
            "trips": trips,
            "rejected": self.rejected,
            "open_now": sorted(open_now),
        }
