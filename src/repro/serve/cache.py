"""Sharded, multi-tenant result cache for the serve daemon.

Each shard is a locked, bounded :class:`~repro.runtime.cache.CodeCache`
— the same open-addressing table, clock/second-chance eviction, and
per-entry integrity stamps the runtime's ``cache_all`` dispatch policy
uses, reused here one level up the stack for whole *run results*.  Keys
are ``(tenant, run_key)`` pairs where ``run_key`` is the eval harness's
content-hash :func:`~repro.evalharness.memo.memo_key`, so two tenants
submitting the identical (workload, config) pair still get isolated
entries (and isolated eviction pressure), while one tenant re-running
the same request is a guaranteed hit.

Shard choice is an FNV-1a hash of the key, independent of the
in-shard probe hash, so hot tenants spread across shards instead of
piling onto one lock.

Heat-tiered backend selection
-----------------------------

Each key accumulates a *heat* counter (bumped on every lookup, hit or
miss) that **survives eviction** — heat lives beside the shards, not in
them.  :meth:`ShardedResultCache.backend_for` maps heat onto the
backend ladder: cold keys execute on the reference interpreter (lowest
setup cost), warm keys on the threaded backend, and hot keys on the
Python-codegen backend (highest setup cost, fastest steady state).
Because every counted backend produces byte-identical statistics, the
tier choice is purely a latency/throughput trade — a re-computation
after eviction returns the exact bytes the first computation did, just
faster.  Thresholds come from ``REPRO_SERVE_TIER_THREADED`` /
``REPRO_SERVE_TIER_PYCODEGEN`` (requests before promotion, defaults
2 / 8).

Thread safety: shard ``CodeCache`` objects are built with ``lock=True``
and are touched from both the event loop (lookups) and executor worker
threads (insertions after a run completes).  The heat table and the
hit/miss tallies are touched **only from the event-loop thread** — the
daemon bumps heat at admission time, before handing the request to a
worker — so they need no lock.  Each shard gets its *own*
:class:`~repro.faults.FaultRegistry` parsed from the daemon's fault
spec, so ``cache.corrupt`` / ``cache.evict`` injection stays
deterministic per shard and no registry is shared across threads.
"""

from __future__ import annotations

import os

from repro.faults import FaultRegistry
from repro.runtime.cache import CodeCache, entry_checksum

#: Heat (lookups for one key) at which recomputation is promoted from
#: the reference interpreter to the threaded backend.
DEFAULT_TIER_THREADED = 2
#: Heat at which recomputation is promoted to the pycodegen backend.
DEFAULT_TIER_PYCODEGEN = 8

ENV_TIER_THREADED = "REPRO_SERVE_TIER_THREADED"
ENV_TIER_PYCODEGEN = "REPRO_SERVE_TIER_PYCODEGEN"


def _fnv(text: str) -> int:
    h = 0xcbf29ce484222325
    for byte in text.encode("utf-8"):
        h = ((h ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


def _resolve_tier(env: str, default: int) -> int:
    raw = os.environ.get(env, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return max(1, value)


class ShardedResultCache:
    """``(tenant, run_key) -> response payload`` over N locked shards."""

    def __init__(self, shards: int = 8, capacity_per_shard: int = 256,
                 fault_spec: str | None = None):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self._shards: list[CodeCache] = []
        for _ in range(shards):
            faults = FaultRegistry.from_spec(fault_spec) \
                if fault_spec else None
            self._shards.append(CodeCache(
                capacity=capacity_per_shard,
                checksum=entry_checksum,
                faults=faults,
                lock=True,
            ))
        self._heat: dict[tuple[str, str], int] = {}
        self._heat_cap = max(1024, 8 * capacity_per_shard * shards)
        self._hits = [0] * shards
        self._misses = [0] * shards
        self.tier_threaded = _resolve_tier(
            ENV_TIER_THREADED, DEFAULT_TIER_THREADED)
        self.tier_pycodegen = _resolve_tier(
            ENV_TIER_PYCODEGEN, DEFAULT_TIER_PYCODEGEN)
        if self.tier_pycodegen < self.tier_threaded:
            self.tier_pycodegen = self.tier_threaded

    # -- keying ----------------------------------------------------------

    def _shard_of(self, tenant: str, run_key: str) -> int:
        return _fnv(f"{tenant}\x00{run_key}") % len(self._shards)

    # -- lookup / insert (event loop + worker threads) -------------------

    def get(self, tenant: str, run_key: str):
        """Lookup a cached payload, bumping the key's heat.

        Event-loop thread only (heat and tallies are unlocked).
        """
        index = self._shard_of(tenant, run_key)
        key = (tenant, run_key)
        heat = self._heat.get(key, 0) + 1
        if heat == 1 and len(self._heat) >= self._heat_cap:
            # Bound the heat table: forget the coldest half.  Rare
            # (cap is 8x the cache population) and deterministic.
            survivors = sorted(self._heat.items(),
                               key=lambda item: (-item[1], item[0]))
            self._heat = dict(survivors[:self._heat_cap // 2])
        self._heat[key] = heat
        found = self._shards[index].lookup(key)
        if found.hit:
            self._hits[index] += 1
            return found.value
        self._misses[index] += 1
        return None

    def put(self, tenant: str, run_key: str, payload: dict) -> None:
        """Insert a payload (any thread; the shard lock serializes)."""
        index = self._shard_of(tenant, run_key)
        self._shards[index].insert((tenant, run_key), payload)

    # -- tiering ---------------------------------------------------------

    def heat(self, tenant: str, run_key: str) -> int:
        return self._heat.get((tenant, run_key), 0)

    def backend_for(self, tenant: str, run_key: str) -> str:
        """Pick an execution backend from the key's accumulated heat."""
        heat = self.heat(tenant, run_key)
        if heat >= self.tier_pycodegen:
            return "pycodegen"
        if heat >= self.tier_threaded:
            return "threaded"
        return "reference"

    # -- stats -----------------------------------------------------------

    def stats(self) -> dict:
        """Per-shard and aggregate statistics for ``GET /stats``."""
        shards = []
        for index, shard in enumerate(self._shards):
            lookups = self._hits[index] + self._misses[index]
            shards.append({
                "entries": len(shard),
                "capacity": shard.capacity,
                "hits": self._hits[index],
                "misses": self._misses[index],
                "hit_rate": round(self._hits[index] / lookups, 4)
                if lookups else 0.0,
                "evictions": shard.evictions,
                "corrupt_hits": shard.corrupt_hits,
            })
        lookups = [s["hits"] + s["misses"] for s in shards]
        busiest = max(lookups) if lookups else 0
        quietest = min(lookups) if lookups else 0
        return {
            "shards": shards,
            "entries": sum(s["entries"] for s in shards),
            "hits": sum(self._hits),
            "misses": sum(self._misses),
            "evictions": sum(s["evictions"] for s in shards),
            "corrupt_hits": sum(s["corrupt_hits"] for s in shards),
            "heat_tracked_keys": len(self._heat),
            # 1.0 = every shard saw the same traffic; 0.0 = one shard
            # took everything.
            "shard_balance": round(quietest / busiest, 4)
            if busiest else 1.0,
        }
