"""Minimal HTTP/1.1 server over ``asyncio`` streams (stdlib only).

The daemon speaks just enough HTTP for its JSON API: request line,
headers, ``Content-Length`` bodies, and keep-alive (the load generator
holds one connection per virtual client, so connection reuse matters
at 1000-way concurrency).  No chunked encoding, no TLS, no pipelining
guarantees beyond strict request/response alternation — this is a
measurement harness, not a general server.

Responses are JSON with sorted keys, so identical results serialize to
identical bytes — the property the load generator's byte-identical
verification leans on.
"""

from __future__ import annotations

import asyncio
import json

from repro.serve.protocol import MAX_BODY_BYTES

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}

#: Per-header-block read limit; a client sending an unbounded header
#: section is cut off rather than buffered.
_MAX_HEADER_BYTES = 16 * 1024


class ProtocolError(Exception):
    """Malformed HTTP from the client; carries the response status."""

    def __init__(self, status: int, message: str):
        self.status = status
        super().__init__(message)


async def read_request(reader: asyncio.StreamReader):
    """Read one request; returns ``(method, path, headers, body)``.

    Returns ``None`` on a clean EOF (client closed between requests).
    Raises :class:`ProtocolError` on malformed input.
    """
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as err:
        if not err.partial:
            return None
        raise ProtocolError(400, "truncated request line") from None
    except asyncio.LimitOverrunError:
        raise ProtocolError(400, "request line too long") from None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(400, f"malformed request line {line!r}")
    method, path, _version = parts
    headers: dict[str, str] = {}
    total = len(line)
    while True:
        try:
            line = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise ProtocolError(400, "truncated headers") from None
        total += len(line)
        if total > _MAX_HEADER_BYTES:
            raise ProtocolError(400, "header section too large")
        if line == b"\r\n":
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(400, f"malformed header {line!r}")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ProtocolError(400,
                            f"bad Content-Length {length_text!r}") from None
    if length < 0:
        raise ProtocolError(400, "negative Content-Length")
    if length > MAX_BODY_BYTES:
        raise ProtocolError(413, f"body of {length} bytes exceeds "
                                 f"{MAX_BODY_BYTES}")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolError(400, "truncated body") from None
    return method, path, headers, body


def retry_after_hint(status: int, payload: dict) -> int | None:
    """``Retry-After`` seconds for a shed request, if the body names one.

    429/503 bodies carry a ``retry_after`` field (circuit breakers put
    the remaining cooldown there; admission rejections a fixed hint) —
    mirror it into the standard header, rounded up to whole seconds as
    the header requires.
    """
    if status not in (429, 503):
        return None
    error = payload.get("error")
    if not isinstance(error, dict):
        return None
    seconds = error.get("retry_after")
    if not isinstance(seconds, (int, float)) or seconds < 0:
        return None
    return max(1, int(-(-seconds // 1)))


def render_response(status: int, payload: dict,
                    keep_alive: bool = True) -> bytes:
    """Serialize a JSON response (sorted keys → deterministic bytes)."""
    body = json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    retry_after = retry_after_hint(status, payload)
    extra = f"Retry-After: {retry_after}\r\n" \
        if retry_after is not None else ""
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extra}"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"\r\n"
    )
    return head.encode("latin-1") + body


class ServeDaemon:
    """Bind/serve wrapper tying the HTTP layer to a ``ServeApp``.

    ``sock`` lets a supervisor pass a pre-bound listening socket so N
    forked workers accept from one shared queue; without it the daemon
    binds ``host:port`` itself.  Open connections and in-flight
    requests are tracked so :meth:`drain` can stop accepting, let
    in-flight responses complete, and then force idle keep-alive
    connections closed — the graceful half of worker recycling.
    """

    def __init__(self, app, host: str = "127.0.0.1", port: int = 0,
                 sock=None):
        self.app = app
        self.host = host
        self.port = port
        self._sock = sock
        self._server: asyncio.AbstractServer | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self.in_flight = 0

    async def start(self) -> None:
        limit = MAX_BODY_BYTES + _MAX_HEADER_BYTES
        if self._sock is not None:
            self._server = await asyncio.start_server(
                self._on_connection, sock=self._sock, limit=limit,
            )
        else:
            self._server = await asyncio.start_server(
                self._on_connection, self.host, self.port, limit=limit,
            )
        # Resolve the real port when started with port 0 (tests).
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def drain(self, timeout: float = 30.0) -> bool:
        """Graceful shutdown: stop accepting, finish in-flight work.

        Closes the listener, waits up to ``timeout`` seconds for every
        in-flight request to write its response, then closes all
        remaining (idle keep-alive) connections.  Returns whether the
        drain completed without abandoning an in-flight request.
        """
        await self.close()
        deadline = asyncio.get_running_loop().time() + timeout
        while self.in_flight > 0 \
                and asyncio.get_running_loop().time() < deadline:
            await asyncio.sleep(0.02)
        completed = self.in_flight == 0
        for writer in list(self._writers):
            try:
                writer.close()
            except OSError:
                pass
        await asyncio.sleep(0)
        return completed

    # -- connection handling --------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ProtocolError as err:
                    writer.write(render_response(
                        err.status,
                        {"error": {"code": "protocol_error",
                                   "message": str(err)}},
                        keep_alive=False,
                    ))
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, headers, body = request
                self.in_flight += 1
                try:
                    status, payload = await self.app.handle(
                        method, path, body)
                    if self.app.drop_response():
                        # serve.respond fired: the worker dies (or, in
                        # an unsupervised daemon, the connection is cut)
                        # after doing the work but before the bytes go
                        # out — the client must retry into a recycled
                        # worker and lose nothing.
                        break
                    keep_alive = (
                        headers.get("connection", "").lower() != "close"
                        and not self.app.draining
                    )
                    writer.write(render_response(status, payload,
                                                 keep_alive))
                    await writer.drain()
                finally:
                    self.in_flight -= 1
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, TimeoutError):
            pass
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
