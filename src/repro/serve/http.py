"""Minimal HTTP/1.1 server over ``asyncio`` streams (stdlib only).

The daemon speaks just enough HTTP for its JSON API: request line,
headers, ``Content-Length`` bodies, and keep-alive (the load generator
holds one connection per virtual client, so connection reuse matters
at 1000-way concurrency).  No chunked encoding, no TLS, no pipelining
guarantees beyond strict request/response alternation — this is a
measurement harness, not a general server.

Responses are JSON with sorted keys, so identical results serialize to
identical bytes — the property the load generator's byte-identical
verification leans on.
"""

from __future__ import annotations

import asyncio
import json

from repro.serve.protocol import MAX_BODY_BYTES

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}

#: Per-header-block read limit; a client sending an unbounded header
#: section is cut off rather than buffered.
_MAX_HEADER_BYTES = 16 * 1024


class ProtocolError(Exception):
    """Malformed HTTP from the client; carries the response status."""

    def __init__(self, status: int, message: str):
        self.status = status
        super().__init__(message)


async def read_request(reader: asyncio.StreamReader):
    """Read one request; returns ``(method, path, headers, body)``.

    Returns ``None`` on a clean EOF (client closed between requests).
    Raises :class:`ProtocolError` on malformed input.
    """
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as err:
        if not err.partial:
            return None
        raise ProtocolError(400, "truncated request line") from None
    except asyncio.LimitOverrunError:
        raise ProtocolError(400, "request line too long") from None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(400, f"malformed request line {line!r}")
    method, path, _version = parts
    headers: dict[str, str] = {}
    total = len(line)
    while True:
        try:
            line = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise ProtocolError(400, "truncated headers") from None
        total += len(line)
        if total > _MAX_HEADER_BYTES:
            raise ProtocolError(400, "header section too large")
        if line == b"\r\n":
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(400, f"malformed header {line!r}")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ProtocolError(400,
                            f"bad Content-Length {length_text!r}") from None
    if length < 0:
        raise ProtocolError(400, "negative Content-Length")
    if length > MAX_BODY_BYTES:
        raise ProtocolError(413, f"body of {length} bytes exceeds "
                                 f"{MAX_BODY_BYTES}")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolError(400, "truncated body") from None
    return method, path, headers, body


def render_response(status: int, payload: dict,
                    keep_alive: bool = True) -> bytes:
    """Serialize a JSON response (sorted keys → deterministic bytes)."""
    body = json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"\r\n"
    )
    return head.encode("latin-1") + body


class ServeDaemon:
    """Bind/serve wrapper tying the HTTP layer to a ``ServeApp``."""

    def __init__(self, app, host: str = "127.0.0.1", port: int = 0):
        self.app = app
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port,
            limit=MAX_BODY_BYTES + _MAX_HEADER_BYTES,
        )
        # Resolve the real port when started with port 0 (tests).
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling --------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ProtocolError as err:
                    writer.write(render_response(
                        err.status,
                        {"error": {"code": "protocol_error",
                                   "message": str(err)}},
                        keep_alive=False,
                    ))
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, headers, body = request
                status, payload = await self.app.handle(method, path, body)
                keep_alive = headers.get("connection", "").lower() != "close"
                writer.write(render_response(status, payload, keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, TimeoutError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
