"""Resolved environment knobs for the serve tier's resilience layer.

Import-light on purpose: :mod:`repro.evalharness.memo` feeds these
resolved values into the run memo key (schema 6), so this module must
not pull in the daemon, asyncio, or any workload code.

==============================  =======  ==============================
environment variable            default  meaning
==============================  =======  ==============================
``REPRO_BREAKER_THRESHOLD``     5        consecutive failure signals
                                         (5xx) that trip a per-(tenant,
                                         workload) circuit breaker;
                                         0 disables breakers entirely
``REPRO_BREAKER_COOLDOWN``      1.0      seconds an open breaker waits
                                         before admitting a half-open
                                         probe
``REPRO_SERVE_PROCS``           2        supervised daemon worker
                                         processes (``python -m
                                         repro.serve.supervisor``)
``REPRO_HEARTBEAT_INTERVAL``    0.5      seconds between worker
                                         heartbeat writes
``REPRO_HEARTBEAT_TIMEOUT``     5.0      silence after which the
                                         supervisor declares a worker
                                         hung and recycles it
``REPRO_DRAIN_TIMEOUT``         30.0     seconds a draining worker (or
                                         the supervisor) waits for
                                         in-flight work before forcing
                                         shutdown
==============================  =======  ==============================
"""

from __future__ import annotations

import os

DEFAULT_BREAKER_THRESHOLD = 5
DEFAULT_BREAKER_COOLDOWN = 1.0
DEFAULT_SERVE_PROCS = 2
DEFAULT_HEARTBEAT_INTERVAL = 0.5
DEFAULT_HEARTBEAT_TIMEOUT = 5.0
DEFAULT_DRAIN_TIMEOUT = 30.0

ENV_BREAKER_THRESHOLD = "REPRO_BREAKER_THRESHOLD"
ENV_BREAKER_COOLDOWN = "REPRO_BREAKER_COOLDOWN"
ENV_SERVE_PROCS = "REPRO_SERVE_PROCS"
ENV_HEARTBEAT_INTERVAL = "REPRO_HEARTBEAT_INTERVAL"
ENV_HEARTBEAT_TIMEOUT = "REPRO_HEARTBEAT_TIMEOUT"
ENV_DRAIN_TIMEOUT = "REPRO_DRAIN_TIMEOUT"

#: Worker processes publish their identity here so fault points that
#: crash the process (``serve.respond``) know it is safe to ``os._exit``
#: — an unsupervised (in-process test) daemon degrades to dropping the
#: connection instead.
ENV_WORKER_ID = "REPRO_SERVE_WORKER"
#: Path of the supervisor's atomically rewritten state file; workers
#: read it to include supervision counters in ``GET /stats``.
ENV_SUPERVISOR_STATE = "REPRO_SUPERVISOR_STATE"

#: Exit code of a worker killed by the ``serve.respond`` fault point,
#: so the supervisor can tell an injected crash from a real one.
EXIT_RESPOND_FAULT = 17


def _int_env(name: str, default: int, floor: int = 0) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return max(floor, int(raw))
    except ValueError:
        return default


def _float_env(name: str, default: float, floor: float = 0.0) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return max(floor, float(raw))
    except ValueError:
        return default


def resolve_breaker_threshold() -> int:
    """Consecutive failures that trip a breaker (0 = breakers off)."""
    return _int_env(ENV_BREAKER_THRESHOLD, DEFAULT_BREAKER_THRESHOLD)


def resolve_breaker_cooldown() -> float:
    """Seconds an open breaker waits before a half-open probe."""
    return _float_env(ENV_BREAKER_COOLDOWN, DEFAULT_BREAKER_COOLDOWN,
                      floor=0.001)


def resolve_serve_procs() -> int:
    """Supervised worker-process count."""
    return _int_env(ENV_SERVE_PROCS, DEFAULT_SERVE_PROCS, floor=1)


def resolve_heartbeat_interval() -> float:
    return _float_env(ENV_HEARTBEAT_INTERVAL,
                      DEFAULT_HEARTBEAT_INTERVAL, floor=0.01)


def resolve_heartbeat_timeout() -> float:
    return _float_env(ENV_HEARTBEAT_TIMEOUT,
                      DEFAULT_HEARTBEAT_TIMEOUT, floor=0.1)


def resolve_drain_timeout() -> float:
    return _float_env(ENV_DRAIN_TIMEOUT, DEFAULT_DRAIN_TIMEOUT,
                      floor=0.1)


def worker_id() -> str | None:
    """This process's supervised-worker id, or ``None`` outside one."""
    return os.environ.get(ENV_WORKER_ID) or None


def supervisor_state_path() -> str | None:
    return os.environ.get(ENV_SUPERVISOR_STATE) or None
