"""Deterministic traffic-replay load generator for the serve daemon.

``python -m repro.serve.loadgen`` drives a daemon (an external one via
``--host/--port``, or one spawned in-process with ``--spawn``) with a
seeded, reproducible request mix:

* **zipf** — the steady-state leg: requests drawn from a Zipfian
  distribution over a (tenants x workloads x config-variants) key
  universe, so a few keys are hot and the long tail is cold.  This is
  the leg the cache is for.
* **thrash** — adversarial: a stream of unique keys sized past the
  cache capacity, forcing evictions (and exercising heat-tiered
  *re*-computation, since heat survives eviction).
* **storm** — adversarial: waves of identical concurrent requests for
  a cold key; single-flight coalescing must collapse each wave onto
  one execution.
* **faulted** — per-request fault injection via ``OptConfig.faults``
  (degraded-but-successful runs, quarantine circuit-breaks) plus the
  deterministic mipsi context-budget overrun (a structured 422 that
  the daemon memoizes).  If the daemon itself has ``serve.admit``
  armed, injected 500s are expected and asserted on instead of
  failing the clean legs.

Every request the clean legs successfully execute carries a result
*fingerprint*; the generator re-runs a sample of distinct keys through
the offline harness in-process and requires byte-identical
fingerprints — the daemon may never serve bytes the harness would not
produce.

``--smoke`` runs a small mix with hard assertions (CI); ``--bench``
runs the full mix at ``--clients`` concurrency (default 1000) and
writes ``BENCH_serve.json``.

``--snapshot`` (requires ``--spawn``) adds a warm-restart leg: replay
a fixed key set against a daemon backed by a fresh persistent artifact
store, snapshot the store, restart the daemon warm (``--snapshot`` +
an empty store) mid-replay, and replay the same keys again.  Every
fingerprint must be byte-identical across the restart *and* to the
offline harness oracle, and the warm daemon must actually replay
persisted artifacts rather than regenerate them.

Clients are resilient by default: every request carries an ``echo``
token the daemon must return verbatim (catching lost, duplicated, or
cross-wired responses across retries and worker recycling), transport
errors and 429/503 sheds are retried with seeded-jitter exponential
backoff (the body's ``retry_after`` hint floors the wait) under a
bounded attempt budget, and a request counts as ``lost`` only when
every attempt died on the wire.  That is what lets the chaos harness
(``python -m repro.chaos``) demand *zero* lost responses while a
supervisor SIGKILLs and recycles the workers serving the traffic.
"""

from __future__ import annotations

import argparse
import asyncio
import bisect
import json
import random
import sys
import threading
import time
from collections import deque

from repro.evalharness.runner import run_workload
from repro.serve.protocol import build_config, run_fingerprint
from repro.workloads import KERNELS, WORKLOADS_BY_NAME

DEFAULT_BENCH_PATH = "BENCH_serve.json"
DEFAULT_SEED = 20260807

#: Workloads the generator mixes by default: the paper's kernels, which
#: run in well under a second each on any tier.
DEFAULT_WORKLOADS = tuple(w.name for w in KERNELS)


# ----------------------------------------------------------------------
# Seeded traffic shapes
# ----------------------------------------------------------------------

class ZipfSampler:
    """Zipf(s) over ranks 0..n-1 via inverse-CDF on a seeded RNG."""

    def __init__(self, n: int, s: float, rng: random.Random):
        if n < 1:
            raise ValueError("n must be >= 1")
        weights = [1.0 / (rank + 1) ** s for rank in range(n)]
        total = sum(weights)
        acc = 0.0
        self._cdf = []
        for w in weights:
            acc += w / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0
        self._rng = rng

    def sample(self) -> int:
        return bisect.bisect_left(self._cdf, self._rng.random())


def key_universe(tenants: int, workloads: tuple[str, ...],
                 variants: int, rng: random.Random) -> list[dict]:
    """The (tenant, workload, config) triples zipf traffic draws from.

    Config variants differ only in ``quarantine_after`` — a knob that
    is execution-inert on clean runs but changes the content-hash run
    key, giving the cache a controllable number of distinct entries.
    Rank order is shuffled so hotness is not correlated with tenant id.
    """
    universe = []
    for t in range(tenants):
        for name in workloads:
            for v in range(variants):
                universe.append({
                    "tenant": f"tenant-{t:02d}",
                    "workload": name,
                    "config": {"quarantine_after": 3 + v},
                })
    rng.shuffle(universe)
    return universe


# ----------------------------------------------------------------------
# Raw asyncio HTTP client (keep-alive, one connection per virtual user)
# ----------------------------------------------------------------------

class Client:
    def __init__(self, host: str, port: int, timeout: float = 120.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def open(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            self._writer = None
            self._reader = None

    async def request(self, method: str, path: str,
                      payload: dict | None = None):
        """One round trip; returns ``(status, body_dict, seconds)``."""
        if self._writer is None:
            await self.open()
        body = b""
        if payload is not None:
            body = json.dumps(payload, sort_keys=True,
                              separators=(",", ":")).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n\r\n"
        )
        start = time.perf_counter()
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()
        status, response = await asyncio.wait_for(
            self._read_response(), self.timeout)
        return status, response, time.perf_counter() - start

    async def _read_response(self):
        line = await self._reader.readuntil(b"\r\n")
        status = int(line.split()[1])
        length = 0
        while True:
            line = await self._reader.readuntil(b"\r\n")
            if line == b"\r\n":
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        raw = await self._reader.readexactly(length) if length else b"{}"
        return status, json.loads(raw)


# ----------------------------------------------------------------------
# Leg execution
# ----------------------------------------------------------------------

class LegResult:
    def __init__(self, name: str):
        self.name = name
        self.latencies: list[float] = []
        self.statuses: dict[str, int] = {}
        self.error_codes: dict[str, int] = {}
        self.fingerprints: dict[str, str] = {}   # request key -> fp
        self.mismatched_fingerprints = 0
        self.cached = 0
        self.coalesced = 0
        self.transport_errors = 0
        self.retries = 0
        self.lost = 0
        self.echo_mismatches = 0
        self.duration = 0.0

    def record(self, request: dict, status: int, body: dict,
               seconds: float) -> None:
        self.latencies.append(seconds)
        self.statuses[str(status)] = self.statuses.get(str(status), 0) + 1
        expected_echo = request.get("echo")
        if expected_echo is not None \
                and body.get("echo") != expected_echo:
            # The response must be *this* request's response — catching
            # cross-wiring or replay across retries and worker kills.
            self.echo_mismatches += 1
        if status >= 400 and isinstance(body.get("error"), dict):
            code = body["error"].get("code", "unknown")
            self.error_codes[code] = self.error_codes.get(code, 0) + 1
        if status == 200:
            if body.get("cached"):
                self.cached += 1
            if body.get("coalesced"):
                self.coalesced += 1
            fp = body.get("fingerprint")
            key = _request_identity(request)
            if fp:
                seen = self.fingerprints.get(key)
                if seen is None:
                    self.fingerprints[key] = fp
                elif seen != fp:
                    # The same (workload, config, verify) must always
                    # serve the same bytes, cached or not.
                    self.mismatched_fingerprints += 1

    def report(self) -> dict:
        n = len(self.latencies)
        lat = sorted(self.latencies)

        def pct(q: float) -> float:
            if not lat:
                return 0.0
            return round(1000 * lat[min(n - 1, int(q * (n - 1)))], 3)

        return {
            "requests": n,
            "duration_s": round(self.duration, 3),
            "throughput_rps": round(n / self.duration, 1)
            if self.duration else 0.0,
            "latency_ms": {"p50": pct(0.50), "p90": pct(0.90),
                           "p99": pct(0.99), "max": pct(1.0)},
            "statuses": dict(sorted(self.statuses.items())),
            "error_codes": dict(sorted(self.error_codes.items())),
            "cached": self.cached,
            "coalesced": self.coalesced,
            "transport_errors": self.transport_errors,
            "retries": self.retries,
            "lost": self.lost,
            "echo_mismatches": self.echo_mismatches,
            "self_consistent_fingerprints":
                self.mismatched_fingerprints == 0,
        }


def _request_identity(request: dict) -> str:
    return json.dumps(
        {"workload": request["workload"],
         "config": request.get("config", {}),
         "verify": request.get("verify", True)},
        sort_keys=True)


#: Per-request attempt ceiling (first try + retries).  Transport errors
#: and retryable statuses both consume attempts; exhausting them on a
#: transport error marks the request *lost* — the invariant the chaos
#: harness forbids.
MAX_ATTEMPTS = 6
#: Attempts spent on retryable statuses (429/503) before the client
#: accepts the shed response as final.
MAX_STATUS_RETRIES = 3
#: Backoff base; attempt k waits ``BACKOFF_BASE * 2**k`` seconds (or
#: the server's ``Retry-After``-equivalent hint, whichever is larger)
#: plus up to 50% seeded jitter.
BACKOFF_BASE = 0.05
RETRYABLE_STATUSES = (429, 503)


def _retry_wait(body: dict, attempt: int, rng: random.Random) -> float:
    """Jittered exponential backoff, floored by the server's hint.

    The structured body's ``retry_after`` carries sub-second precision
    (the header is rounded up to whole seconds), so the client honors
    the body when present.
    """
    wait = BACKOFF_BASE * (2 ** attempt)
    error = body.get("error")
    if isinstance(error, dict):
        hinted = error.get("retry_after")
        if isinstance(hinted, (int, float)) and hinted > 0:
            wait = max(wait, float(hinted))
    return min(5.0, wait * (1.0 + 0.5 * rng.random()))


async def run_leg(name: str, host: str, port: int,
                  requests: list[dict], clients: int,
                  timeout: float = 120.0,
                  echo: bool = False) -> LegResult:
    """Drain ``requests`` through ``clients`` keep-alive connections.

    Clients survive worker recycling: transport errors (a daemon or
    supervised worker dying mid-request) reconnect and retry with
    seeded jittered exponential backoff, and retryable shed statuses
    (429/503, including open circuit breakers) honor the response's
    ``retry_after`` hint.  A request is *lost* only when every attempt
    ends in a transport error.  With ``echo=True`` every request
    carries a unique token the response must echo back verbatim.
    """
    leg = LegResult(name)
    if echo:
        requests = [dict(r, echo=f"{name}:{i:06d}")
                    for i, r in enumerate(requests)]
    queue: deque = deque(requests)
    clients = max(1, min(clients, len(requests)))

    async def attempt(client: Client, request: dict,
                      rng: random.Random) -> None:
        status_retries = 0
        for attempt_no in range(MAX_ATTEMPTS):
            try:
                status, body, seconds = await client.request(
                    "POST", "/run", request)
            except (OSError, asyncio.IncompleteReadError,
                    asyncio.TimeoutError, ValueError):
                leg.transport_errors += 1
                await client.close()
                if attempt_no + 1 >= MAX_ATTEMPTS:
                    break
                leg.retries += 1
                await asyncio.sleep(_retry_wait({}, attempt_no, rng))
                try:
                    await client.open()
                except OSError:
                    continue  # next attempt re-opens
                continue
            if status in RETRYABLE_STATUSES \
                    and status_retries < MAX_STATUS_RETRIES:
                status_retries += 1
                leg.retries += 1
                await asyncio.sleep(
                    _retry_wait(body, status_retries, rng))
                continue
            leg.record(request, status, body, seconds)
            return
        leg.lost += 1

    async def worker(worker_no: int) -> None:
        # zlib.crc32, not hash(): str hashes are salted per process.
        import zlib
        rng = random.Random(
            (zlib.crc32(name.encode("utf-8")) << 16) ^ worker_no)
        client = Client(host, port, timeout=timeout)
        try:
            try:
                await client.open()
            except OSError:
                pass  # first attempt() will retry the connect
            while True:
                try:
                    request = queue.popleft()
                except IndexError:
                    return
                await attempt(client, request, rng)
        finally:
            await client.close()

    start = time.perf_counter()
    await asyncio.gather(*(worker(n) for n in range(clients)))
    leg.duration = time.perf_counter() - start
    return leg


async def fetch(host: str, port: int, path: str) -> dict:
    client = Client(host, port)
    try:
        status, body, _ = await client.request("GET", path)
    finally:
        await client.close()
    if status != 200:
        raise RuntimeError(f"GET {path} -> {status}: {body}")
    return body


async def wait_ready(host: str, port: int, timeout: float = 30.0) -> dict:
    """Poll ``/healthz`` until the daemon answers (CI startup race)."""
    deadline = time.monotonic() + timeout
    last: Exception | None = None
    while time.monotonic() < deadline:
        try:
            return await fetch(host, port, "/healthz")
        except (OSError, RuntimeError, asyncio.IncompleteReadError) as err:
            last = err
            await asyncio.sleep(0.2)
    raise RuntimeError(f"daemon at {host}:{port} never became ready: "
                       f"{last}")


# ----------------------------------------------------------------------
# Offline byte-identical verification
# ----------------------------------------------------------------------

def verify_offline(leg: LegResult, sample: int,
                   rng: random.Random) -> dict:
    """Re-run distinct clean keys offline; fingerprints must match."""
    identities = sorted(leg.fingerprints)
    if sample and len(identities) > sample:
        identities = rng.sample(identities, sample)
    checked = matched = 0
    mismatches: list[str] = []
    for identity in identities:
        spec = json.loads(identity)
        config = build_config(spec["config"])
        result = run_workload(WORKLOADS_BY_NAME[spec["workload"]],
                              config, verify=spec["verify"],
                              backend="threaded")
        checked += 1
        if run_fingerprint(result) == leg.fingerprints[identity]:
            matched += 1
        else:
            mismatches.append(spec["workload"])
    return {"checked": checked, "matched": matched,
            "mismatches": mismatches}


# ----------------------------------------------------------------------
# In-process daemon (--spawn)
# ----------------------------------------------------------------------

class SpawnedDaemon:
    """A daemon on a background thread with its own event loop."""

    def __init__(self, argv: list[str]):
        from repro.serve.__main__ import _parse_args, build_app
        from repro.serve.http import ServeDaemon
        args = _parse_args(argv)
        self.app = build_app(args)
        self._daemon = ServeDaemon(self.app, args.host, args.port)
        self.host = args.host
        self.port = 0
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("spawned daemon failed to start")
        self.port = self._daemon.port

    def _run(self) -> None:
        async def go() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            await self._daemon.start()
            self._ready.set()
            await self._stop.wait()
            await self._daemon.close()
        asyncio.run(go())
        self.app.close()

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10)


# ----------------------------------------------------------------------
# Warm-restart leg (--snapshot)
# ----------------------------------------------------------------------

def run_snapshot_leg(args: argparse.Namespace) -> tuple[dict, list[str]]:
    """Cold replay -> snapshot -> warm daemon restart -> same replay.

    Returns ``(report_section, failures)``.  The daemon is spawned
    in-process twice: first against a fresh persistent store (cold),
    then — after snapshotting that store — against a *different* empty
    store warmed only by the snapshot, proving the snapshot file alone
    carries the artifacts across the restart.
    """
    import os
    import shutil
    import tempfile

    from repro.runtime import persist

    failures: list[str] = []
    scratch = tempfile.mkdtemp(prefix="repro-loadgen-snap-")
    cold_store = os.path.join(scratch, "store-cold")
    warm_store = os.path.join(scratch, "store-warm")
    snap_path = os.path.join(scratch, "serve.snap")
    # The same keys replayed in both phases; requested twice each so the
    # result cache is exercised too (identical fingerprints required).
    requests = [
        {"tenant": "warm", "workload": name,
         "config": {"quarantine_after": 7000 + i}}
        for i, name in enumerate(args.workloads)
    ]
    plan = [dict(r) for r in requests] + [dict(r) for r in requests]

    def phase(store_args: list[str], name: str):
        spawned = SpawnedDaemon(["--port", "0"] + store_args)
        try:
            leg = asyncio.run(run_leg(
                name, spawned.host, spawned.port, [dict(r) for r in plan],
                8, args.timeout, echo=True))
            stats = asyncio.run(fetch(spawned.host, spawned.port,
                                      "/stats"))
        finally:
            spawned.stop()
        return leg, stats

    try:
        cold_leg, _ = phase(["--persist-dir", cold_store],
                            "snapshot-cold")
        persist.reset()
        saved = persist.save_snapshot(cold_store, snap_path)
        if not saved.ok:
            failures.append(f"snapshot: save failed ({saved.error})")
            return {"error": saved.error}, failures

        warm_leg, warm_stats = phase(
            ["--persist-dir", warm_store, "--snapshot", snap_path],
            "snapshot-warm")
        persist.reset()

        # Offline oracle, with no store active.
        offline: dict[str, str] = {}
        for identity in sorted(cold_leg.fingerprints):
            spec = json.loads(identity)
            result = run_workload(WORKLOADS_BY_NAME[spec["workload"]],
                                  build_config(spec["config"]),
                                  verify=spec["verify"],
                                  backend="threaded")
            offline[identity] = run_fingerprint(result)

        if set(cold_leg.fingerprints) != set(warm_leg.fingerprints):
            failures.append("snapshot: cold and warm phases did not "
                            "serve the same key set")
        restart_matches = offline_matches = 0
        for identity, fp in cold_leg.fingerprints.items():
            if warm_leg.fingerprints.get(identity) == fp:
                restart_matches += 1
            else:
                failures.append(
                    f"snapshot: fingerprint changed across the warm "
                    f"restart for {json.loads(identity)['workload']}")
            if offline.get(identity) == fp:
                offline_matches += 1
            else:
                failures.append(
                    f"snapshot: daemon fingerprint disagrees with the "
                    f"offline oracle for "
                    f"{json.loads(identity)['workload']}")
        for leg in (cold_leg, warm_leg):
            if leg.mismatched_fingerprints:
                failures.append(f"{leg.name}: same key served "
                                "different fingerprints")
            bad = set(leg.statuses) - {"200"}
            if bad:
                failures.append(f"{leg.name}: unexpected statuses "
                                f"{sorted(bad)}")

        persist_stats = (warm_stats or {}).get("persist") or {}
        snapshot_info = persist_stats.get("snapshot") or {}
        if not snapshot_info.get("loaded"):
            failures.append("snapshot: warm daemon loaded no records "
                            "from the snapshot")
        if not (persist_stats.get("replayed_entries")
                or persist_stats.get("hits")):
            failures.append("snapshot: warm daemon never replayed a "
                            "persisted artifact")

        return {
            "keys": len(requests),
            "cold": cold_leg.report(),
            "warm": warm_leg.report(),
            "snapshot_records": saved.loaded,
            "warm_persist": {
                "hits": persist_stats.get("hits", 0),
                "replayed_entries":
                    persist_stats.get("replayed_entries", 0),
                "replayed_continuations":
                    persist_stats.get("replayed_continuations", 0),
                "stale_drops": persist_stats.get("stale_drops", 0),
                "snapshot": snapshot_info,
            },
            "restart_fingerprints_identical":
                restart_matches == len(cold_leg.fingerprints),
            "offline_fingerprints_identical":
                offline_matches == len(cold_leg.fingerprints),
        }, failures
    finally:
        persist.reset()
        shutil.rmtree(scratch, ignore_errors=True)


# ----------------------------------------------------------------------
# Traffic plans
# ----------------------------------------------------------------------

def plan_zipf(universe: list[dict], n: int, skew: float,
              rng: random.Random) -> list[dict]:
    sampler = ZipfSampler(len(universe), skew, rng)
    return [universe[sampler.sample()] for _ in range(n)]


def plan_thrash(workloads: tuple[str, ...], n: int,
                rng: random.Random) -> list[dict]:
    """Unique keys (disjoint from the zipf universe) to force evictions."""
    requests = []
    for i in range(n):
        requests.append({
            "tenant": f"thrash-{i % 4}",
            "workload": workloads[i % len(workloads)],
            # quarantine_after >= 1000 never collides with the zipf
            # universe's 3..3+variants range.
            "config": {"quarantine_after": 1000 + i},
        })
    rng.shuffle(requests)
    return requests


def plan_storm(workloads: tuple[str, ...], waves: int,
               wave_size: int) -> list[list[dict]]:
    """Waves of identical requests for previously unseen keys."""
    plans = []
    for wave in range(waves):
        request = {
            "tenant": "storm",
            "workload": workloads[wave % len(workloads)],
            "config": {"quarantine_after": 5000 + wave},
        }
        plans.append([dict(request) for _ in range(wave_size)])
    return plans


def plan_faulted(workloads: tuple[str, ...], n: int) -> list[dict]:
    """Per-request fault injection: degraded runs + quarantine."""
    requests = []
    for i in range(n):
        if i % 2 == 0:
            # Rung 1-2: first specialize attempt fails, the retry
            # succeeds -> 200 with respecializations > 0.
            config = {"faults": "specializer.entry:once",
                      "quarantine_after": 9000 + i}
        else:
            # Rung 3: every attempt fails, the circuit breaker
            # quarantines the (region, context) -> 200 with
            # quarantined_contexts > 0 and fallback executions.
            config = {"faults": "specializer.entry",
                      "quarantine_after": 1,
                      # distinct keys so each run exercises the ladder
                      "specialize_budget": 100000 + i}
        requests.append({"tenant": "faulty",
                         "workload": workloads[i % len(workloads)],
                         "config": config})
    return requests


def plan_budget(repeats: int) -> list[dict]:
    """Deterministic 422: mipsi without static loads overruns the
    context budget; repeats should be served from the error cache."""
    return [{"tenant": "faulty", "workload": "mipsi",
             "config": {"static_loads": False}}
            for _ in range(1 + repeats)]


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------

async def drive(args: argparse.Namespace) -> tuple[dict, list[str]]:
    """Run all legs; returns (report, failed assertion messages)."""
    host, port = args.host, args.port
    rng = random.Random(args.seed)
    workloads = tuple(args.workloads)

    health = await wait_ready(host, port)
    stats_before = await fetch(host, port, "/stats")
    admit_armed = "serve.admit" in (
        stats_before["server"].get("fault_spec") or "")

    universe = key_universe(args.tenants, workloads, args.variants, rng)
    legs: dict[str, LegResult] = {}

    print(f"[loadgen] daemon ready (uptime {health['uptime_seconds']}s, "
          f"admit faults {'armed' if admit_armed else 'off'}); "
          f"universe of {len(universe)} keys", file=sys.stderr)

    zipf_requests = plan_zipf(universe, args.requests, args.skew, rng)
    legs["zipf"] = await run_leg("zipf", host, port, zipf_requests,
                                 args.clients, args.timeout, echo=True)
    print(f"[loadgen] zipf: {legs['zipf'].report()['throughput_rps']} "
          f"req/s over {args.clients} clients", file=sys.stderr)

    thrash_requests = plan_thrash(workloads, args.thrash, rng)
    legs["thrash"] = await run_leg("thrash", host, port, thrash_requests,
                                   max(32, args.clients // 5),
                                   args.timeout, echo=True)

    storm = LegResult("storm")
    start = time.perf_counter()
    for wave in plan_storm(workloads, args.storm_waves, args.storm_size):
        wave_leg = await run_leg("storm-wave", host, port, wave,
                                 len(wave), args.timeout, echo=True)
        storm.latencies += wave_leg.latencies
        storm.coalesced += wave_leg.coalesced
        storm.cached += wave_leg.cached
        storm.transport_errors += wave_leg.transport_errors
        storm.retries += wave_leg.retries
        storm.lost += wave_leg.lost
        storm.echo_mismatches += wave_leg.echo_mismatches
        for key, count in wave_leg.statuses.items():
            storm.statuses[key] = storm.statuses.get(key, 0) + count
        for key, count in wave_leg.error_codes.items():
            storm.error_codes[key] = \
                storm.error_codes.get(key, 0) + count
        storm.fingerprints.update(wave_leg.fingerprints)
        storm.mismatched_fingerprints += wave_leg.mismatched_fingerprints
    storm.duration = time.perf_counter() - start
    legs["storm"] = storm

    faulted_requests = plan_faulted(workloads, args.faulted)
    if args.budget_leg:
        faulted_requests += plan_budget(args.budget_repeats)
    legs["faulted"] = await run_leg("faulted", host, port,
                                    faulted_requests,
                                    max(8, args.clients // 20),
                                    args.timeout, echo=True)

    stats_after = await fetch(host, port, "/stats")
    health_after = await fetch(host, port, "/healthz")

    offline = verify_offline(legs["zipf"], args.verify_samples,
                             rng)
    print(f"[loadgen] offline verification: {offline['matched']}/"
          f"{offline['checked']} fingerprints byte-identical",
          file=sys.stderr)

    report = {
        "schema": 1,
        "kind": "serve-bench",
        "seed": args.seed,
        "clients": args.clients,
        "workloads": list(workloads),
        "universe_keys": len(universe),
        "total_requests": sum(len(l.latencies) for l in legs.values()),
        "legs": {name: leg.report() for name, leg in legs.items()},
        "offline_verification": offline,
        "daemon": {
            "healthz": health_after,
            "cache": stats_after["cache"],
            "admission": stats_after["admission"],
            "tiers": stats_after["server"]["tiers"],
            "degradation": stats_after["degradation"],
            "status_counts": stats_after["server"]["status_counts"],
            "error_codes": stats_after["server"]["error_codes"],
            "coalesced": stats_after["server"]["coalesced"],
            "executions": stats_after["server"]["executions"],
            "fault_points": stats_after["server"]["fault_points"],
        },
    }
    failures = check_invariants(report, legs, admit_armed, args)
    return report, failures


def check_invariants(report: dict, legs: dict[str, LegResult],
                     admit_armed: bool,
                     args: argparse.Namespace) -> list[str]:
    """Hard assertions shared by --smoke and --bench."""
    failures: list[str] = []

    def expect(ok: bool, message: str) -> None:
        if not ok:
            failures.append(message)

    daemon = report["daemon"]
    expect(daemon["healthz"]["status"] == "ok",
           "daemon unhealthy after the run")
    offline = report["offline_verification"]
    expect(offline["checked"] > 0, "offline verification checked nothing")
    expect(offline["matched"] == offline["checked"],
           f"fingerprint mismatches vs offline harness: "
           f"{offline['mismatches']}")
    for name, leg in legs.items():
        expect(leg.mismatched_fingerprints == 0,
               f"{name}: same key served different fingerprints")
        expect(leg.transport_errors == 0,
               f"{name}: {leg.transport_errors} transport errors "
               f"(daemon dropped connections)")
        expect(leg.lost == 0,
               f"{name}: {leg.lost} requests never got a response")
        expect(leg.echo_mismatches == 0,
               f"{name}: {leg.echo_mismatches} responses carried the "
               f"wrong echo token (cross-wired responses)")

    clean_ok = {"200"} | ({"500"} if admit_armed else set()) \
        | {"429", "503"}
    for name in ("zipf", "thrash", "storm"):
        unexpected = set(legs[name].statuses) - clean_ok
        expect(not unexpected,
               f"{name}: unexpected statuses {sorted(unexpected)}")
        if admit_armed:
            pass  # injected 500s are asserted globally below
        else:
            expect(set(legs[name].statuses) <= {"200", "429", "503"},
                   f"{name}: non-200 statuses "
                   f"{dict(legs[name].statuses)}")
    expect(legs["storm"].coalesced + legs["storm"].cached > 0,
           "storm: no requests were coalesced or cache-served")
    # Eviction pressure only exists when the distinct keys touched
    # exceed the daemon's total cache capacity.
    total_capacity = sum(shard["capacity"]
                         for shard in daemon["cache"]["shards"])
    keys_touched = (report["universe_keys"] + args.thrash
                    + args.storm_waves + args.faulted)
    if args.thrash and keys_touched > total_capacity > 0:
        expect(daemon["cache"]["evictions"] > 0,
               f"thrash: no evictions despite {keys_touched} keys over "
               f"capacity {total_capacity}")

    faulted = legs["faulted"]
    degradation = daemon["degradation"]
    if args.faulted:
        expect(faulted.statuses.get("200", 0) > 0,
               "faulted: no degraded-but-successful runs")
        expect(degradation["respecializations"] > 0,
               "faulted: ladder rung 2 (re-specialize) never fired")
        expect(degradation["quarantined_contexts"] > 0,
               "faulted: quarantine circuit breaker never tripped")
    if args.budget_leg:
        expect(faulted.statuses.get("422", 0) >= 1 + args.budget_repeats,
               "faulted: mipsi budget overrun did not produce 422s")
        expect(faulted.error_codes.get("specialization_budget", 0) > 0,
               "faulted: 422s were not structured "
               "specialization_budget errors")
    if admit_armed:
        expect(daemon["error_codes"].get("injected_fault", 0) > 0,
               "serve.admit armed but no injected_fault 500s observed")
    return failures


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def _parse_args(argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description="Seeded traffic replay against the serve daemon.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8950)
    parser.add_argument("--spawn", action="store_true",
                        help="spawn an in-process daemon on an "
                             "ephemeral port instead of connecting")
    parser.add_argument("--spawn-faults", default=None, metavar="SPEC",
                        help="fault spec for the spawned daemon "
                             "(e.g. 'serve.admit:every=40')")
    parser.add_argument("--spawn-cache-capacity", type=int, default=None,
                        help="entries per shard for the spawned daemon")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--clients", type=int, default=1000,
                        help="concurrent connections for the zipf leg")
    parser.add_argument("--requests", type=int, default=4000,
                        help="zipf-leg request count")
    parser.add_argument("--tenants", type=int, default=24)
    parser.add_argument("--variants", type=int, default=4,
                        help="config variants per (tenant, workload)")
    parser.add_argument("--skew", type=float, default=1.1,
                        help="Zipf exponent")
    parser.add_argument("--thrash", type=int, default=600,
                        help="unique-key requests (eviction pressure)")
    parser.add_argument("--storm-waves", type=int, default=4)
    parser.add_argument("--storm-size", type=int, default=250)
    parser.add_argument("--faulted", type=int, default=40,
                        help="fault-injected requests")
    parser.add_argument("--budget-leg", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="include the mipsi context-budget 422 leg")
    parser.add_argument("--budget-repeats", type=int, default=8,
                        help="cached repeats of the budget 422")
    parser.add_argument("--verify-samples", type=int, default=12,
                        help="distinct keys to re-run offline "
                             "(0 = all)")
    parser.add_argument("--timeout", type=float, default=180.0,
                        help="per-request client timeout (seconds)")
    parser.add_argument("--workloads", nargs="+",
                        default=list(DEFAULT_WORKLOADS),
                        choices=sorted(WORKLOADS_BY_NAME))
    parser.add_argument("--snapshot", action="store_true",
                        help="add the warm-restart leg: snapshot the "
                             "daemon's persistent store and restart it "
                             "warm mid-replay (requires --spawn)")
    parser.add_argument("--smoke", action="store_true",
                        help="small CI-sized mix with hard assertions")
    parser.add_argument("--bench", action="store_true",
                        help="write the full report to --output")
    parser.add_argument("--output", default=DEFAULT_BENCH_PATH)
    return parser.parse_args(argv)


def _apply_smoke_sizing(args: argparse.Namespace) -> None:
    args.clients = min(args.clients, 64)
    args.requests = min(args.requests, 240)
    args.tenants = min(args.tenants, 6)
    args.variants = min(args.variants, 2)
    args.thrash = min(args.thrash, 80)
    args.storm_waves = min(args.storm_waves, 2)
    args.storm_size = min(args.storm_size, 40)
    args.faulted = min(args.faulted, 10)
    args.budget_repeats = min(args.budget_repeats, 3)
    args.verify_samples = min(args.verify_samples or 8, 8)
    if args.spawn and args.spawn_cache_capacity is None:
        # Small enough that the thrash leg actually evicts.
        args.spawn_cache_capacity = 8


def main(argv: list[str]) -> int:
    args = _parse_args(argv)
    if args.snapshot and not args.spawn:
        print("--snapshot requires --spawn", file=sys.stderr)
        return 2
    if args.smoke:
        _apply_smoke_sizing(args)
    from repro.serve.__main__ import _raise_nofile_limit
    _raise_nofile_limit(8192)

    spawned: SpawnedDaemon | None = None
    if args.spawn:
        spawn_argv = ["--port", "0"]
        if args.spawn_faults:
            spawn_argv += ["--faults", args.spawn_faults]
        if args.spawn_cache_capacity is not None:
            spawn_argv += ["--cache-capacity",
                           str(args.spawn_cache_capacity)]
        spawned = SpawnedDaemon(spawn_argv)
        args.host, args.port = spawned.host, spawned.port
        print(f"[loadgen] spawned daemon on port {args.port}",
              file=sys.stderr)

    try:
        report, failures = asyncio.run(drive(args))
    finally:
        if spawned is not None:
            spawned.stop()

    if args.snapshot:
        snap_report, snap_failures = run_snapshot_leg(args)
        report["snapshot_restart"] = snap_report
        failures += snap_failures
        print(f"[loadgen] snapshot restart: "
              f"{snap_report.get('snapshot_records', 0)} record(s) "
              f"carried across; fingerprints identical="
              f"{snap_report.get('restart_fingerprints_identical')}",
              file=sys.stderr)

    if args.bench:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[loadgen] report written to {args.output}",
              file=sys.stderr)
    print(json.dumps({
        "legs": report["legs"],
        "offline_verification": report["offline_verification"],
        "daemon": {"healthz": report["daemon"]["healthz"],
                   "tiers": report["daemon"]["tiers"],
                   "coalesced": report["daemon"]["coalesced"]},
    }, indent=2, sort_keys=True))
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("all load-generator invariants held", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
