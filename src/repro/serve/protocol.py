"""Request/response protocol for the serve daemon.

The wire format is JSON over HTTP (see :mod:`repro.serve.http`); this
module owns everything about the *meaning* of a request — validation,
:class:`~repro.config.OptConfig` construction, the error taxonomy that
maps library exceptions onto HTTP statuses, and the result fingerprint
that lets a client verify a served result is byte-identical to an
offline :func:`~repro.evalharness.runner.run_workload` run.

Error taxonomy
--------------

==========  ==========================================================
status      meaning
==========  ==========================================================
400         malformed request (bad JSON, unknown workload/config
            field, invalid fault spec)
404 / 405   unknown path / method on a known path
413         request body exceeds :data:`MAX_BODY_BYTES`
422         the run itself failed deterministically
            (:class:`~repro.errors.SpecializationError`, e.g. a
            context-budget overrun without the ladder's residualizer)
429         per-tenant quota exhausted (retryable by *other* tenants;
            carries ``retry_after`` + a ``Retry-After`` header)
500         injected admission fault (``serve.admit``), verification
            or machine failure — the daemon survives and reports it
502         :class:`~repro.errors.HarnessError` from a delegated sweep
503         admission queue full (global backpressure) or an open
            per-(tenant, workload) circuit breaker (``circuit_open``);
            both retryable, both carry ``retry_after`` + the header
==========  ==========================================================

Every error response body is structured::

    {"error": {"code": "...", "message": "...", ...fields}}

so load generators and clients can assert on *which* failure occurred,
not just the status class.
"""

from __future__ import annotations

import dataclasses
import hashlib

from repro.config import ALL_ON, OptConfig
from repro.errors import (
    CacheError,
    FaultConfigError,
    HarnessError,
    MachineError,
    ReproError,
    SpecializationBudgetError,
    SpecializationError,
    WorkerFault,
)
from repro.faults import parse_spec
from repro.workloads import WORKLOADS_BY_NAME

#: Largest accepted request body; larger bodies draw a 413.
MAX_BODY_BYTES = 1 << 20

#: Longest accepted tenant name (tenants are free-form strings).
MAX_TENANT_LEN = 64

#: Longest accepted ``echo`` token (opaque client request id).
MAX_ECHO_LEN = 128

_CONFIG_FIELDS = {f.name: f for f in dataclasses.fields(OptConfig)}


class BadRequest(ReproError):
    """A structurally invalid request (maps to HTTP 400)."""


@dataclasses.dataclass(frozen=True)
class RunRequest:
    """A validated ``POST /run`` body."""

    tenant: str
    workload: str
    config: OptConfig
    verify: bool = True
    no_cache: bool = False
    #: Opaque client-chosen request id, echoed verbatim in the response
    #: body (cached, coalesced, and error responses included).  The
    #: chaos harness uses it to prove every request got exactly its own
    #: response — no losses, duplicates, or cross-wiring — across
    #: worker kills and retries.  Never part of any cache or memo key.
    echo: str | None = None


def parse_run_request(payload: object) -> RunRequest:
    """Validate a decoded JSON body into a :class:`RunRequest`.

    Raises :class:`BadRequest` with a human-readable message on any
    structural problem; the config override dict is checked field by
    field against :class:`~repro.config.OptConfig` (including an eager
    parse of any ``faults`` spec) so typos fail fast with a 400 instead
    of surfacing as a 500 deep inside a worker thread.
    """
    if not isinstance(payload, dict):
        raise BadRequest("request body must be a JSON object")
    workload = payload.get("workload")
    if not isinstance(workload, str) or workload not in WORKLOADS_BY_NAME:
        known = ", ".join(sorted(WORKLOADS_BY_NAME))
        raise BadRequest(
            f"unknown workload {workload!r} (known: {known})"
        )
    tenant = payload.get("tenant", "anon")
    if not isinstance(tenant, str) or not tenant \
            or len(tenant) > MAX_TENANT_LEN:
        raise BadRequest(
            f"tenant must be a non-empty string of at most "
            f"{MAX_TENANT_LEN} characters"
        )
    verify = payload.get("verify", True)
    if not isinstance(verify, bool):
        raise BadRequest("verify must be a boolean")
    no_cache = payload.get("no_cache", False)
    if not isinstance(no_cache, bool):
        raise BadRequest("no_cache must be a boolean")
    echo = payload.get("echo")
    if echo is not None and (not isinstance(echo, str)
                             or len(echo) > MAX_ECHO_LEN):
        raise BadRequest(
            f"echo must be a string of at most {MAX_ECHO_LEN} characters"
        )
    config = build_config(payload.get("config", {}))
    return RunRequest(tenant=tenant, workload=workload, config=config,
                      verify=verify, no_cache=no_cache, echo=echo)


def build_config(overrides: object) -> OptConfig:
    """Build an :class:`OptConfig` from a request's override dict.

    The base is ``ALL_ON`` (the paper's full configuration), matching
    the offline harness default, so a request with no overrides hits
    the same memo key as ``run_workload(workload)``.
    """
    if not isinstance(overrides, dict):
        raise BadRequest("config must be a JSON object")
    cleaned: dict[str, object] = {}
    for name, value in overrides.items():
        spec = _CONFIG_FIELDS.get(name)
        if spec is None:
            known = ", ".join(sorted(_CONFIG_FIELDS))
            raise BadRequest(
                f"unknown config field {name!r} (known: {known})"
            )
        if spec.type == "bool":
            if not isinstance(value, bool):
                raise BadRequest(f"config field {name!r} must be a boolean")
        elif spec.type == "int":
            if isinstance(value, bool) or not isinstance(value, int):
                raise BadRequest(f"config field {name!r} must be an integer")
        elif spec.type == "str":
            if not isinstance(value, str):
                raise BadRequest(f"config field {name!r} must be a string")
        cleaned[name] = value
    try:
        config = dataclasses.replace(ALL_ON, **cleaned)
    except (TypeError, ValueError) as err:
        raise BadRequest(f"invalid config: {err}") from None
    if config.faults:
        try:
            parse_spec(config.faults)
        except FaultConfigError as err:
            raise BadRequest(str(err)) from None
    return config


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------

def run_fingerprint(result) -> str:
    """SHA-256 over everything a run *measures*.

    Backends are excluded by construction: every counted backend
    produces byte-identical statistics, so a client can re-run the same
    (workload, config) offline on any backend and compare fingerprints
    to prove the daemon served an untampered result.
    """
    hasher = hashlib.sha256()
    for part in (
        result.workload.name,
        result.static_total_cycles,
        result.dynamic_total_cycles,
        result.dc_cycles,
        sorted(result.static_region_cycles.items()),
        sorted(result.dynamic_region_cycles.items()),
        sorted(result.region_entries.items()),
        result.outputs_match,
        result.return_values,
        result.degraded_translations,
        result.degraded_compilations,
    ):
        hasher.update(repr(part).encode("utf-8"))
        hasher.update(b"\x00")
    return hasher.hexdigest()


def degradation_counters(result) -> dict[str, int]:
    """Aggregate the ladder's per-region counters over a run."""
    totals = {
        "specialization_failures": 0,
        "respecializations": 0,
        "fallback_executions": 0,
        "quarantined_contexts": 0,
        "quarantine_skips": 0,
        "budget_truncations": 0,
        "cache_corruptions": 0,
    }
    for stats in result.region_stats.values():
        for name in totals:
            totals[name] += getattr(stats, name, 0)
    totals["degraded_translations"] = result.degraded_translations
    totals["degraded_compilations"] = result.degraded_compilations
    return totals


def result_payload(result, backend: str) -> dict:
    """JSON-safe response body for a completed run."""
    return {
        "workload": result.workload.name,
        "backend": backend,
        "fingerprint": run_fingerprint(result),
        "static_total_cycles": result.static_total_cycles,
        "dynamic_total_cycles": result.dynamic_total_cycles,
        "dc_cycles": result.dc_cycles,
        "static_region_cycles": dict(sorted(
            result.static_region_cycles.items())),
        "dynamic_region_cycles": dict(sorted(
            result.dynamic_region_cycles.items())),
        "region_entries": dict(sorted(result.region_entries.items())),
        "outputs_match": result.outputs_match,
        "return_values": list(result.return_values),
        "degradation": degradation_counters(result),
    }


def error_body(code: str, message: str, **fields: object) -> dict:
    body = {"code": code, "message": message}
    for name, value in fields.items():
        if value is not None:
            body[name] = value
    return {"error": body}


def classify_error(exc: BaseException) -> tuple[int, dict]:
    """Map a library exception to ``(status, structured body)``."""
    if isinstance(exc, BadRequest):
        return 400, error_body("bad_request", str(exc))
    if isinstance(exc, FaultConfigError):
        return 400, error_body("bad_fault_spec", str(exc))
    if isinstance(exc, SpecializationError):
        code = ("specialization_budget"
                if isinstance(exc, SpecializationBudgetError)
                else "specialization_error")
        fields = {k: v for k, v in exc.fields().items() if v is not None}
        if "context_key" in fields:
            fields["context_key"] = list(fields["context_key"])
        return 422, error_body(code, exc.message, **fields)
    if isinstance(exc, WorkerFault):
        return 500, error_body("injected_fault", str(exc))
    if isinstance(exc, HarnessError):
        return 502, error_body("harness_error", str(exc),
                               failures=len(exc.failures))
    if isinstance(exc, CacheError):
        return 500, error_body("cache_error", str(exc))
    from repro.evalharness.runner import VerificationError
    if isinstance(exc, VerificationError):
        return 500, error_body("verification_error", str(exc))
    if isinstance(exc, MachineError):
        return 500, error_body("machine_error", str(exc))
    if isinstance(exc, ReproError):
        return 500, error_body("internal_error", str(exc))
    return 500, error_body(
        "internal_error", f"{type(exc).__name__}: {exc}"
    )
