"""Multi-process supervision for the serve daemon.

``python -m repro.serve.supervisor`` binds the listening socket once,
forks ``--procs`` worker processes that all ``accept()`` from it (the
kernel load-balances connections), and then babysits them:

* **Crash detection** — ``os.waitpid(WNOHANG)`` reaps exited workers
  every tick; a worker that died (organic crash, ``serve.respond``
  fault, OOM-kill, …) is respawned immediately.  Because workers share
  the persistent artifact store, a respawned worker starts *warm*: any
  artifact its predecessor persisted replays instead of re-specializing.
* **Hang detection** — each worker heartbeats over a dedicated pipe
  (``REPRO_HEARTBEAT_INTERVAL`` seconds apart, from a thread, so a
  wedged event loop still beats but a wedged *process* does not).  A
  worker silent for ``REPRO_HEARTBEAT_TIMEOUT`` seconds is SIGKILLed
  and respawned.  The ``serve.worker_heartbeat`` fault point simulates
  the hang by silencing the beat while the worker keeps serving.
* **Graceful drain** — SIGTERM/SIGINT forwards SIGTERM to every
  worker; each stops accepting, finishes its in-flight requests
  (:meth:`~repro.serve.http.ServeDaemon.drain`), and exits.  Once all
  workers are gone the supervisor optionally snapshots the shared
  store (``--snapshot-out``) so the next start is warm, then exits 0.
* **State file** — every lifecycle event atomically rewrites a JSON
  state file (``--state-file``; also exported to workers via
  ``REPRO_SUPERVISOR_STATE`` so ``GET /stats`` can surface supervision
  counters).  The chaos harness reads it to learn the bound port and
  the live worker pids it is allowed to kill.

Workers are forked, not exec'd: the parent never starts an event loop
(forking after asyncio starts is unsafe), and each child gets a fresh
``asyncio.run`` of its own.  A worker that sees its heartbeat pipe
closed (the supervisor died) exits rather than lingering as an orphan.
"""

from __future__ import annotations

import argparse
import json
import os
import selectors
import signal
import socket
import sys
import time

from repro.serve import knobs

#: Respawns after which the supervisor gives up and shuts down — a
#: backstop against crash loops, far above anything the chaos harness
#: schedules.
DEFAULT_MAX_RESTARTS = 100

_TICK = 0.05


def _parse_args(argv: list[str]) -> argparse.Namespace:
    from repro.serve.__main__ import DEFAULT_PORT
    from repro.serve.app import (
        DEFAULT_CAPACITY_PER_SHARD,
        DEFAULT_MAX_QUEUE,
        DEFAULT_SHARDS,
        DEFAULT_TENANT_QUOTA,
    )
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.supervisor",
        description="Supervise N serve workers behind one socket with "
                    "crash/hang recovery and graceful drain.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    parser.add_argument("--procs", type=int, default=None,
                        help="worker processes (default "
                             "$REPRO_SERVE_PROCS or 2)")
    parser.add_argument("--state-file", default=None, metavar="PATH",
                        help="atomically rewritten JSON supervision "
                             "state (default: <persist-dir or cwd>/"
                             "supervisor.json)")
    parser.add_argument("--snapshot-out", default=None, metavar="PATH",
                        help="snapshot the shared store here after a "
                             "graceful drain (requires --persist-dir)")
    parser.add_argument("--max-restarts", type=int,
                        default=DEFAULT_MAX_RESTARTS)
    # Per-worker flags, forwarded to ServeApp (mirrors repro.serve).
    parser.add_argument("--shards", type=int, default=DEFAULT_SHARDS)
    parser.add_argument("--cache-capacity", type=int,
                        default=DEFAULT_CAPACITY_PER_SHARD)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--max-queue", type=int,
                        default=DEFAULT_MAX_QUEUE)
    parser.add_argument("--tenant-quota", type=int,
                        default=DEFAULT_TENANT_QUOTA)
    parser.add_argument("--faults", default=None, metavar="SPEC")
    parser.add_argument("--persist-dir", default=None, metavar="DIR")
    parser.add_argument("--snapshot", default=None, metavar="PATH",
                        help="warm-start every worker from this "
                             "snapshot")
    parser.add_argument("--breaker-threshold", type=int, default=None)
    parser.add_argument("--breaker-cooldown", type=float, default=None)
    return parser.parse_args(argv)


def write_state(path: str, state: dict) -> None:
    """Atomically rewrite the supervision state file."""
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(state, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass


def read_state(path: str) -> dict | None:
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


# ----------------------------------------------------------------------
# Worker (child) side
# ----------------------------------------------------------------------

def _heartbeat_loop(fd: int, faults, interval: float) -> None:
    """Beat on ``fd`` until the fault point silences us or the pipe
    breaks (supervisor gone -> exit instead of orphaning)."""
    while True:
        if faults.enabled("serve.worker_heartbeat") \
                and faults.should_fire("serve.worker_heartbeat"):
            # Simulated hang: stop beating but keep the process (and
            # its event loop) running; the supervisor must notice.
            return
        try:
            os.write(fd, b".")
        except OSError:
            os._exit(0)
        time.sleep(interval)


def _worker_main(args: argparse.Namespace, sock: socket.socket,
                 heartbeat_fd: int, worker: int) -> None:
    """Forked child body: serve on the shared socket until SIGTERM.

    Never returns — exits via ``os._exit`` so the child cannot fall
    back into the supervisor's stack (atexit handlers, finally blocks).
    """
    import asyncio
    import threading

    os.environ[knobs.ENV_WORKER_ID] = str(worker)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    exit_code = 0
    try:
        from repro.serve.__main__ import build_app
        from repro.serve.http import ServeDaemon

        app = build_app(args)
        beat = threading.Thread(
            target=_heartbeat_loop,
            args=(heartbeat_fd, app.faults,
                  knobs.resolve_heartbeat_interval()),
            daemon=True)
        beat.start()

        async def serve() -> None:
            loop = asyncio.get_running_loop()
            stop = asyncio.Event()
            loop.add_signal_handler(signal.SIGTERM, stop.set)
            daemon = ServeDaemon(app, sock=sock)
            await daemon.start()
            print(f"[worker {worker}] pid {os.getpid()} serving",
                  file=sys.stderr, flush=True)
            await stop.wait()
            app.draining = True
            completed = await daemon.drain(knobs.resolve_drain_timeout())
            print(f"[worker {worker}] drained "
                  f"(completed={completed})", file=sys.stderr,
                  flush=True)

        asyncio.run(serve())
    except BaseException as err:  # noqa: BLE001 — child must not unwind
        print(f"[worker {worker}] fatal: {type(err).__name__}: {err}",
              file=sys.stderr, flush=True)
        exit_code = 1
    finally:
        sys.stderr.flush()
        os._exit(exit_code)


# ----------------------------------------------------------------------
# Supervisor (parent) side
# ----------------------------------------------------------------------

class WorkerRecord:
    def __init__(self, worker: int, pid: int, pipe_fd: int,
                 now: float):
        self.worker = worker
        self.pid = pid
        self.pipe_fd = pipe_fd
        self.last_beat = now
        self.restarts = 0


class Supervisor:
    """Fork/watch/recycle loop around N serve workers."""

    def __init__(self, args: argparse.Namespace):
        self.args = args
        self.procs = args.procs if args.procs is not None \
            else knobs.resolve_serve_procs()
        self.max_restarts = max(0, args.max_restarts)
        self.heartbeat_timeout = knobs.resolve_heartbeat_timeout()
        self.drain_timeout = knobs.resolve_drain_timeout()
        self.sock: socket.socket | None = None
        self.port = args.port
        self.workers: dict[int, WorkerRecord] = {}   # pid -> record
        self.selector = selectors.DefaultSelector()
        self.shutting_down = False
        self.restarts_total = 0
        self.crash_exits = 0
        self.respond_fault_exits = 0
        self.hang_kills = 0
        self.clean_exits = 0
        self.state_path = args.state_file or os.path.join(
            args.persist_dir or ".", "supervisor.json")

    # -- lifecycle -----------------------------------------------------

    def bind(self) -> None:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.args.host, self.args.port))
        sock.listen(128)
        sock.set_inheritable(True)
        self.sock = sock
        self.port = sock.getsockname()[1]

    def spawn(self, worker: int) -> WorkerRecord:
        read_fd, write_fd = os.pipe()
        os.set_inheritable(write_fd, True)
        pid = os.fork()
        if pid == 0:
            # Child: drop every parent-side fd (other workers' pipe
            # read ends included — a held read end would defeat the
            # sibling's EOF-on-death signal), then serve.
            os.close(read_fd)
            self.selector.close()
            for record in self.workers.values():
                try:
                    os.close(record.pipe_fd)
                except OSError:
                    pass
            _worker_main(self.args, self.sock, write_fd, worker)
            os._exit(1)  # unreachable
        os.close(write_fd)
        os.set_blocking(read_fd, False)
        record = WorkerRecord(worker, pid, read_fd, time.monotonic())
        self.workers[pid] = record
        self.selector.register(read_fd, selectors.EVENT_READ, record)
        return record

    def _retire(self, record: WorkerRecord) -> None:
        try:
            self.selector.unregister(record.pipe_fd)
        except (KeyError, ValueError):
            pass
        try:
            os.close(record.pipe_fd)
        except OSError:
            pass
        self.workers.pop(record.pid, None)

    # -- accounting ----------------------------------------------------

    def state(self) -> dict:
        return {
            "schema": 1,
            "kind": "serve-supervisor",
            "supervisor_pid": os.getpid(),
            "host": self.args.host,
            "port": self.port,
            "procs": self.procs,
            "workers": [
                {"worker": record.worker, "pid": record.pid}
                for record in sorted(self.workers.values(),
                                     key=lambda r: r.worker)
            ],
            "restarts_total": self.restarts_total,
            "crash_exits": self.crash_exits,
            "respond_fault_exits": self.respond_fault_exits,
            "hang_kills": self.hang_kills,
            "clean_exits": self.clean_exits,
            "shutting_down": self.shutting_down,
        }

    def publish(self) -> None:
        write_state(self.state_path, self.state())

    # -- event handling ------------------------------------------------

    def _drain_pipes(self, timeout: float) -> None:
        for key, _ in self.selector.select(timeout):
            record: WorkerRecord = key.data
            try:
                chunk = os.read(record.pipe_fd, 4096)
            except (BlockingIOError, InterruptedError):
                continue
            except OSError:
                chunk = b""
            if chunk:
                record.last_beat = time.monotonic()
            # EOF means the worker died; waitpid will reap it.

    def _reap(self) -> bool:
        """Collect exited workers; returns whether anything changed."""
        changed = False
        while True:
            try:
                pid, status = os.waitpid(-1, os.WNOHANG)
            except ChildProcessError:
                break
            if pid == 0:
                break
            record = self.workers.get(pid)
            if record is None:
                continue
            changed = True
            self._retire(record)
            if os.WIFEXITED(status) \
                    and os.WEXITSTATUS(status) == knobs.EXIT_RESPOND_FAULT:
                self.respond_fault_exits += 1
                kind = "respond-fault exit"
            elif os.WIFEXITED(status) and os.WEXITSTATUS(status) == 0:
                self.clean_exits += 1
                kind = "clean exit"
            elif os.WIFSIGNALED(status) \
                    and os.WTERMSIG(status) == signal.SIGKILL:
                # Either our own hang-kill or an external SIGKILL
                # (the chaos harness); both recycle the same way.
                self.crash_exits += 1
                kind = f"killed (SIGKILL)"
            else:
                self.crash_exits += 1
                kind = f"crash (status {status})"
            print(f"[supervisor] worker {record.worker} pid {pid}: "
                  f"{kind}", file=sys.stderr, flush=True)
            if not self.shutting_down:
                self.restarts_total += 1
                if self.restarts_total > self.max_restarts:
                    print(f"[supervisor] restart cap "
                          f"({self.max_restarts}) exceeded; shutting "
                          f"down", file=sys.stderr, flush=True)
                    self.shutting_down = True
                else:
                    fresh = self.spawn(record.worker)
                    fresh.restarts = record.restarts + 1
                    print(f"[supervisor] worker {record.worker} "
                          f"recycled as pid {fresh.pid} (warm from "
                          f"shared store)", file=sys.stderr, flush=True)
        return changed

    def _kill_hung(self) -> bool:
        now = time.monotonic()
        changed = False
        for record in list(self.workers.values()):
            if now - record.last_beat > self.heartbeat_timeout:
                print(f"[supervisor] worker {record.worker} pid "
                      f"{record.pid} silent for "
                      f"{now - record.last_beat:.1f}s; killing",
                      file=sys.stderr, flush=True)
                self.hang_kills += 1
                changed = True
                try:
                    os.kill(record.pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
                # Avoid double-kill while waiting for the reap.
                record.last_beat = now + 3600.0
        return changed

    # -- drain ---------------------------------------------------------

    def drain(self) -> None:
        """SIGTERM every worker, wait for clean exits, then snapshot."""
        self.shutting_down = True
        self.publish()
        # Close the parent's copy of the listener: once every draining
        # worker closes its copy too, the socket dies and late connects
        # are refused immediately instead of rotting in the backlog.
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:
                pass
        for record in list(self.workers.values()):
            try:
                os.kill(record.pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
        deadline = time.monotonic() + self.drain_timeout
        while self.workers and time.monotonic() < deadline:
            self._drain_pipes(_TICK)
            self._reap()
        for record in list(self.workers.values()):
            print(f"[supervisor] worker {record.worker} pid "
                  f"{record.pid} ignored drain; killing",
                  file=sys.stderr, flush=True)
            try:
                os.kill(record.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
        while self.workers:
            self._drain_pipes(_TICK)
            self._reap()
        if self.args.snapshot_out and self.args.persist_dir:
            from repro.runtime import persist
            outcome = persist.save_snapshot(self.args.persist_dir,
                                            self.args.snapshot_out)
            print(f"[supervisor] drain snapshot -> "
                  f"{self.args.snapshot_out} "
                  f"(ok={outcome.ok}, records={outcome.loaded})",
                  file=sys.stderr, flush=True)
        self.publish()

    # -- main loop -----------------------------------------------------

    def run(self) -> int:
        self.bind()
        os.environ[knobs.ENV_SUPERVISOR_STATE] = \
            os.path.abspath(self.state_path)
        if self.args.persist_dir:
            os.makedirs(self.args.persist_dir, exist_ok=True)
        self.publish()

        def on_term(_signum, _frame):
            self.shutting_down = True

        signal.signal(signal.SIGTERM, on_term)
        signal.signal(signal.SIGINT, on_term)

        for worker in range(self.procs):
            self.spawn(worker)
        self.publish()
        print(f"supervising on http://{self.args.host}:{self.port} "
              f"(procs={self.procs}, heartbeat "
              f"timeout={self.heartbeat_timeout}s, state="
              f"{self.state_path})", file=sys.stderr, flush=True)

        try:
            while not self.shutting_down:
                self._drain_pipes(_TICK)
                changed = self._reap()
                changed |= self._kill_hung()
                if changed:
                    self.publish()
        finally:
            self.drain()
        return 0


def main(argv: list[str]) -> int:
    args = _parse_args(argv)
    if args.snapshot_out and not args.persist_dir:
        print("--snapshot-out requires --persist-dir", file=sys.stderr)
        return 2
    # Fail fast on a bad fault spec: a typo that only surfaced inside
    # the workers would crash-loop all the way to the restart cap.
    from repro.errors import FaultConfigError
    from repro.faults import combine_specs, parse_spec
    try:
        parse_spec(combine_specs(args.faults,
                                 os.environ.get("REPRO_FAULTS")))
    except FaultConfigError as err:
        print(f"bad fault spec: {err}", file=sys.stderr)
        return 2
    from repro.serve.__main__ import _raise_nofile_limit
    _raise_nofile_limit()
    return Supervisor(args).run()


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
