"""The paper's workload: 5 applications and 5 kernels (Table 1).

Each workload module provides a :class:`~repro.workloads.base.Workload`:
MiniC source with DyC annotations, an input builder reproducing the
paper's experimental inputs (8KB direct-mapped cache config; no
breakpoints; a bubble-sort input program; an 11×11 convolution matrix
with 9% ones and 83% zeroes; a perspective matrix with one light source;
…), and the Table 1 metadata.
"""

from repro.workloads.base import Workload, WorkloadInput
from repro.workloads.dinero import DINERO
from repro.workloads.m88ksim import M88KSIM, make_m88ksim
from repro.workloads.mipsi import MIPSI
from repro.workloads.pnmconvol import PNMCONVOL
from repro.workloads.viewperf import VIEWPERF
from repro.workloads.kernels.binary import BINARY
from repro.workloads.kernels.chebyshev import CHEBYSHEV
from repro.workloads.kernels.dotproduct import DOTPRODUCT, make_dotproduct
from repro.workloads.kernels.query import QUERY
from repro.workloads.kernels.romberg import ROMBERG

APPLICATIONS = (DINERO, M88KSIM, MIPSI, PNMCONVOL, VIEWPERF)
KERNELS = (BINARY, CHEBYSHEV, DOTPRODUCT, QUERY, ROMBERG)
ALL_WORKLOADS = APPLICATIONS + KERNELS

WORKLOADS_BY_NAME = {w.name: w for w in ALL_WORKLOADS}


def get_workload(name: str) -> Workload:
    try:
        return WORKLOADS_BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS_BY_NAME))
        raise KeyError(f"unknown workload {name!r} (known: {known})") \
            from None


__all__ = [
    "Workload",
    "WorkloadInput",
    "APPLICATIONS",
    "KERNELS",
    "ALL_WORKLOADS",
    "WORKLOADS_BY_NAME",
    "get_workload",
    "DINERO",
    "M88KSIM",
    "make_m88ksim",
    "MIPSI",
    "PNMCONVOL",
    "VIEWPERF",
    "BINARY",
    "CHEBYSHEV",
    "DOTPRODUCT",
    "make_dotproduct",
    "QUERY",
    "ROMBERG",
]
