"""Workload inspector: ``python -m repro.workloads [name ...]``.

Runs the named workloads (default: all) statically and dynamically,
verifies their outputs agree, and prints a per-region report: speedup,
break-even, generated-code size, and which staged optimizations fired.
Add ``--dump`` to also print the specialized region code,
``--backend=reference|threaded|pycodegen`` to pick the execution backend
(the reported numbers are identical either way), and
``--codegen-mode=counted|fast`` to pick the pycodegen mode (fast drops
cycle accounting, so only use it when you care about wall-clock, not the
reported numbers).

``python -m repro.workloads bench`` runs the wall-clock backend
benchmark (same report as ``python -m repro.evalharness bench``); with
``--compare`` it diffs the committed ``BENCH_interp.json`` against a
fresh run and exits non-zero on semantic divergence (checksum or
workload-set changes — wall-clock drift is only reported).

``python -m repro.workloads snapshot save|load PATH`` captures the
persistent artifact store (``--persist-dir=DIR``, default
``$REPRO_PERSIST_DIR`` or ``.repro_persist``) into one integrity-checked
snapshot file, or unpacks a snapshot into the store to warm-start later
runs; invalid records are skipped, never installed.
"""

from __future__ import annotations

import sys

from repro.evalharness.runner import (
    resolve_backend,
    resolve_codegen_mode,
    run_workload,
)
from repro.ir import format_function
from repro.workloads import ALL_WORKLOADS, get_workload


def report(name: str, dump: bool, backend: str | None = None,
           codegen_mode: str | None = None) -> None:
    workload = get_workload(name)
    result = run_workload(workload, backend=backend,
                          codegen_mode=codegen_mode)
    print(f"\n=== {workload.name} ({workload.kind}): "
          f"{workload.description} ===")
    print(f"static vars: {workload.static_vars} = "
          f"{workload.static_values}")
    if (resolve_backend(backend) == "pycodegen"
            and resolve_codegen_mode(codegen_mode) == "fast"):
        print("NOTE: fast codegen mode drops cycle accounting; the "
              "cycle-derived figures below are not meaningful "
              "(outputs are still verified)")
    print(f"whole-program speedup (incl. DC overhead): "
          f"{result.whole_program_speedup:.2f}x; region share of "
          f"static execution: {result.region_fraction_of_static:.0%}")
    for metrics in result.region_metrics():
        print(f"  {metrics.region_label}: "
              f"asymptotic {metrics.asymptotic_speedup:.2f}x, "
              f"break-even {metrics.breakeven_units:.0f} "
              f"{metrics.breakeven_unit}, "
              f"{metrics.instructions_generated} instructions at "
              f"{metrics.overhead_per_instruction:.0f} cyc/instr")
    for region_id, stats in sorted(result.region_stats.items()):
        used = []
        if stats.unrolling:
            used.append(f"{stats.unrolling} unrolling "
                        f"({stats.contexts_specialized} contexts)")
        if stats.used_static_loads:
            used.append(f"static loads ({stats.static_loads_folded})")
        if stats.used_static_calls:
            used.append(f"static calls ({stats.static_calls_folded})")
        if stats.used_zcp:
            used.append(f"zcp ({stats.zcp_zero_hits} zero / "
                        f"{stats.zcp_copy_hits} copy)")
        if stats.used_dae:
            used.append(f"dae ({stats.dae_removed})")
        if stats.used_sr:
            used.append(f"sr ({stats.sr_applied})")
        if stats.used_internal_promotions:
            used.append(
                f"promotions ({stats.internal_promotions_executed})"
            )
        if stats.used_polyvariant_division:
            used.append(f"divisions ({stats.divisions_used})")
        print(f"  region {region_id}: {', '.join(used) or 'plain'}")
    print(f"  outputs verified: {result.outputs_match}")
    if result.degraded:
        parts = []
        if result.degraded_compilations:
            parts.append(f"{result.degraded_compilations} compilations "
                         "fell back down the backend ladder")
        if result.degraded_translations:
            parts.append(f"{result.degraded_translations} translations "
                         "fell back to the reference interpreter")
        for region_id, stats in sorted(result.region_stats.items()):
            if not stats.degraded:
                continue
            detail = []
            if stats.specialization_failures:
                detail.append(f"{stats.specialization_failures} failed "
                              "specializations")
            if stats.respecializations:
                detail.append(f"{stats.respecializations} retried")
            if stats.fallback_executions:
                detail.append(f"{stats.fallback_executions} fallback "
                              "runs")
            if stats.quarantined_contexts:
                detail.append(f"{stats.quarantined_contexts} "
                              "quarantined")
            if stats.budget_truncations:
                detail.append(f"{stats.budget_truncations} budget "
                              "truncations")
            if stats.residualized_continuations:
                detail.append(f"{stats.residualized_continuations} "
                              "residualized continuations")
            if stats.cache_corruptions:
                detail.append(f"{stats.cache_corruptions} corrupt "
                              "cache hits")
            parts.append(f"region {region_id}: {', '.join(detail)}")
        print(f"  DEGRADED — {'; '.join(parts)}")
    if dump:
        # Re-run to capture the emitted code.
        from repro.dyc import compile_annotated
        from repro.frontend import compile_source
        from repro.ir import Memory
        from repro.runtime.cache import UncheckedCache

        module = compile_source(workload.source)
        compiled = compile_annotated(module)
        memory = Memory()
        inputs = workload.setup(memory)
        machine, runtime = compiled.make_machine(memory=memory)
        machine.run(workload.entry, *inputs.args)
        for region_id, cache in sorted(runtime.entry_caches.items()):
            if isinstance(cache, UncheckedCache):
                codes = [cache._value] if cache._filled else []
            else:
                codes = [value for _, value in cache.items()]
            for code in codes[:1]:
                print(f"\n--- emitted code, region {region_id} ---")
                print(format_function(code.function))


def snapshot(action: str, path: str, persist_dir: str | None) -> int:
    """``snapshot save|load PATH``: store <-> snapshot-file hand-off."""
    from repro.runtime import persist

    store_dir = persist.resolve_persist_dir(persist_dir)
    if action == "save":
        outcome = persist.save_snapshot(store_dir, path)
        if not outcome.ok:
            print(f"snapshot save failed: {outcome.error}",
                  file=sys.stderr)
            return 1
        print(f"snapshot of {outcome.loaded} record(s) from "
              f"{store_dir} written to {path}")
        return 0
    outcome = persist.load_snapshot(path, store_dir)
    if not outcome.ok:
        print(f"snapshot load failed: {outcome.error}", file=sys.stderr)
        return 1
    skipped = f", {outcome.skipped} invalid record(s) skipped" \
        if outcome.skipped else ""
    print(f"{outcome.loaded} record(s) loaded into {store_dir}"
          f"{skipped}")
    return 0


def bench(compare: bool, output: str | None, repeat: int) -> int:
    """Delegate to the evalharness bench (one shared implementation)."""
    from repro.evalharness.__main__ import _bench

    class _Args:
        pass

    args = _Args()
    args.compare = compare
    args.repeat = repeat
    if output is None:
        from repro.evalharness.bench import DEFAULT_BENCH_PATH
        output = DEFAULT_BENCH_PATH
    args.output = output
    return _bench(args)


def main(argv: list[str]) -> int:
    dump = "--dump" in argv
    compare = "--compare" in argv
    backend = None
    codegen_mode = None
    output = None
    persist_dir = None
    repeat = 3
    for arg in argv:
        if arg.startswith("--backend="):
            backend = arg.split("=", 1)[1]
        elif arg.startswith("--codegen-mode="):
            codegen_mode = arg.split("=", 1)[1]
        elif arg.startswith("--output="):
            output = arg.split("=", 1)[1]
        elif arg.startswith("--persist-dir="):
            persist_dir = arg.split("=", 1)[1]
        elif arg.startswith("--repeat="):
            repeat = int(arg.split("=", 1)[1])
        elif arg.startswith("--") and arg not in ("--dump", "--compare"):
            print(f"unknown option {arg!r}", file=sys.stderr)
            return 2
    names = [a for a in argv if not a.startswith("--")]
    if names and names[0] == "snapshot":
        if len(names) != 3 or names[1] not in ("save", "load"):
            print("usage: python -m repro.workloads snapshot "
                  "save|load PATH [--persist-dir=DIR]", file=sys.stderr)
            return 2
        return snapshot(names[1], names[2], persist_dir)
    if names and names[0] == "bench":
        if len(names) > 1:
            print("bench takes no workload names", file=sys.stderr)
            return 2
        return bench(compare, output, repeat)
    if compare:
        print("--compare only applies to the bench subcommand",
              file=sys.stderr)
        return 2
    if not names:
        names = [w.name for w in ALL_WORKLOADS]
    for name in names:
        try:
            report(name, dump, backend, codegen_mode)
        except KeyError as error:
            print(error.args[0], file=sys.stderr)
            return 2
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
