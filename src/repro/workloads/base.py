"""Workload protocol shared by all ten benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.ir.memory import Memory


@dataclass
class WorkloadInput:
    """Inputs built into a fresh memory for one run.

    ``args`` are passed to the workload's entry function.  ``checksum``
    (optional) reads memory/machine output after the run and returns a
    comparable summary, so the harness can verify that the dynamically
    compiled run computed exactly what the static run did.
    """

    args: list
    checksum: Callable[[Memory, object], object] | None = None


@dataclass(frozen=True)
class Workload:
    """One benchmark: Table 1 metadata + source + input builder."""

    name: str
    kind: str                     # "application" | "kernel"
    description: str              # Table 1 "Description"
    static_vars: str              # Table 1 "Annotated Static Variables"
    static_values: str            # Table 1 "Values of Static Variables"
    source: str                   # MiniC program text
    entry: str                    # whole-program driver function
    region_functions: tuple[str, ...]  # dynamically compiled functions
    setup: Callable[[Memory], WorkloadInput]
    #: What one unit of the break-even point means for this workload
    #: (Table 3: "memory references", "searches", "breakpoint checks"...).
    breakeven_unit: str = "invocations"
    #: Break-even units contained in one region invocation.
    units_per_invocation: float = 1.0
    #: Per-experiment I-cache capacity override (bytes).  Used where the
    #: paper's generated-code footprint must be scaled to our (smaller)
    #: inputs to preserve the footprint/capacity ratio; documented per
    #: workload.
    icache_capacity_bytes: int | None = None
    notes: str = ""

    def lines_of_source(self) -> int:
        """Table 1's "Lines" figure for the dynamically compiled code."""
        return sum(
            1 for line in self.source.splitlines() if line.strip()
        )
