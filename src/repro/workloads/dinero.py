"""dinero — the cache simulator (Hill & Smith's dineroIII).

The dynamically compiled function is the simulator main loop.  The cache
configuration (Table 1: 8 KB, direct-mapped, 32-byte blocks — the unified
I/D config the paper uses) is annotated static: the set-index and tag
arithmetic strength-reduces to shifts and masks, the associativity search
loop completely unrolls (single-way), and config-table reads become
static loads.  ``cache_one_unchecked`` is appropriate because a
simulation run never changes its configuration mid-run.

The whole-program driver mirrors dinero's structure: parse/generate the
reference trace, run the simulation loop over it, and summarize — so
roughly half the execution time lands in the dynamic region (Table 4
reports 49.9%).
"""

from __future__ import annotations

from repro.ir.memory import Memory
from repro.workloads.base import Workload, WorkloadInput
from repro.workloads.inputs import address_trace

#: Table 1 / §3.3 configuration: 8KB, direct-mapped, 32B blocks.
CACHE_SIZE = 8 * 1024
BLOCK_SIZE = 32
ASSOCIATIVITY = 1

#: References simulated per run (the paper simulates millions; scaled
#: down for the abstract machine, which does not change per-reference
#: cycle ratios).
TRACE_LENGTH = 6000

#: Words per sub-block (sector); a power of two, so the per-reference
#: sector division strength-reduces to a shift at dynamic compile time.
SUBBLOCK_WORDS = 2

SOURCE = """
// dineroIII-style cache simulator.  As in dineroIII, derived shift/mask
// parameters are precomputed from the configuration, so the statically
// compiled baseline is not penalized with per-reference division.
// cfg layout: [0]=block shift   [1]=set mask      [2]=set shift
//             [3]=associativity [4]=write-alloc   [5]=write-through
//             [6]=sub-block size (words)          [7]=block word mask
func mainloop(cfg, tags, valid, trace, ntrace) {
    make_static(cfg, bshift, setmask, setshift, assoc, walloc,
                wthrough, sbsize, wmask, w) : cache_one_unchecked;
    var bshift = cfg@[0];
    var setmask = cfg@[1];
    var setshift = cfg@[2];
    var assoc = cfg@[3];
    var walloc = cfg@[4];
    var wthrough = cfg@[5];
    var sbsize = cfg@[6];
    var wmask = cfg@[7];
    var hits = 0;
    var writebacks = 0;
    var subrefs = 0;
    for (t = 0; t < ntrace; t = t + 1) {
        var addr = trace[t * 2];
        var iswrite = trace[t * 2 + 1];
        var block = addr >> bshift;
        var set = block & setmask;
        var tag = block >> setshift;
        var base = set * assoc;          // x1: folds away
        // Sub-block (sector) index: the division by the configured
        // sub-block size strength-reduces to a shift at run time.
        var word = (addr >> 2) & wmask;
        var sector = word / sbsize;
        subrefs = subrefs + sector;
        // Branchless associativity search: unrolls into a single-way
        // chain (dineroIII's way-search loop, specialized to the config).
        var found = 0;
        for (w = 0; w < assoc; w = w + 1) {
            var slot = base + w;
            var hit = valid[slot] & (tags[slot] == tag);
            found = found | hit;         // 0|hit folds by dynamic ZCP
        }
        if (found == 1) {
            hits = hits + 1;
            if (iswrite == 1) {
                // Write-policy branches fold at dynamic compile time.
                if (wthrough == 1) { writebacks = writebacks + 1; }
            }
        } else {
            if (iswrite == 1) {
                if (walloc == 1) {
                    tags[base] = tag;
                    valid[base] = 1;
                } else {
                    writebacks = writebacks + 1;
                }
            } else {
                tags[base] = tag;
                valid[base] = 1;
            }
        }
    }
    print_val(writebacks);
    print_val(subrefs);
    return hits;
}

// Trace generation stands in for dinero's trace parsing: an LCG walk
// with spatial locality, matching repro.workloads.inputs.address_trace.
func gen_trace(trace, n, wset, seed) {
    var state = seed;
    var addr = 0;
    for (i = 0; i < n; i = i + 1) {
        state = (state * 1664525 + 1013904223) % 4294967296;
        var r = (state >> 8) % 4294967296;
        if (r % 1048576 < 838861) {        // ~80% sequential
            addr = (addr + 4) % wset;
        } else {
            state = (state * 1664525 + 1013904223) % 4294967296;
            addr = ((state >> 8) % wset);
        }
        trace[i * 2] = addr;
        trace[i * 2 + 1] = (r >> 16) % 4 == 0;    // ~25% writes
    }
    return 0;
}

func main(cfg, tags, valid, trace, ntrace, wset, seed) {
    gen_trace(trace, ntrace, wset, seed);
    var hits = mainloop(cfg, tags, valid, trace, ntrace);
    // Report summary statistics (dinero prints a long report).
    var misses = ntrace - hits;
    print_val(hits);
    print_val(misses);
    return hits;
}
"""


def _setup(mem: Memory) -> WorkloadInput:
    nsets = CACHE_SIZE // (BLOCK_SIZE * ASSOCIATIVITY)
    block_shift = BLOCK_SIZE.bit_length() - 1
    set_shift = nsets.bit_length() - 1
    cfg = mem.alloc_array([
        block_shift,            # [0] block shift
        nsets - 1,              # [1] set mask
        set_shift,              # [2] set shift (tag = block >> this)
        ASSOCIATIVITY,          # [3]
        1,                      # [4] write-allocate
        0,                      # [5] write-back (not write-through)
        SUBBLOCK_WORDS,         # [6] sub-block size in words
        BLOCK_SIZE // 4 - 1,    # [7] block word mask
    ])
    tags = mem.alloc(nsets * ASSOCIATIVITY, fill=-1)
    valid = mem.alloc(nsets * ASSOCIATIVITY, fill=0)
    trace = mem.alloc(TRACE_LENGTH * 2)
    args = [cfg, tags, valid, trace, TRACE_LENGTH, 64 * 1024, 0x2F6E2B1]

    def checksum(memory: Memory, machine) -> tuple:
        return tuple(machine.output)

    return WorkloadInput(args=args, checksum=checksum)


DINERO = Workload(
    name="dinero",
    kind="application",
    description="cache simulator",
    static_vars="cache configuration parameters",
    static_values="8kB I/D, direct-mapped, 32B blocks",
    source=SOURCE,
    entry="main",
    region_functions=("mainloop",),
    setup=_setup,
    breakeven_unit="memory references",
    units_per_invocation=TRACE_LENGTH,
    notes=(
        "Trace scaled to 6000 references (the paper simulates millions; "
        "per-reference cycle ratios are input-length independent)."
    ),
)
